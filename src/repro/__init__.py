"""PhaseBeat reproduction: CSI phase-difference vital-sign monitoring.

A from-scratch reimplementation of *PhaseBeat: Exploiting CSI Phase Data for
Vital Sign Monitoring with Commodity WiFi Devices* (Wang, Yang & Mao,
ICDCS 2017), together with the simulated commodity-WiFi substrate the
algorithms run on: an OFDM multipath channel (paper Eq. 2), the Intel-5300
measured-phase error model (Eqs. 3-4), physiological chest-displacement
models, and the three experimental deployments.

Quickstart::

    from repro import PhaseBeat, laboratory_scenario, capture_trace

    trace = capture_trace(laboratory_scenario(), duration_s=60.0)
    result = PhaseBeat().process(trace)
    print(result.breathing_rates_bpm)   # breaths per minute
    print(result.heart_rate_bpm)        # beats per minute
"""

from .core import (
    PhaseBeat,
    PhaseBeatConfig,
    PhaseBeatResult,
    StreamingConfig,
    StreamingMonitor,
    VitalSignEstimate,
)
from .errors import (
    ConfigurationError,
    DataGapError,
    DegradedInputError,
    EstimationError,
    NotStationaryError,
    ReproError,
    SignalTooShortError,
    TraceFormatError,
)
from .io_ import CSITrace, TraceQualityReport
from .physio import (
    ActivityScript,
    ActivityState,
    Person,
    PulseHeartbeat,
    RealisticBreathing,
    SinusoidalBreathing,
    SinusoidalHeartbeat,
    random_cohort,
)
from .rf import (
    HardwareConfig,
    Scenario,
    capture_trace,
    corridor_scenario,
    laboratory_scenario,
    through_wall_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "ActivityScript",
    "ActivityState",
    "CSITrace",
    "ConfigurationError",
    "DataGapError",
    "DegradedInputError",
    "EstimationError",
    "HardwareConfig",
    "NotStationaryError",
    "Person",
    "PhaseBeat",
    "PhaseBeatConfig",
    "PhaseBeatResult",
    "PulseHeartbeat",
    "RealisticBreathing",
    "ReproError",
    "Scenario",
    "SignalTooShortError",
    "SinusoidalBreathing",
    "SinusoidalHeartbeat",
    "StreamingConfig",
    "StreamingMonitor",
    "TraceFormatError",
    "TraceQualityReport",
    "VitalSignEstimate",
    "capture_trace",
    "corridor_scenario",
    "laboratory_scenario",
    "random_cohort",
    "through_wall_scenario",
    "__version__",
]
