"""Breathing-cessation (apnea) detection on the breathing band.

The paper's introduction motivates vital-sign monitoring with sleep
disorders and SIDS — conditions whose signature is not a wrong *rate* but a
*pause*: the chest stops moving for ten seconds or more.  This module
extends the pipeline with the standard envelope-threshold detector used in
sleep studies: track the breathing-band envelope, flag intervals where it
collapses below a fraction of its typical level, and keep those longer than
a clinical minimum duration (10 s for adult apnea scoring).

The detector consumes the same DWT breathing-band signal the rate estimator
uses, so it composes with the existing pipeline output::

    result = PhaseBeat().process(trace, estimate_heart=False)
    events = detect_apnea(result.breathing_signal, 20.0)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..dsp.hampel import rolling_median
from ..errors import ConfigurationError, SignalTooShortError

__all__ = ["ApneaConfig", "ApneaEvent", "breathing_envelope", "detect_apnea"]


@dataclass(frozen=True)
class ApneaConfig:
    """Apnea-detection parameters.

    Attributes:
        min_duration_s: Minimum cessation length to score an event (adult
            clinical scoring uses 10 s).
        envelope_window_s: Envelope smoothing window; should cover roughly
            one breathing cycle so inhale/exhale zero crossings don't read
            as pauses.
        drop_fraction: The envelope must fall below this fraction of its
            reference (median) level to count as cessation — clinical
            criteria use a ≥90% airflow reduction, i.e. 0.1–0.3 here.
        merge_gap_s: Cessation intervals separated by less than this merge
            into one event (brief envelope flickers don't split an apnea).
    """

    min_duration_s: float = 10.0
    envelope_window_s: float = 4.0
    drop_fraction: float = 0.3
    merge_gap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.min_duration_s <= 0:
            raise ConfigurationError("min_duration_s must be positive")
        if self.envelope_window_s <= 0:
            raise ConfigurationError("envelope_window_s must be positive")
        if not 0.0 < self.drop_fraction < 1.0:
            raise ConfigurationError("drop_fraction must be in (0, 1)")
        if self.merge_gap_s < 0:
            raise ConfigurationError("merge_gap_s must be >= 0")


@dataclass(frozen=True)
class ApneaEvent:
    """One detected breathing cessation.

    Attributes:
        start_s: Event start (seconds into the signal).
        end_s: Event end.
        depth: Mean envelope level during the event relative to the
            reference level (0 = total cessation).
    """

    start_s: float
    end_s: float
    depth: float

    @property
    def duration_s(self) -> float:
        """Event length in seconds."""
        return self.end_s - self.start_s


def breathing_envelope(
    signal: FloatArray, sample_rate_hz: float, window_s: float = 4.0
) -> FloatArray:
    """Slowly varying amplitude envelope of the breathing-band signal.

    Rolling median of |signal| over about one breathing cycle: robust to
    the within-cycle zero crossings that a plain moving RMS would also
    survive, but additionally robust to isolated glitches.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ConfigurationError(f"expected a 1-D series, got {signal.shape}")
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    window = max(3, int(round(window_s * sample_rate_hz)))
    return rolling_median(np.abs(signal), min(window, signal.size))


def detect_apnea(
    signal: FloatArray,
    sample_rate_hz: float,
    config: ApneaConfig | None = None,
) -> list[ApneaEvent]:
    """Detect breathing-cessation events in a breathing-band signal.

    Args:
        signal: The DWT breathing-band reconstruction (or any series whose
            amplitude tracks chest motion).
        sample_rate_hz: Its sample rate.
        config: Detection parameters.

    Returns:
        Events longer than ``min_duration_s``, time-ordered.

    Raises:
        SignalTooShortError: If the signal is shorter than one minimum
            event (nothing could ever be detected).
    """
    config = config if config is not None else ApneaConfig()
    signal = np.asarray(signal, dtype=float)
    min_samples = int(round(config.min_duration_s * sample_rate_hz))
    if signal.size < min_samples:
        raise SignalTooShortError(min_samples, signal.size, "apnea input")

    envelope = breathing_envelope(
        signal, sample_rate_hz, config.envelope_window_s
    )
    # Reference level: the median envelope over the whole record.  For a
    # mostly-normal record this is the breathing amplitude; if the subject
    # stops breathing for most of the record, everything below threshold is
    # still flagged relative to the healthier portion.
    reference = float(np.median(envelope))
    if reference <= 0:
        return []
    below = envelope < config.drop_fraction * reference

    events: list[tuple[int, int]] = []
    start = None
    for i, flag in enumerate(below):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            events.append((start, i))
            start = None
    if start is not None:
        events.append((start, below.size))

    # Merge events separated by a short gap.
    merge_gap = int(round(config.merge_gap_s * sample_rate_hz))
    merged: list[tuple[int, int]] = []
    for lo, hi in events:
        if merged and lo - merged[-1][1] <= merge_gap:
            merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))

    out = []
    for lo, hi in merged:
        if hi - lo >= min_samples:
            depth = float(np.mean(envelope[lo:hi]) / reference)
            out.append(
                ApneaEvent(
                    start_s=lo / sample_rate_hz,
                    end_s=hi / sample_rate_hz,
                    depth=depth,
                )
            )
    return out
