"""Subcarrier Selection (paper Section III-B3).

Different subcarriers sit at different wavelengths and therefore respond
with different sensitivity to the same chest displacement; Fig. 5/7 of the
paper shows a clear sensitivity profile across the 30 reported subcarriers.
PhaseBeat measures sensitivity as the mean absolute deviation (MAD) of each
calibrated series, takes the ``k`` largest, and finally selects the
subcarrier holding the *median* of those k MADs — a guard against a single
subcarrier whose large MAD is noise rather than signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import BoolArray, FloatArray, check_trace
from ..dsp.stats import mean_absolute_deviation
from ..errors import ConfigurationError

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..io_.trace import CSITrace

__all__ = [
    "SelectionConfig",
    "SelectionResult",
    "amplitude_mask_from_mean",
    "amplitude_quality_mask",
    "select_subcarrier",
    "subcarrier_sensitivities",
]


def amplitude_mask_from_mean(
    mean_amplitude: FloatArray,
    antenna_pair: tuple[int, int] = (0, 1),
    *,
    floor_ratio: float = 0.25,
) -> BoolArray:
    """Eligibility mask from precomputed window-mean amplitudes.

    The trace-free core of :func:`amplitude_quality_mask`, for callers that
    already hold the per-antenna mean ``|CSI|`` of the window (the streaming
    monitor keeps a running amplitude cache instead of restacking its packet
    buffer every hop).

    Args:
        mean_amplitude: ``[n_rx × n_subcarriers]`` mean ``|CSI|`` over the
            window's packets.
        antenna_pair: The two chains whose phase difference is used.
        floor_ratio: Fraction of the median amplitude below which a
            subcarrier is excluded.

    Returns:
        Boolean array of length ``n_subcarriers``.
    """
    a, b = antenna_pair
    quality = np.minimum(mean_amplitude[a], mean_amplitude[b])
    return quality >= floor_ratio * np.median(quality)


@check_trace()
def amplitude_quality_mask(
    trace: "CSITrace",
    antenna_pair: tuple[int, int] = (0, 1),
    *,
    floor_ratio: float = 0.25,
) -> BoolArray:
    """Eligibility mask excluding deep-faded subcarriers.

    A subcarrier whose |CSI| sits in a multipath fading null has phase noise
    large enough for the unwrap step to take spurious ±2π jumps, turning its
    phase-difference series into a random walk.  That drift inflates the MAD
    — the very statistic selection rewards — so faded subcarriers must be
    barred *before* selection.  A subcarrier stays eligible when its
    weakest-antenna mean amplitude is at least ``floor_ratio`` of the median
    across subcarriers.

    Args:
        trace: The :class:`~repro.io_.trace.CSITrace` being processed.
        antenna_pair: The two chains whose phase difference is used.
        floor_ratio: Fraction of the median amplitude below which a
            subcarrier is excluded.

    Returns:
        Boolean array of length ``trace.n_subcarriers``.
    """
    return amplitude_mask_from_mean(
        np.abs(trace.csi).mean(axis=0), antenna_pair, floor_ratio=floor_ratio
    )


@dataclass(frozen=True)
class SelectionConfig:
    """Subcarrier-selection parameters.

    Attributes:
        k: Number of top-MAD candidates (paper default 3).
    """

    k: int = 3

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of subcarrier selection.

    Attributes:
        selected: Column index of the chosen subcarrier.
        candidates: The k top-MAD column indices, MAD-descending.
        sensitivities: Per-subcarrier MAD (the Fig. 7 profile).
    """

    selected: int
    candidates: tuple[int, ...]
    sensitivities: FloatArray


def subcarrier_sensitivities(series: FloatArray) -> FloatArray:
    """Per-subcarrier MAD of calibrated series (Fig. 7's y-axis)."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ConfigurationError(
            f"expected (samples × subcarriers), got shape {series.shape}"
        )
    if series.shape[0] == 0 or series.shape[1] == 0:
        raise ConfigurationError(
            f"cannot compute sensitivities of an empty matrix {series.shape}"
        )
    return mean_absolute_deviation(series, axis=0)


def select_subcarrier(
    series: FloatArray,
    config: SelectionConfig | None = None,
    *,
    mask: BoolArray | None = None,
) -> SelectionResult:
    """Pick the working subcarrier by the top-k / median-MAD rule.

    Args:
        series: ``(n_samples, n_subcarriers)`` calibrated phase differences.
        config: Selection parameters.
        mask: Optional boolean eligibility per subcarrier.  The pipeline
            masks out deep-faded subcarriers whose phase difference is
            unwrap-unstable (their random-walk drift inflates the MAD with
            noise, which is exactly what the sensitivity statistic must not
            reward).  All subcarriers are eligible when omitted, or when
            masking would leave nothing.

    Returns:
        :class:`SelectionResult`; ``selected`` is the candidate whose MAD is
        the median of the k candidate MADs (for even k, the lower median, so
        the choice is always an actual candidate).  Indices refer to the
        original column numbering.
    """
    config = config if config is not None else SelectionConfig()
    sensitivities = subcarrier_sensitivities(series)
    n_subcarriers = sensitivities.size
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (n_subcarriers,):
            raise ConfigurationError(
                f"mask shape {mask.shape} does not match {n_subcarriers} "
                "subcarriers"
            )
        if not mask.any():
            mask = None
    eligible = (
        np.arange(n_subcarriers) if mask is None else np.flatnonzero(mask)
    )
    k = min(config.k, eligible.size)
    # Top-k eligible indices, MAD descending.
    order = eligible[np.argsort(sensitivities[eligible])[::-1]]
    candidates = tuple(int(i) for i in order[:k])
    # The selected subcarrier holds the median candidate MAD (lower median
    # for even k, so the result is always one of the candidates).  With the
    # candidates already MAD-descending, that is simply the middle one.
    selected = candidates[(k - 1) // 2 if k % 2 else k // 2]
    return SelectionResult(
        selected=int(selected),
        candidates=candidates,
        sensitivities=sensitivities,
    )
