"""DWT stage: split the selected series into breathing and heart bands.

Paper Section III-B4: a level-4 Daubechies decomposition of the 20 Hz
calibrated series puts the breathing signal in the approximation coefficient
α₄ (0–0.625 Hz) and the heart signal in the sum of detail reconstructions
β₃+β₄ (0.625–2.5 Hz), simultaneously discarding sub-band noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..dsp.wavelet import (
    WaveletDecomposition,
    coefficient_band,
    reconstruct_band,
    wavedec,
)
from ..errors import ConfigurationError

__all__ = ["DWTConfig", "DWTBands", "decompose", "decompose_matrix"]


@dataclass(frozen=True)
class DWTConfig:
    """DWT-stage parameters.

    Attributes:
        wavelet: Wavelet name (paper: a Daubechies filter; db4 default).
        level: Decomposition depth L (paper: 4).
        heart_detail_levels: Detail levels summed for the heart signal
            (paper: L−1 and L, i.e. 3 and 4).
    """

    wavelet: str = "db4"
    level: int = 4
    heart_detail_levels: tuple[int, ...] = (3, 4)

    def __post_init__(self) -> None:
        if self.level < 1:
            raise ConfigurationError(f"level must be >= 1, got {self.level}")
        for lv in self.heart_detail_levels:
            if not 1 <= lv <= self.level:
                raise ConfigurationError(
                    f"heart detail level {lv} outside [1, {self.level}]"
                )


@dataclass(frozen=True)
class DWTBands:
    """Band-split signals produced by the DWT stage.

    Attributes:
        breathing: Reconstruction from α_L only — the denoised breathing
            signal fed to peak detection.
        heart: Reconstruction from the configured detail levels — the heart
            signal fed to the FFT estimator.
        decomposition: The full coefficient set (for inspection/plots).
        sample_rate_hz: Rate of both reconstructions (same as the input).
        breathing_band_hz: Nominal (lo, hi) of the breathing reconstruction.
        heart_band_hz: Nominal (lo, hi) of the heart reconstruction.
    """

    breathing: FloatArray
    heart: FloatArray
    decomposition: WaveletDecomposition
    sample_rate_hz: float
    breathing_band_hz: tuple[float, float]
    heart_band_hz: tuple[float, float]


def decompose(
    series: FloatArray,
    sample_rate_hz: float,
    config: DWTConfig | None = None,
) -> DWTBands:
    """Run the DWT stage on the selected subcarrier series.

    Args:
        series: 1-D calibrated phase-difference series (post selection).
        sample_rate_hz: Its sample rate (20 Hz after standard calibration).
        config: Stage parameters.

    Returns:
        :class:`DWTBands` with the breathing and heart reconstructions.
    """
    config = config if config is not None else DWTConfig()
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ConfigurationError(
            f"DWT stage expects the single selected series, got {series.shape}"
        )
    decomposition = wavedec(series, config.wavelet, level=config.level)
    return _bands_from_decomposition(decomposition, sample_rate_hz, config)


def decompose_matrix(
    matrix: FloatArray,
    sample_rate_hz: float,
    config: DWTConfig | None = None,
) -> DWTBands:
    """Batched DWT stage over every column of a series matrix.

    The band reconstructions of :func:`decompose`, computed for all columns
    in one vectorized multilevel transform — the heart stage uses this to
    band-split its top-MAD candidate columns in a single call instead of a
    Python loop.  ``bands.breathing[:, i]`` / ``bands.heart[:, i]`` match
    ``decompose(matrix[:, i], ...)`` on that column.

    Args:
        matrix: ``[n_samples × n_series]`` calibrated series matrix.
        sample_rate_hz: Common sample rate of the columns.
        config: Stage parameters.

    Returns:
        :class:`DWTBands` whose ``breathing``/``heart`` entries are
        ``[n_samples × n_series]`` matrices.
    """
    config = config if config is not None else DWTConfig()
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"decompose_matrix expects an [n_samples x n_series] matrix, "
            f"got {matrix.shape}"
        )
    decomposition = wavedec(matrix, config.wavelet, level=config.level)
    return _bands_from_decomposition(decomposition, sample_rate_hz, config)


def _bands_from_decomposition(
    decomposition: WaveletDecomposition,
    sample_rate_hz: float,
    config: DWTConfig,
) -> DWTBands:
    breathing = reconstruct_band(decomposition, keep_approx=True)
    heart = reconstruct_band(decomposition, keep_details=config.heart_detail_levels)
    lo_heart = min(
        coefficient_band(sample_rate_hz, lv, is_approx=False)[0]
        for lv in config.heart_detail_levels
    )
    hi_heart = max(
        coefficient_band(sample_rate_hz, lv, is_approx=False)[1]
        for lv in config.heart_detail_levels
    )
    return DWTBands(
        breathing=breathing,
        heart=heart,
        decomposition=decomposition,
        sample_rate_hz=float(sample_rate_hz),
        breathing_band_hz=coefficient_band(
            sample_rate_hz, config.level, is_approx=True
        ),
        heart_band_hz=(lo_heart, hi_heart),
    )
