"""Heart Rate Estimation (paper Section III-D).

The heart signal is orders of magnitude weaker than breathing and sits under
breathing harmonics, so the estimator works on the DWT detail band β₃+β₄
(0.625–2.5 Hz at 20 Hz), which excludes both the breathing fundamental
(0.17–0.62 Hz) and high-frequency noise.  The rate is read from the FFT
peak, refined with the Vital-Radio 3-bin inverse-FFT phase method to beat
the raw bin resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..dsp.fft_utils import three_bin_phase_frequency
from ..errors import ConfigurationError, EstimationError

__all__ = ["HEART_SEARCH_BAND_HZ", "FFTHeartEstimator"]

#: Admissible heart band: the DWT detail band is 0.625–2.5 Hz; resting human
#: heart rates occupy 0.8–2.0 Hz, and restricting the peak search to that
#: range keeps residual breathing harmonics (2·f_b ≤ 1.24 Hz is
#: unavoidable, but 0.7 Hz thirds are excluded) from capturing the peak.
HEART_SEARCH_BAND_HZ = (0.8, 2.0)


@dataclass(frozen=True)
class FFTHeartEstimator:
    """Heart rate via band-limited FFT with 3-bin phase refinement.

    Attributes:
        band_hz: Peak search band.
        refine: Apply the 3-bin inverse-FFT phase-slope refinement; when
            False the (quadratically interpolated) peak bin is returned —
            the ablation knob for the refinement step.
        min_peak_snr: Minimum ratio of the peak magnitude to the median
            in-band magnitude; below it the band is declared signal-free.
    """

    band_hz: tuple[float, float] = HEART_SEARCH_BAND_HZ
    refine: bool = True
    min_peak_snr: float = 1.5
    suppress_breathing_harmonics: bool = True
    harmonic_tolerance_hz: float = 0.04
    max_harmonic_order: int = 6

    def __post_init__(self) -> None:
        lo, hi = self.band_hz
        if lo <= 0 or hi <= lo:
            raise ConfigurationError(f"heart band must satisfy 0 < lo < hi, got {self.band_hz}")
        if self.min_peak_snr < 1.0:
            raise ConfigurationError("min_peak_snr must be >= 1")
        if self.max_harmonic_order < 2:
            raise ConfigurationError("max_harmonic_order must be >= 2")

    def estimate_bpm(
        self,
        heart_signal: FloatArray,
        sample_rate_hz: float,
        *,
        breathing_rate_hz: float | None = None,
    ) -> float:
        """Heart rate in beats/min from the DWT heart band.

        Args:
            heart_signal: The β₃+β₄ reconstruction.
            sample_rate_hz: Its sample rate.
            breathing_rate_hz: The (already estimated) breathing frequency.
                When given, the heart signal is first cleansed of breathing
                harmonics: sinusoids at k·f_b (k = 2…``max_harmonic_order``)
                are least-squares fitted and subtracted.  The phase-of-sum
                nonlinearity puts a comb of breathing harmonics into the
                heart band that can exceed the weak heart peak; knowing f_b
                precisely makes them removable.  (Known failure mode, shared
                with the paper: a heart rate within the fit bandwidth of a
                breathing harmonic partially cancels — this is where the
                paper's ~10 bpm worst-case errors live.)

        Raises:
            EstimationError: If no sufficiently dominant peak exists in the
                band (e.g. omnidirectional TX at long range, where the paper
                does not attempt heart estimation either).
        """
        heart_signal = np.asarray(heart_signal, dtype=float)
        if heart_signal.ndim != 1:
            raise ConfigurationError(
                f"expected the 1-D heart-band series, got {heart_signal.shape}"
            )
        self._check_peak_snr(heart_signal, sample_rate_hz)
        peak_hz = self._masked_peak(
            heart_signal, sample_rate_hz, breathing_rate_hz
        )
        if self.refine:
            # Refine only in a narrow window around the chosen peak, so the
            # 3-bin step cannot jump back onto a masked harmonic.
            narrow = (max(self.band_hz[0], peak_hz - 0.08), peak_hz + 0.08)
            freq = three_bin_phase_frequency(
                heart_signal, sample_rate_hz, band=narrow
            )
        else:
            freq = peak_hz
        return 60.0 * float(freq)

    def _masked_peak(
        self,
        signal: np.ndarray,
        sample_rate_hz: float,
        breathing_rate_hz: float | None,
    ) -> float:
        """Heart carrier frequency from the in-band FFT peaks.

        Bins near breathing harmonics (k·f_b) are skipped; the remaining
        candidate peaks are then scored by *comb symmetry*.  Chest motion
        phase-modulates the heart tone with the breathing waveform, so the
        spectrum around the heart carrier is an AM/PM comb ``f_h ± k·f_b``
        whose sidebands can exceed the carrier at high modulation index —
        the naive "largest peak" then returns a sideband, off by a multiple
        of the breathing rate (exactly the failure that produces ~30 bpm
        errors).  Sidebands sit *symmetrically* around the carrier and
        asymmetrically around each other, so the candidate maximizing
        ``mag(f) + Σ_k min(mag(f+k·f_b), mag(f−k·f_b))`` is the carrier.

        Falls back to the plain masked peak when no breathing rate is
        available, and to the unmasked peak when masking empties the band.
        """
        from ..dsp.fft_utils import (
            band_mask,
            magnitude_spectrum,
            quadratic_peak_interpolation,
        )

        freqs, mag = magnitude_spectrum(signal, sample_rate_hz)
        bin_width = freqs[1] - freqs[0]
        in_band = band_mask(freqs, self.band_hz)
        mask = in_band.copy()
        f_b = breathing_rate_hz if breathing_rate_hz else None
        if self.suppress_breathing_harmonics and f_b:
            for k in range(2, self.max_harmonic_order + 1):
                f_h = k * f_b
                if f_h > self.band_hz[1] + self.harmonic_tolerance_hz:
                    break
                mask &= np.abs(freqs - f_h) > self.harmonic_tolerance_hz
        if not mask.any():
            mask = in_band
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            raise EstimationError(f"no FFT bins inside the heart band {self.band_hz}")

        def refine(k: int) -> float:
            delta = 0.0
            if 0 < k < mag.size - 1:
                delta = quadratic_peak_interpolation(
                    mag[k - 1], mag[k], mag[k + 1]
                )
            return float(freqs[k] + delta * bin_width)

        if not f_b:
            return refine(idx[np.argmax(mag[idx])])

        def mag_near(f: float) -> float:
            lo = np.searchsorted(freqs, f - 1.5 * bin_width)
            hi = np.searchsorted(freqs, f + 1.5 * bin_width) + 1
            if lo >= mag.size or hi <= 0 or lo >= hi:
                return 0.0
            return float(mag[lo:hi].max())

        # Candidate peaks: local maxima among the masked in-band bins.
        local = np.zeros(mag.size, dtype=bool)
        local[1:-1] = (mag[1:-1] >= mag[:-2]) & (mag[1:-1] >= mag[2:])
        candidates = idx[local[idx]]
        if candidates.size == 0:
            candidates = idx
        order = candidates[np.argsort(mag[candidates])[::-1][:6]]
        best_k, best_score = None, -np.inf
        for k in order:
            f = float(freqs[k])
            score = float(mag[k])
            for m in (1, 2):
                score += min(mag_near(f + m * f_b), mag_near(f - m * f_b))
            if score > best_score:
                best_score = score
                best_k = k
        return refine(int(best_k))

    def _check_peak_snr(self, signal: np.ndarray, sample_rate_hz: float) -> None:
        from ..dsp.fft_utils import band_mask, magnitude_spectrum

        freqs, mag = magnitude_spectrum(signal, sample_rate_hz)
        mask = band_mask(freqs, self.band_hz)
        if not mask.any():
            raise EstimationError(f"no FFT bins inside the heart band {self.band_hz}")
        in_band = mag[mask]
        floor = float(np.median(in_band))
        peak = float(in_band.max())
        if floor > 0 and peak / floor < self.min_peak_snr:
            raise EstimationError(
                f"heart band peak SNR {peak / floor:.2f} below "
                f"{self.min_peak_snr}; no detectable heartbeat"
            )
