"""The end-to-end PhaseBeat pipeline (paper Fig. 2).

:class:`PhaseBeat` wires the four modules together:

1. **Data Extraction** — cross-antenna phase difference from the trace.
2. **Data Preprocessing** — environment detection, calibration, subcarrier
   selection, DWT band split.
3. **Breathing Rate Estimation** — peak detection (one person) or
   root-MUSIC over all 30 subcarriers (multiple persons).
4. **Heart Rate Estimation** — FFT with 3-bin phase refinement on the DWT
   detail band.

Typical use::

    from repro import PhaseBeat, laboratory_scenario, capture_trace

    trace = capture_trace(laboratory_scenario(), duration_s=60.0)
    result = PhaseBeat().process(trace)
    print(result.breathing_rates_bpm, result.heart_rate_bpm)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..contracts import BoolArray, FloatArray, check_trace
from ..dsp.resample import reclock
from ..dsp.template import subtract_cycle_template
from ..errors import NotStationaryError, SignalTooShortError
from ..io_.trace import CSITrace
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..physio.motion import ActivityState
from .breathing import (
    FFTBreathingEstimator,
    MusicBreathingEstimator,
    PeakBreathingEstimator,
)
from .calibration import CalibrationConfig, calibrate
from .dwt_stage import DWTConfig, decompose, decompose_matrix
from .environment import (
    EnvironmentConfig,
    EnvironmentDetector,
    v_statistic,
    windowed_v,
)
from .heart import FFTHeartEstimator
from .phase_difference import wrapped_pair_matrix
from .results import PhaseBeatResult, PipelineDiagnostics, VitalSignEstimate
from .subcarrier_selection import (
    SelectionConfig,
    amplitude_quality_mask,
    select_subcarrier,
)

__all__ = [
    "PhaseBeatConfig",
    "PhaseBeat",
    "pair_difference_matrix",
    "prepare_calibrated_matrix",
]


@check_trace()
def pair_difference_matrix(
    trace: CSITrace,
    antenna_pairs: Sequence[tuple[int, int]],
    *,
    needs_reclock: bool = False,
    instrumentation: Instrumentation | None = None,
) -> FloatArray:
    """Unwrapped phase differences for several pairs, on a uniform grid.

    The batched front door of the pipeline: one conjugate product, one
    unwrap, and (when the capture is non-uniform) one reclock for all pairs
    together, replacing the per-pair extraction loop.  Column block ``p``
    holds pair ``antenna_pairs[p]``'s ``n_subcarriers`` series, bitwise
    equal to the per-pair path — unwrap and interpolation both act
    per column.

    Every downstream stage (Hampel windows in seconds, decimation, DWT,
    FFT) assumes uniform sampling at ``trace.sample_rate_hz``.  A clean
    capture satisfies that by construction; a lossy/jittered/glitched one
    does not, so its series is interpolated onto the nominal-rate grid
    first (dropping clock-glitch victims) instead of silently treating
    packet index as time.

    Args:
        trace: The capture.
        antenna_pairs: Pairs ``(a, b)`` of receive-chain indices.
        needs_reclock: Interpolate onto the nominal-rate grid (callers pass
            ``not trace.quality_report().is_uniform``).
        instrumentation: Forwarded to :func:`repro.dsp.resample.reclock`.

    Returns:
        ``[n_packets × n_pairs·n_subcarriers]`` unwrapped differences.
    """
    diff = np.unwrap(wrapped_pair_matrix(trace.csi, antenna_pairs), axis=0)
    if not needs_reclock:
        return diff
    return reclock(
        diff,
        trace.timestamps_s,
        trace.sample_rate_hz,
        instrumentation=instrumentation,
    ).series


@check_trace()
def prepare_calibrated_matrix(
    trace: CSITrace,
    *,
    antenna_pairs: list[tuple[int, int]] | None = None,
    calibration: CalibrationConfig | None = None,
) -> tuple[FloatArray, BoolArray, float]:
    """Phase-difference extraction + calibration for one or more pairs.

    The shared front half of the pipeline, exposed for experiments and
    ablations that want the same calibrated, quality-gated subcarrier
    matrix the estimator stages see (including antenna-pair diversity).
    Extraction and calibration run batched over all pairs' columns at once.

    Args:
        trace: The capture.
        antenna_pairs: Pairs to stack column-wise; default both adjacent
            pairs of a 3-chain NIC.
        calibration: Calibration parameters.

    Returns:
        ``(matrix, quality, sample_rate_hz)`` -- the stacked calibrated
        series of shape ``(n_samples, 30 * n_pairs)``, the per-column
        eligibility mask, and the post-calibration rate.
    """
    if antenna_pairs is None:
        antenna_pairs = [(0, 1)]
        if trace.n_rx >= 3:
            antenna_pairs.append((1, 2))
    needs_reclock = not trace.quality_report().is_uniform
    diff = pair_difference_matrix(
        trace, antenna_pairs, needs_reclock=needs_reclock
    )
    calibrated = calibrate(diff, trace.sample_rate_hz, calibration)
    masks = [amplitude_quality_mask(trace, pair) for pair in antenna_pairs]
    return calibrated.series, np.concatenate(masks), calibrated.sample_rate_hz


@dataclass(frozen=True)
class PhaseBeatConfig:
    """All pipeline parameters in one place (paper defaults).

    Attributes:
        antenna_pair: RX chains whose phase difference is used.
        use_pair_diversity: Also derive phase differences from the second
            adjacent antenna pair and let subcarrier selection choose across
            both.  A chest reflection can sit at a *null point* of one
            pair's phase response (the static operating phase makes the
            breathing fundamental vanish, leaving only its second
            harmonic); the other pair, a half-wavelength away, almost never
            nulls simultaneously.  The paper's hardware exposes all three
            chains; using two pairs is free diversity.
        environment: Environment-detection parameters.
        calibration: Calibration (Hampel + downsample) parameters.
        selection: Subcarrier-selection parameters.
        dwt: DWT-stage parameters.
        peak_estimator: Single-person breathing estimator.
        music_estimator: Multi-person breathing estimator.
        fft_estimator: FFT breathing estimator (used when explicitly
            requested via ``breathing_method="fft"``).
        heart_estimator: Heart-rate estimator.
        enforce_stationarity: Raise :class:`NotStationaryError` when the
            segment fails environment detection; when False the pipeline
            estimates anyway (used by sweeps that control the scene).
    """

    antenna_pair: tuple[int, int] = (0, 1)
    use_pair_diversity: bool = True
    environment: EnvironmentConfig = field(default_factory=EnvironmentConfig)
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    dwt: DWTConfig = field(default_factory=DWTConfig)
    peak_estimator: PeakBreathingEstimator = field(
        default_factory=PeakBreathingEstimator
    )
    music_estimator: MusicBreathingEstimator = field(
        default_factory=MusicBreathingEstimator
    )
    fft_estimator: FFTBreathingEstimator = field(
        default_factory=FFTBreathingEstimator
    )
    heart_estimator: FFTHeartEstimator = field(default_factory=FFTHeartEstimator)
    enforce_stationarity: bool = True


class PhaseBeat:
    """CSI phase-difference vital-sign monitor.

    Args:
        config: Pipeline parameters; paper defaults when omitted.
        instrumentation: Optional :class:`repro.obs.Instrumentation`; when
            given, every stage of :meth:`process` is timed into the
            ``pipeline_stage_duration_s`` histogram (see
            ``docs/observability.md``).
    """

    def __init__(
        self,
        config: PhaseBeatConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        self.config = config if config is not None else PhaseBeatConfig()
        self._detector = EnvironmentDetector(self.config.environment)
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )

    @check_trace()
    def process(
        self,
        trace: CSITrace,
        *,
        n_persons: int = 1,
        estimate_heart: bool = True,
        breathing_method: str | None = None,
    ) -> PhaseBeatResult:
        """Run the full pipeline on one trace.

        Args:
            trace: Captured CSI.
            n_persons: Number of subjects to resolve; 1 uses peak detection,
                >1 uses root-MUSIC (paper Section III-C).
            estimate_heart: Also estimate heart rate (single-person only —
                the paper does not attempt multi-person heart rates).
            breathing_method: Force ``"peak"``, ``"fft"``, ``"music"``,
                ``"music-single"`` (root-MUSIC on the selected subcarrier
                only) or ``"tensorbeat"`` (the Hankel-tensor CP method of
                the authors' follow-up); ``None`` chooses by ``n_persons``.

        Returns:
            :class:`PhaseBeatResult`.

        Raises:
            NotStationaryError: If environment detection rejects the
                segment and ``enforce_stationarity`` is set.
            EstimationError: If an estimator cannot produce a rate.
        """
        cfg = self.config
        obs = self._obs
        pairs = self._antenna_pairs(trace.n_rx)
        quality_report = trace.quality_report()
        needs_reclock = not quality_report.is_uniform
        n_sub = trace.n_subcarriers
        with obs.stage("phase_difference"):
            diff = pair_difference_matrix(
                trace, pairs, needs_reclock=needs_reclock, instrumentation=obs
            )

        with obs.stage("environment_detection"):
            v, state = self.classify_environment(
                diff[:, :n_sub], trace.sample_rate_hz
            )
        if cfg.enforce_stationarity and state is not ActivityState.SITTING:
            obs.count(
                "pipeline_not_stationary_total",
                help_text="Traces rejected by environment detection.",
            )
            raise NotStationaryError(v, state.value)

        # Calibrate every pair's columns in one batched call; selection and
        # the multi-person stages then draw on the diversity of both
        # baselines.
        with obs.stage("calibration"):
            calibrated = calibrate(diff, trace.sample_rate_hz, cfg.calibration)
            quality = np.concatenate(
                [self._subcarrier_quality_mask(trace, pair) for pair in pairs]
            )
        return self.estimate_from_matrix(
            calibrated.series,
            quality,
            calibrated.sample_rate_hz,
            antenna_pairs=pairs,
            n_subcarriers=n_sub,
            v_statistic_value=v,
            environment_state=state,
            n_persons=n_persons,
            estimate_heart=estimate_heart,
            breathing_method=breathing_method,
            reclocked=needs_reclock,
            input_loss_fraction=quality_report.loss_fraction,
        )

    def classify_environment(
        self, diff: FloatArray, sample_rate_hz: float
    ) -> tuple[float, ActivityState]:
        """Environment detection on an unwrapped phase-difference matrix.

        Computes the segment V statistic and classifies it against the
        configured stationary band; a borderline SITTING verdict is
        re-checked with sliding windows so a motion burst occupying only
        part of the segment (whole-segment V inside the band, estimate
        corrupted anyway) is still flagged as WALKING.

        Args:
            diff: ``[n_samples × n_subcarriers]`` unwrapped differences of
                a single antenna pair.
            sample_rate_hz: Their sample rate.

        Returns:
            ``(v, state)`` — the deciding V statistic (the max windowed V
            when escalated) and the activity classification.
        """
        cfg = self.config
        v = v_statistic(diff)
        lo, hi = cfg.environment.stationary_band
        if v < lo:
            return v, ActivityState.NO_PERSON
        if v > hi:
            return v, ActivityState.WALKING
        window = int(round(cfg.environment.window_s * sample_rate_hz))
        if diff.shape[0] >= 2 * window:
            _, windowed = windowed_v(diff, sample_rate_hz, cfg.environment)
            if windowed.max() > hi:
                return float(windowed.max()), ActivityState.WALKING
        return v, ActivityState.SITTING

    def estimate_from_matrix(
        self,
        matrix: FloatArray,
        quality: BoolArray,
        sample_rate_hz: float,
        *,
        antenna_pairs: Sequence[tuple[int, int]],
        n_subcarriers: int,
        v_statistic_value: float,
        environment_state: ActivityState,
        n_persons: int = 1,
        estimate_heart: bool = True,
        breathing_method: str | None = None,
        reclocked: bool = False,
        input_loss_fraction: float = 0.0,
    ) -> PhaseBeatResult:
        """Estimation back half: selection → DWT → breathing → heart.

        Everything downstream of calibration, operating on an
        already-calibrated stacked matrix.  :meth:`process` calls this after
        its batched front half; the incremental
        :class:`repro.core.streaming.StreamingMonitor` calls it directly
        with windows served by its running calibration engine, so both
        paths share one implementation of the estimator stages.

        Args:
            matrix: ``[n_samples × n_pairs·n_subcarriers]`` calibrated
                series (column blocks ordered as ``antenna_pairs``).
            quality: Per-column eligibility mask.
            sample_rate_hz: Post-calibration rate of ``matrix``.
            antenna_pairs: The pairs behind each column block (diagnostics).
            n_subcarriers: Columns per pair block.
            v_statistic_value: Environment V statistic (diagnostics).
            environment_state: Environment classification (diagnostics).
            n_persons: As in :meth:`process`.
            estimate_heart: As in :meth:`process`.
            breathing_method: As in :meth:`process`.
            reclocked: Whether the source series were reclocked.
            input_loss_fraction: Capture loss fraction (diagnostics).

        Returns:
            :class:`PhaseBeatResult`.
        """
        cfg = self.config
        obs = self._obs
        with obs.stage("subcarrier_selection"):
            selection = select_subcarrier(matrix, cfg.selection, mask=quality)
        selected_series = matrix[:, selection.selected]
        selected_pair = antenna_pairs[selection.selected // n_subcarriers]
        with obs.stage("dwt"):
            bands = decompose(selected_series, sample_rate_hz, cfg.dwt)

        eligible = matrix[:, quality] if quality.any() else matrix
        method = breathing_method or ("peak" if n_persons == 1 else "music")
        with obs.stage("breathing_estimation"):
            breathing = self._estimate_breathing(
                method, bands.breathing, eligible, selected_series,
                sample_rate_hz, n_persons,
            )

        heart = None
        heart_signal = bands.heart
        if estimate_heart and n_persons == 1:
            with obs.stage("heart_estimation"):
                f_breath = breathing[0].rate_bpm / 60.0
                heart_signal = self._best_heart_signal(
                    matrix, quality, selection.sensitivities, sample_rate_hz,
                    f_breath,
                )
                if heart_signal is None:
                    heart_signal = bands.heart
                rate = cfg.heart_estimator.estimate_bpm(
                    heart_signal,
                    bands.sample_rate_hz,
                    breathing_rate_hz=f_breath,
                )
                heart = VitalSignEstimate(rate_bpm=rate, method="fft+3bin")
        obs.count(
            "pipeline_processed_traces_total",
            labels={"method": method},
            help_text="Traces fully processed, by breathing method.",
        )

        diagnostics = PipelineDiagnostics(
            v_statistic=v_statistic_value,
            environment_state=environment_state,
            selected_subcarrier=selection.selected % n_subcarriers,
            selected_antenna_pair=selected_pair,
            candidate_subcarriers=tuple(
                c % n_subcarriers for c in selection.candidates
            ),
            sensitivities=selection.sensitivities,
            calibrated_rate_hz=sample_rate_hz,
            n_calibrated_samples=matrix.shape[0],
            breathing_band_hz=bands.breathing_band_hz,
            heart_band_hz=bands.heart_band_hz,
            reclocked=reclocked,
            input_loss_fraction=input_loss_fraction,
        )
        return PhaseBeatResult(
            breathing=breathing,
            heart=heart,
            diagnostics=diagnostics,
            breathing_signal=bands.breathing,
            heart_signal=heart_signal,
        )

    def _antenna_pairs(self, n_rx: int) -> list[tuple[int, int]]:
        """The antenna pairs to draw phase differences from.

        The configured pair first, then (with diversity enabled on a ≥3
        chain NIC) the first other adjacent pair.
        """
        cfg = self.config
        pairs = [cfg.antenna_pair]
        if cfg.use_pair_diversity:
            configured = tuple(sorted(cfg.antenna_pair))
            for x in range(n_rx - 1):
                if (x, x + 1) != configured:
                    pairs.append((x, x + 1))
                    break
        return pairs

    def _best_heart_signal(
        self,
        stacked: FloatArray,
        quality: BoolArray,
        sensitivities: FloatArray,
        sample_rate_hz: float,
        f_breath: float,
        n_candidates: int = 8,
    ) -> FloatArray | None:
        """Heart-band series from the candidate column with the best peak.

        Heart-stage subcarrier selection: the breathing-MAD selection can
        pick a series whose geometry nulls the (far weaker) heart
        modulation, so the heart stage re-selects among the top-MAD
        candidates by the quantity that actually matters to it — the
        heart-band peak SNR after the breathing-locked waveform (fundamental
        plus harmonic comb, see :func:`subtract_cycle_template`) has been
        removed.  Returns ``None`` when no candidate can be cleansed.
        """
        from ..dsp.fft_utils import band_mask, batched_magnitude_spectrum

        cfg = self.config
        eligible = np.flatnonzero(quality) if quality.any() else np.arange(
            stacked.shape[1]
        )
        order = eligible[np.argsort(sensitivities[eligible])[::-1]]
        cleansed_columns = []
        for column in order[:n_candidates]:
            try:
                cleansed_columns.append(
                    subtract_cycle_template(
                        stacked[:, column], sample_rate_hz, f_breath
                    )
                )
            except SignalTooShortError:
                continue
        if not cleansed_columns:
            return None
        # One batched DWT + one batched FFT over all surviving candidates
        # replaces the per-candidate decompose/spectrum loop.
        try:
            candidates = decompose_matrix(
                np.column_stack(cleansed_columns), sample_rate_hz, cfg.dwt
            ).heart
        except SignalTooShortError:
            return None
        freqs, mags = batched_magnitude_spectrum(candidates, sample_rate_hz)
        mask = band_mask(freqs, cfg.heart_estimator.band_hz)
        if not mask.any():
            return None
        in_band = mags[mask]
        floors = np.maximum(np.median(in_band, axis=0), 1e-12)
        best = int(np.argmax(in_band.max(axis=0) / floors))
        return candidates[:, best]

    def _subcarrier_quality_mask(
        self, trace: CSITrace, pair: tuple[int, int] | None = None
    ) -> BoolArray:
        """Per-pair eligibility mask (see :func:`amplitude_quality_mask`)."""
        return amplitude_quality_mask(
            trace, pair if pair is not None else self.config.antenna_pair
        )

    def _estimate_breathing(
        self,
        method: str,
        breathing_band: FloatArray,
        calibrated_matrix: FloatArray,
        selected_series: FloatArray,
        sample_rate_hz: float,
        n_persons: int,
    ) -> tuple[VitalSignEstimate, ...]:
        cfg = self.config
        if method == "peak":
            rate = cfg.peak_estimator.estimate_bpm(breathing_band, sample_rate_hz)
            return (VitalSignEstimate(rate_bpm=rate, method="peak"),)
        if method == "fft":
            rates = cfg.fft_estimator.estimate_bpm(
                breathing_band if n_persons == 1 else calibrated_matrix,
                sample_rate_hz,
                n_persons,
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="fft") for r in rates
            )
        if method == "music":
            rates = cfg.music_estimator.estimate_bpm(
                calibrated_matrix, sample_rate_hz, n_persons
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="root-music")
                for r in rates
            )
        if method == "music-single":
            rates = cfg.music_estimator.estimate_bpm(
                selected_series, sample_rate_hz, n_persons
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="root-music-1sc")
                for r in rates
            )
        if method == "tensorbeat":
            # Imported lazily: the extension is optional machinery.
            from ..extensions.tensorbeat import TensorBeatEstimator

            rates = TensorBeatEstimator().estimate_bpm(
                calibrated_matrix, sample_rate_hz, n_persons
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="tensorbeat")
                for r in rates
            )
        raise ValueError(
            f"unknown breathing method {method!r}; expected 'peak', 'fft', "
            "'music', 'music-single', or 'tensorbeat'"
        )
