"""The end-to-end PhaseBeat pipeline (paper Fig. 2).

:class:`PhaseBeat` wires the four modules together:

1. **Data Extraction** — cross-antenna phase difference from the trace.
2. **Data Preprocessing** — environment detection, calibration, subcarrier
   selection, DWT band split.
3. **Breathing Rate Estimation** — peak detection (one person) or
   root-MUSIC over all 30 subcarriers (multiple persons).
4. **Heart Rate Estimation** — FFT with 3-bin phase refinement on the DWT
   detail band.

Typical use::

    from repro import PhaseBeat, laboratory_scenario, capture_trace

    trace = capture_trace(laboratory_scenario(), duration_s=60.0)
    result = PhaseBeat().process(trace)
    print(result.breathing_rates_bpm, result.heart_rate_bpm)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..contracts import BoolArray, FloatArray, check_trace
from ..dsp.resample import reclock
from ..dsp.template import subtract_cycle_template
from ..errors import NotStationaryError, SignalTooShortError
from ..io_.trace import CSITrace
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..physio.motion import ActivityState
from .breathing import (
    FFTBreathingEstimator,
    MusicBreathingEstimator,
    PeakBreathingEstimator,
)
from .calibration import CalibrationConfig, calibrate
from .dwt_stage import DWTConfig, decompose
from .environment import (
    EnvironmentConfig,
    EnvironmentDetector,
    v_statistic,
    windowed_v,
)
from .heart import FFTHeartEstimator
from .phase_difference import phase_difference
from .results import PhaseBeatResult, PipelineDiagnostics, VitalSignEstimate
from .subcarrier_selection import (
    SelectionConfig,
    amplitude_quality_mask,
    select_subcarrier,
)

__all__ = ["PhaseBeatConfig", "PhaseBeat", "prepare_calibrated_matrix"]


def _pair_series(
    trace: CSITrace,
    pair: tuple[int, int],
    needs_reclock: bool,
    instrumentation: Instrumentation | None = None,
) -> FloatArray:
    """Phase-difference series for one pair, on a guaranteed-uniform grid.

    Every downstream stage (Hampel windows in seconds, decimation, DWT,
    FFT) assumes uniform sampling at ``trace.sample_rate_hz``.  A clean
    capture satisfies that by construction; a lossy/jittered/glitched one
    does not, so its series is interpolated onto the nominal-rate grid
    first (dropping clock-glitch victims) instead of silently treating
    packet index as time.
    """
    diff = phase_difference(trace, pair)
    if not needs_reclock:
        return diff
    return reclock(
        diff,
        trace.timestamps_s,
        trace.sample_rate_hz,
        instrumentation=instrumentation,
    ).series


@check_trace()
def prepare_calibrated_matrix(
    trace: CSITrace,
    *,
    antenna_pairs: list[tuple[int, int]] | None = None,
    calibration: CalibrationConfig | None = None,
) -> tuple[FloatArray, BoolArray, float]:
    """Phase-difference extraction + calibration for one or more pairs.

    The shared front half of the pipeline, exposed for experiments and
    ablations that want the same calibrated, quality-gated subcarrier
    matrix the estimator stages see (including antenna-pair diversity).

    Args:
        trace: The capture.
        antenna_pairs: Pairs to stack column-wise; default both adjacent
            pairs of a 3-chain NIC.
        calibration: Calibration parameters.

    Returns:
        ``(matrix, quality, sample_rate_hz)`` -- the stacked calibrated
        series of shape ``(n_samples, 30 * n_pairs)``, the per-column
        eligibility mask, and the post-calibration rate.
    """
    if antenna_pairs is None:
        antenna_pairs = [(0, 1)]
        if trace.n_rx >= 3:
            antenna_pairs.append((1, 2))
    columns = []
    masks = []
    sample_rate = trace.sample_rate_hz
    needs_reclock = not trace.quality_report().is_uniform
    for pair in antenna_pairs:
        diff = _pair_series(trace, pair, needs_reclock)
        calibrated = calibrate(diff, trace.sample_rate_hz, calibration)
        columns.append(calibrated.series)
        masks.append(amplitude_quality_mask(trace, pair))
        sample_rate = calibrated.sample_rate_hz
    return np.hstack(columns), np.concatenate(masks), sample_rate


@dataclass(frozen=True)
class PhaseBeatConfig:
    """All pipeline parameters in one place (paper defaults).

    Attributes:
        antenna_pair: RX chains whose phase difference is used.
        use_pair_diversity: Also derive phase differences from the second
            adjacent antenna pair and let subcarrier selection choose across
            both.  A chest reflection can sit at a *null point* of one
            pair's phase response (the static operating phase makes the
            breathing fundamental vanish, leaving only its second
            harmonic); the other pair, a half-wavelength away, almost never
            nulls simultaneously.  The paper's hardware exposes all three
            chains; using two pairs is free diversity.
        environment: Environment-detection parameters.
        calibration: Calibration (Hampel + downsample) parameters.
        selection: Subcarrier-selection parameters.
        dwt: DWT-stage parameters.
        peak_estimator: Single-person breathing estimator.
        music_estimator: Multi-person breathing estimator.
        fft_estimator: FFT breathing estimator (used when explicitly
            requested via ``breathing_method="fft"``).
        heart_estimator: Heart-rate estimator.
        enforce_stationarity: Raise :class:`NotStationaryError` when the
            segment fails environment detection; when False the pipeline
            estimates anyway (used by sweeps that control the scene).
    """

    antenna_pair: tuple[int, int] = (0, 1)
    use_pair_diversity: bool = True
    environment: EnvironmentConfig = field(default_factory=EnvironmentConfig)
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    dwt: DWTConfig = field(default_factory=DWTConfig)
    peak_estimator: PeakBreathingEstimator = field(
        default_factory=PeakBreathingEstimator
    )
    music_estimator: MusicBreathingEstimator = field(
        default_factory=MusicBreathingEstimator
    )
    fft_estimator: FFTBreathingEstimator = field(
        default_factory=FFTBreathingEstimator
    )
    heart_estimator: FFTHeartEstimator = field(default_factory=FFTHeartEstimator)
    enforce_stationarity: bool = True


class PhaseBeat:
    """CSI phase-difference vital-sign monitor.

    Args:
        config: Pipeline parameters; paper defaults when omitted.
        instrumentation: Optional :class:`repro.obs.Instrumentation`; when
            given, every stage of :meth:`process` is timed into the
            ``pipeline_stage_duration_s`` histogram (see
            ``docs/observability.md``).
    """

    def __init__(
        self,
        config: PhaseBeatConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        self.config = config if config is not None else PhaseBeatConfig()
        self._detector = EnvironmentDetector(self.config.environment)
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )

    @check_trace()
    def process(
        self,
        trace: CSITrace,
        *,
        n_persons: int = 1,
        estimate_heart: bool = True,
        breathing_method: str | None = None,
    ) -> PhaseBeatResult:
        """Run the full pipeline on one trace.

        Args:
            trace: Captured CSI.
            n_persons: Number of subjects to resolve; 1 uses peak detection,
                >1 uses root-MUSIC (paper Section III-C).
            estimate_heart: Also estimate heart rate (single-person only —
                the paper does not attempt multi-person heart rates).
            breathing_method: Force ``"peak"``, ``"fft"``, ``"music"``,
                ``"music-single"`` (root-MUSIC on the selected subcarrier
                only) or ``"tensorbeat"`` (the Hankel-tensor CP method of
                the authors' follow-up); ``None`` chooses by ``n_persons``.

        Returns:
            :class:`PhaseBeatResult`.

        Raises:
            NotStationaryError: If environment detection rejects the
                segment and ``enforce_stationarity`` is set.
            EstimationError: If an estimator cannot produce a rate.
        """
        cfg = self.config
        obs = self._obs
        pairs = self._antenna_pairs(trace)
        quality_report = trace.quality_report()
        needs_reclock = not quality_report.is_uniform
        with obs.stage("phase_difference"):
            diff = _pair_series(trace, pairs[0], needs_reclock, obs)

        with obs.stage("environment_detection"):
            v = v_statistic(diff)
            lo, hi = cfg.environment.stationary_band
            if v < lo:
                state = ActivityState.NO_PERSON
            elif v > hi:
                state = ActivityState.WALKING
            else:
                state = ActivityState.SITTING
                # A motion burst occupying only part of the segment can leave
                # the whole-segment V inside the band while corrupting the
                # estimate; any single sliding window above the band flags it.
                window = int(round(cfg.environment.window_s * trace.sample_rate_hz))
                if diff.shape[0] >= 2 * window:
                    _, windowed = windowed_v(
                        diff, trace.sample_rate_hz, cfg.environment
                    )
                    if windowed.max() > hi:
                        state = ActivityState.WALKING
                        v = float(windowed.max())
        if cfg.enforce_stationarity and state is not ActivityState.SITTING:
            obs.count(
                "pipeline_not_stationary_total",
                help_text="Traces rejected by environment detection.",
            )
            raise NotStationaryError(v, state.value)

        # Calibrate every pair's series and stack them column-wise: the
        # selection and multi-person stages then draw on the diversity of
        # both baselines.
        columns = []
        masks = []
        sample_rate = None
        with obs.stage("calibration"):
            for pair in pairs:
                pair_diff = (
                    diff
                    if pair == pairs[0]
                    else _pair_series(trace, pair, needs_reclock, obs)
                )
                calibrated = calibrate(
                    pair_diff, trace.sample_rate_hz, cfg.calibration
                )
                columns.append(calibrated.series)
                masks.append(self._subcarrier_quality_mask(trace, pair))
                sample_rate = calibrated.sample_rate_hz
        stacked = np.hstack(columns)
        quality = np.concatenate(masks)
        n_sub = trace.n_subcarriers

        with obs.stage("subcarrier_selection"):
            selection = select_subcarrier(stacked, cfg.selection, mask=quality)
        selected_series = stacked[:, selection.selected]
        selected_pair = pairs[selection.selected // n_sub]
        with obs.stage("dwt"):
            bands = decompose(selected_series, sample_rate, cfg.dwt)

        matrix = stacked[:, quality] if quality.any() else stacked
        method = breathing_method or ("peak" if n_persons == 1 else "music")
        with obs.stage("breathing_estimation"):
            breathing = self._estimate_breathing(
                method, bands.breathing, matrix, selected_series,
                sample_rate, n_persons,
            )

        heart = None
        heart_signal = bands.heart
        if estimate_heart and n_persons == 1:
            with obs.stage("heart_estimation"):
                f_breath = breathing[0].rate_bpm / 60.0
                heart_signal = self._best_heart_signal(
                    stacked, quality, selection.sensitivities, sample_rate,
                    f_breath,
                )
                if heart_signal is None:
                    heart_signal = bands.heart
                rate = cfg.heart_estimator.estimate_bpm(
                    heart_signal,
                    bands.sample_rate_hz,
                    breathing_rate_hz=f_breath,
                )
                heart = VitalSignEstimate(rate_bpm=rate, method="fft+3bin")
        obs.count(
            "pipeline_processed_traces_total",
            labels={"method": method},
            help_text="Traces fully processed, by breathing method.",
        )

        diagnostics = PipelineDiagnostics(
            v_statistic=v,
            environment_state=state,
            selected_subcarrier=selection.selected % n_sub,
            selected_antenna_pair=selected_pair,
            candidate_subcarriers=tuple(c % n_sub for c in selection.candidates),
            sensitivities=selection.sensitivities,
            calibrated_rate_hz=sample_rate,
            n_calibrated_samples=stacked.shape[0],
            breathing_band_hz=bands.breathing_band_hz,
            heart_band_hz=bands.heart_band_hz,
            reclocked=needs_reclock,
            input_loss_fraction=quality_report.loss_fraction,
        )
        return PhaseBeatResult(
            breathing=breathing,
            heart=heart,
            diagnostics=diagnostics,
            breathing_signal=bands.breathing,
            heart_signal=heart_signal,
        )

    def _antenna_pairs(self, trace: CSITrace) -> list[tuple[int, int]]:
        """The antenna pairs to draw phase differences from.

        The configured pair first, then (with diversity enabled on a ≥3
        chain NIC) the first other adjacent pair.
        """
        cfg = self.config
        pairs = [cfg.antenna_pair]
        if cfg.use_pair_diversity:
            configured = tuple(sorted(cfg.antenna_pair))
            for x in range(trace.n_rx - 1):
                if (x, x + 1) != configured:
                    pairs.append((x, x + 1))
                    break
        return pairs

    def _best_heart_signal(
        self,
        stacked: FloatArray,
        quality: BoolArray,
        sensitivities: FloatArray,
        sample_rate_hz: float,
        f_breath: float,
        n_candidates: int = 8,
    ) -> FloatArray | None:
        """Heart-band series from the candidate column with the best peak.

        Heart-stage subcarrier selection: the breathing-MAD selection can
        pick a series whose geometry nulls the (far weaker) heart
        modulation, so the heart stage re-selects among the top-MAD
        candidates by the quantity that actually matters to it — the
        heart-band peak SNR after the breathing-locked waveform (fundamental
        plus harmonic comb, see :func:`subtract_cycle_template`) has been
        removed.  Returns ``None`` when no candidate can be cleansed.
        """
        from ..dsp.fft_utils import band_mask, magnitude_spectrum

        cfg = self.config
        eligible = np.flatnonzero(quality) if quality.any() else np.arange(
            stacked.shape[1]
        )
        order = eligible[np.argsort(sensitivities[eligible])[::-1]]
        best_signal = None
        best_snr = -np.inf
        for column in order[:n_candidates]:
            try:
                cleansed = subtract_cycle_template(
                    stacked[:, column], sample_rate_hz, f_breath
                )
                candidate = decompose(cleansed, sample_rate_hz, cfg.dwt).heart
            except SignalTooShortError:
                continue
            freqs, mag = magnitude_spectrum(candidate, sample_rate_hz)
            mask = band_mask(freqs, cfg.heart_estimator.band_hz)
            if not mask.any():
                continue
            in_band = mag[mask]
            floor = float(np.median(in_band))
            snr = float(in_band.max()) / max(floor, 1e-12)
            if snr > best_snr:
                best_snr = snr
                best_signal = candidate
        return best_signal

    def _subcarrier_quality_mask(
        self, trace: CSITrace, pair: tuple[int, int] | None = None
    ) -> BoolArray:
        """Per-pair eligibility mask (see :func:`amplitude_quality_mask`)."""
        return amplitude_quality_mask(
            trace, pair if pair is not None else self.config.antenna_pair
        )

    def _estimate_breathing(
        self,
        method: str,
        breathing_band: FloatArray,
        calibrated_matrix: FloatArray,
        selected_series: FloatArray,
        sample_rate_hz: float,
        n_persons: int,
    ) -> tuple[VitalSignEstimate, ...]:
        cfg = self.config
        if method == "peak":
            rate = cfg.peak_estimator.estimate_bpm(breathing_band, sample_rate_hz)
            return (VitalSignEstimate(rate_bpm=rate, method="peak"),)
        if method == "fft":
            rates = cfg.fft_estimator.estimate_bpm(
                breathing_band if n_persons == 1 else calibrated_matrix,
                sample_rate_hz,
                n_persons,
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="fft") for r in rates
            )
        if method == "music":
            rates = cfg.music_estimator.estimate_bpm(
                calibrated_matrix, sample_rate_hz, n_persons
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="root-music")
                for r in rates
            )
        if method == "music-single":
            rates = cfg.music_estimator.estimate_bpm(
                selected_series, sample_rate_hz, n_persons
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="root-music-1sc")
                for r in rates
            )
        if method == "tensorbeat":
            # Imported lazily: the extension is optional machinery.
            from ..extensions.tensorbeat import TensorBeatEstimator

            rates = TensorBeatEstimator().estimate_bpm(
                calibrated_matrix, sample_rate_hz, n_persons
            )
            return tuple(
                VitalSignEstimate(rate_bpm=float(r), method="tensorbeat")
                for r in rates
            )
        raise ValueError(
            f"unknown breathing method {method!r}; expected 'peak', 'fft', "
            "'music', 'music-single', or 'tensorbeat'"
        )
