"""Realtime (sliding-window) vital-sign monitoring.

The paper emphasizes that PhaseBeat runs in realtime: downsampling to 20 Hz
exists precisely to keep the per-window processing cheap.  This module
provides the streaming counterpart of :class:`~repro.core.pipeline.PhaseBeat`:
packets are pushed as they arrive, and once a full analysis window has
accumulated the estimator re-runs over the most recent window, hopping
forward by a configurable stride.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, EstimationError, NotStationaryError
from ..io_.trace import CSITrace
from .pipeline import PhaseBeat, PhaseBeatConfig
from .results import PhaseBeatResult

__all__ = ["StreamingConfig", "StreamingEstimate", "StreamingMonitor"]


@dataclass(frozen=True)
class StreamingConfig:
    """Streaming parameters.

    Attributes:
        window_s: Analysis window length (seconds of packets kept).
        hop_s: How often a new estimate is emitted.
        n_persons: Subjects to resolve per window.
        estimate_heart: Also estimate heart rate per window.
    """

    window_s: float = 30.0
    hop_s: float = 5.0
    n_persons: int = 1
    estimate_heart: bool = False

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.hop_s <= 0:
            raise ConfigurationError("window and hop must be positive")
        if self.hop_s > self.window_s:
            raise ConfigurationError("hop must not exceed the window")
        if self.n_persons < 1:
            raise ConfigurationError("n_persons must be >= 1")


@dataclass(frozen=True)
class StreamingEstimate:
    """One emitted estimate.

    Attributes:
        time_s: Timestamp of the window's last packet.
        result: Full pipeline result for the window, or ``None`` when the
            window was rejected (non-stationary) or estimation failed.
        rejected_reason: Why the window produced no result (``None`` on
            success; ``"not-stationary"`` or ``"estimation-failed"``).
    """

    time_s: float
    result: PhaseBeatResult | None
    rejected_reason: str | None = None

    @property
    def ok(self) -> bool:
        """Whether this window produced a usable estimate."""
        return self.result is not None


class StreamingMonitor:
    """Push-based sliding-window monitor.

    Args:
        sample_rate_hz: Packet rate of the incoming stream.
        config: Streaming parameters.
        pipeline_config: Parameters for the underlying pipeline.
    """

    def __init__(
        self,
        sample_rate_hz: float,
        config: StreamingConfig | None = None,
        pipeline_config: PhaseBeatConfig | None = None,
    ):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        self.sample_rate_hz = float(sample_rate_hz)
        self.config = config if config is not None else StreamingConfig()
        self._pipeline = PhaseBeat(pipeline_config)
        self._window_packets = int(round(self.config.window_s * sample_rate_hz))
        self._hop_packets = int(round(self.config.hop_s * sample_rate_hz))
        self._buffer: deque = deque(maxlen=self._window_packets)
        self._times: deque = deque(maxlen=self._window_packets)
        self._since_last_emit = 0
        self._subcarrier_indices: np.ndarray | None = None

    def push_packet(
        self, csi_packet: np.ndarray, timestamp_s: float
    ) -> StreamingEstimate | None:
        """Feed one packet; returns an estimate when a hop completes.

        Args:
            csi_packet: Complex CSI of one packet, shape
                ``(n_rx, n_subcarriers)``.
            timestamp_s: Capture time of the packet.

        Returns:
            A :class:`StreamingEstimate` when enough new packets have
            arrived, otherwise ``None``.
        """
        csi_packet = np.asarray(csi_packet)
        if csi_packet.ndim != 2:
            raise ConfigurationError(
                f"packet must be (n_rx, n_subcarriers), got {csi_packet.shape}"
            )
        if self._subcarrier_indices is None:
            self._subcarrier_indices = np.arange(csi_packet.shape[1])
        self._buffer.append(csi_packet)
        self._times.append(float(timestamp_s))
        self._since_last_emit += 1
        if (
            len(self._buffer) < self._window_packets
            or self._since_last_emit < self._hop_packets
        ):
            return None
        self._since_last_emit = 0
        return self._emit()

    def push_trace(self, trace: CSITrace) -> list[StreamingEstimate]:
        """Feed a whole trace packet-by-packet; collect all estimates."""
        estimates = []
        for k in range(trace.n_packets):
            out = self.push_packet(trace.csi[k], float(trace.timestamps_s[k]))
            if out is not None:
                estimates.append(out)
        return estimates

    def _emit(self) -> StreamingEstimate:
        window = CSITrace(
            csi=np.stack(self._buffer),
            timestamps_s=np.asarray(self._times),
            sample_rate_hz=self.sample_rate_hz,
            subcarrier_indices=self._subcarrier_indices,
            meta={"streaming_window": True},
        )
        t_end = float(self._times[-1])
        try:
            result = self._pipeline.process(
                window,
                n_persons=self.config.n_persons,
                estimate_heart=self.config.estimate_heart,
            )
        except NotStationaryError:
            return StreamingEstimate(t_end, None, rejected_reason="not-stationary")
        except EstimationError:
            return StreamingEstimate(t_end, None, rejected_reason="estimation-failed")
        return StreamingEstimate(t_end, result)
