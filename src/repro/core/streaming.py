"""Realtime (sliding-window) vital-sign monitoring, fault-tolerant.

The paper emphasizes that PhaseBeat runs in realtime: downsampling to 20 Hz
exists precisely to keep the per-window processing cheap.  This module
provides the streaming counterpart of :class:`~repro.core.pipeline.PhaseBeat`:
packets are pushed as they arrive, and once a full analysis window has
accumulated the estimator re-runs over the most recent window, hopping
forward by a configurable stride.

Unlike the paper's evaluation, a deployed monitor cannot assume the clean
400 pkt/s stream: frames drop, NICs reset, and timestamp counters glitch.
The monitor therefore

* **validates every packet** — non-finite CSI, non-finite timestamps, and
  backward timestamps are dropped (and counted), never buffered; a backward
  jump larger than the window is treated as a stream reset;
* **sizes windows by time, not packet count** — the buffer covers a true
  ``window_s`` seconds of capture even when half the packets are missing;
* **quality-gates every window** — windows containing a long gap or too few
  packets are rejected with a structured reason (``"data-gap"``,
  ``"degraded-input"``) instead of being fed to the estimator;
* **degrades gracefully** — a rejected window re-emits the last good
  estimate, flagged ``held_over`` with its staleness, until the
  ``holdover_s`` budget expires; once the fault slides out of the window,
  fresh estimates resume automatically;
* **checkpoints and restores** — :meth:`StreamingMonitor.checkpoint`
  snapshots the buffer and holdover state, and :meth:`~StreamingMonitor.restore`
  rebuilds a monitor that continues **bit-identically**, which is what lets
  :class:`repro.service.MonitorSupervisor` restart a crashed monitor without
  losing its analysis window.
"""

from __future__ import annotations

import copy
from collections import deque
from dataclasses import asdict, dataclass
from itertools import islice
from typing import Any

import numpy as np

from ..errors import (
    CheckpointError,
    ConfigurationError,
    EstimationError,
    NotStationaryError,
    SignalTooShortError,
    TraceFormatError,
)
from ..contracts import ComplexArray, FloatArray, IntArray
from ..dsp.streaming_kernels import StreamingCalibrator, trailing_window_samples
from ..io_.quality import TraceQualityReport, assess_timestamps
from ..io_.trace import CSITrace
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..physio.motion import ActivityState
from .pipeline import PhaseBeat, PhaseBeatConfig
from .phase_difference import wrapped_pair_matrix
from .results import PhaseBeatResult
from .subcarrier_selection import amplitude_mask_from_mean

__all__ = ["StreamingConfig", "StreamingEstimate", "StreamingMonitor"]

# Checkpoint payload layout version; bumped whenever the monitor's internal
# state gains/loses fields so stale checkpoints fail loudly on restore.
_CHECKPOINT_VERSION = 2

# A window with fewer packets than this cannot support calibration + DWT
# regardless of its nominal span; it is rejected as degraded input.
_MIN_WINDOW_PACKETS = 16

# Per-step timing-anomaly threshold of the incremental path: an interval
# deviating from nominal by more than this fraction disqualifies the stream
# for the trailing engine until the step leaves the retained buffer.  Must
# match the ``uniform_tol`` default of
# :func:`repro.io_.quality.assess_timestamps` — the window-level gate the
# batch pipeline uses to decide reclocking.
_UNIFORM_TOL = 0.25


@dataclass(frozen=True)
class StreamingConfig:
    """Streaming parameters.

    Attributes:
        window_s: Analysis window length (seconds of packets kept).
        hop_s: How often a new estimate is emitted.
        n_persons: Subjects to resolve per window.
        estimate_heart: Also estimate heart rate per window.
        max_gap_s: Largest inter-packet gap tolerated inside a window;
            windows containing a longer dropout are rejected ``"data-gap"``.
        max_loss_fraction: Maximum tolerable packet loss (effective vs
            nominal rate) per window; above it the window is rejected
            ``"degraded-input"``.
        holdover_s: Staleness budget — how long a rejected window may
            re-emit the last good estimate (flagged ``held_over``) before
            the monitor reports no estimate at all.  Zero disables holdover.
        incremental: Run clean (uniformly-timed) windows through the
            incremental trailing-calibration engine instead of recomputing
            the whole window from scratch each hop.  Windows that fail the
            timing checks transparently fall back to the batch pipeline,
            so fault handling is unchanged; see ``docs/performance.md``.
    """

    window_s: float = 30.0
    hop_s: float = 5.0
    n_persons: int = 1
    estimate_heart: bool = False
    max_gap_s: float = 0.5
    max_loss_fraction: float = 0.25
    holdover_s: float = 30.0
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.hop_s <= 0:
            raise ConfigurationError("window and hop must be positive")
        if self.hop_s > self.window_s:
            raise ConfigurationError("hop must not exceed the window")
        if self.n_persons < 1:
            raise ConfigurationError("n_persons must be >= 1")
        if self.max_gap_s <= 0:
            raise ConfigurationError("max_gap_s must be positive")
        if not 0.0 <= self.max_loss_fraction < 1.0:
            raise ConfigurationError("max_loss_fraction must be in [0, 1)")
        if self.holdover_s < 0:
            raise ConfigurationError("holdover_s must be >= 0")


@dataclass(frozen=True)
class StreamingEstimate:
    """One emitted estimate.

    Attributes:
        time_s: Timestamp of the window's last packet.
        result: Full pipeline result for the window; on a rejected window
            this is the *held-over* last good result (``held_over`` True)
            while the staleness budget lasts, else ``None``.
        rejected_reason: Why the window produced no fresh result (``None``
            on success; ``"data-gap"``, ``"degraded-input"``,
            ``"not-stationary"`` or ``"estimation-failed"``).
        held_over: ``result`` is a re-emission of an earlier estimate, not
            an analysis of this window.
        staleness_s: Age of the held-over result (0 for fresh estimates).
        quality: Timing-quality report of the emitted window.
    """

    time_s: float
    result: PhaseBeatResult | None
    rejected_reason: str | None = None
    held_over: bool = False
    staleness_s: float = 0.0
    quality: TraceQualityReport | None = None

    @property
    def ok(self) -> bool:
        """Whether this window carries a usable (possibly stale) estimate."""
        return self.result is not None

    @property
    def fresh(self) -> bool:
        """Whether this window was itself successfully analyzed."""
        return self.result is not None and not self.held_over


class StreamingMonitor:
    """Push-based sliding-window monitor.

    Args:
        sample_rate_hz: Nominal packet rate of the incoming stream.
        config: Streaming parameters.
        pipeline_config: Parameters for the underlying pipeline.
        instrumentation: Optional :class:`repro.obs.Instrumentation`,
            shared with the wrapped pipeline; records window latency,
            quality-gate rejections, holdovers, and per-packet drop
            counters.  Never serialized into checkpoints — a restored
            monitor keeps its own instrumentation.

    Attributes:
        counters: Running tallies of the faults absorbed so far — keys
            ``packets_in``, ``dropped_nonfinite_csi``,
            ``dropped_nonfinite_timestamp``, ``dropped_backward_timestamp``,
            ``stream_resets``.
    """

    def __init__(
        self,
        sample_rate_hz: float,
        config: StreamingConfig | None = None,
        pipeline_config: PhaseBeatConfig | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        self.sample_rate_hz = float(sample_rate_hz)
        self.config = config if config is not None else StreamingConfig()
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._pipeline = PhaseBeat(pipeline_config, instrumentation=self._obs)
        # One nominal packet interval: the slack that makes "span >= window"
        # and "hop elapsed" robust to the last packet landing one tick short
        # of the exact boundary (a stream sampled at t = k/rate reaches
        # 30 s worth of packets at t = 29.9975, not 30.0).
        self._eps = 1.0 / self.sample_rate_hz
        self._buffer: deque = deque()
        self._times: deque = deque()
        self._subcarrier_indices: np.ndarray | None = None
        self._packet_shape: tuple[int, int] | None = None
        self._last_time: float | None = None
        self._last_emit_time: float | None = None
        self._last_good_time: float | None = None
        self._last_good_result: PhaseBeatResult | None = None
        # Incremental-mode state.  The trailing engine's caches stay in
        # lockstep with the packet buffer (row i of each ↔ buffer[i]); the
        # buffer additionally retains enough pre-window context that an
        # engine rebuilt from it alone reproduces the running engine's
        # values bitwise inside the analysis window (see
        # StreamingCalibrator.rebuild_context_samples).
        calibration = self._pipeline.config.calibration
        self._incremental = bool(self.config.incremental)
        self._decimation = calibration.decimation_factor(self.sample_rate_hz)
        try:
            trend_w = trailing_window_samples(
                calibration.trend_window_s, self.sample_rate_hz
            )
            noise_w = trailing_window_samples(
                calibration.noise_window_s, self.sample_rate_hz
            )
            if noise_w >= trend_w:
                raise ConfigurationError(
                    "denoise window must be shorter than the trend window"
                )
        except ConfigurationError:
            # The calibration windows cannot be expressed as trailing
            # kernels at this rate; run every window through the batch path.
            self._incremental = False
            trend_w = noise_w = 1
        self._context_rows = 2 * (trend_w - 1) + 2 * (noise_w - 1)
        self._engine: StreamingCalibrator | None = None
        self._amps: FloatArray | None = None
        self._pairs: list[tuple[int, int]] | None = None
        self._win_start = 0
        self._anomaly_time: float | None = None
        self._restored_cycles: IntArray | None = None
        # Operational (non-checkpointed) overload control: the effective
        # hop is config.hop_s * _hop_stretch, so an overloaded service can
        # emit less often without changing window geometry mid-stream.
        self._hop_stretch = 1.0
        self.counters: dict[str, int] = {
            "packets_in": 0,
            "dropped_nonfinite_csi": 0,
            "dropped_nonfinite_timestamp": 0,
            "dropped_backward_timestamp": 0,
            "stream_resets": 0,
        }

    def push_packet(
        self, csi_packet: ComplexArray, timestamp_s: float
    ) -> StreamingEstimate | None:
        """Feed one packet; returns an estimate when a hop completes.

        Malformed packets (non-finite CSI or timestamp, backward timestamp)
        are dropped and counted rather than buffered; a backward jump larger
        than the window is treated as a stream reset (NIC rebooted, counter
        restarted) and the monitor starts over.

        Args:
            csi_packet: Complex CSI of one packet, shape
                ``(n_rx, n_subcarriers)``.
            timestamp_s: Capture time of the packet.

        Returns:
            A :class:`StreamingEstimate` when enough new capture time has
            elapsed, otherwise ``None``.

        Raises:
            ConfigurationError: The packet is not a 2-D array.
            TraceFormatError: The packet shape changed mid-stream.
        """
        csi_packet = np.asarray(csi_packet)
        if csi_packet.ndim != 2:
            raise ConfigurationError(
                f"packet must be (n_rx, n_subcarriers), got {csi_packet.shape}"
            )
        shape = (int(csi_packet.shape[0]), int(csi_packet.shape[1]))
        if self._packet_shape is None:
            self._packet_shape = shape
            self._subcarrier_indices = np.arange(shape[1])
        elif shape != self._packet_shape:
            raise TraceFormatError(
                f"packet shape changed mid-stream: expected "
                f"{self._packet_shape}, got {shape}"
            )
        self.counters["packets_in"] += 1

        timestamp_s = float(timestamp_s)
        if not np.isfinite(timestamp_s):
            self.counters["dropped_nonfinite_timestamp"] += 1
            self._count_drop("nonfinite-timestamp")
            return None
        if not np.all(np.isfinite(csi_packet)):
            self.counters["dropped_nonfinite_csi"] += 1
            self._count_drop("nonfinite-csi")
            return None
        if self._last_time is not None and timestamp_s < self._last_time:
            if self._last_time - timestamp_s > self.config.window_s:
                # The clock went back further than the whole window: this is
                # a counter restart, not a glitch.  Start a fresh stream.
                self._reset_stream()
                self.counters["stream_resets"] += 1
                self._obs.count(
                    "monitor_stream_resets_total",
                    help_text="Backward clock jumps treated as stream resets.",
                )
            else:
                self.counters["dropped_backward_timestamp"] += 1
                self._count_drop("backward-timestamp")
                return None

        if self._incremental and self._last_time is not None:
            step = (timestamp_s - self._last_time) * self.sample_rate_hz
            if abs(step - 1.0) > _UNIFORM_TOL:
                # Timing anomaly: the trailing engine (which treats rows as
                # uniform samples) is invalid until this step leaves the
                # retained buffer; windows fall back to the batch path.
                self._anomaly_time = timestamp_s
                self._drop_engine()
        self._buffer.append(csi_packet)
        self._times.append(timestamp_s)
        self._last_time = timestamp_s
        # Time-based window: evict until the buffer spans at most window_s,
        # so a lossy stream still analyzes a true window_s seconds.  The
        # incremental mode retains pre-window context for the trailing
        # engine instead (evicted in _evict_retained at emit time) and only
        # advances the window-start pointer here — the pointed-to packet set
        # is identical to the evicting loop's by construction.
        if self._incremental:
            while (
                self._win_start < len(self._times) - 1
                and self._times[-1] - self._times[self._win_start]
                > self.config.window_s + self._eps
            ):
                self._win_start += 1
        else:
            while (
                len(self._times) > 1
                and self._times[-1] - self._times[0]
                > self.config.window_s + self._eps
            ):
                self._buffer.popleft()
                self._times.popleft()

        span = self._times[-1] - self._times[self._win_start]
        if span < self.config.window_s - self._eps:
            return None
        effective_hop_s = self.config.hop_s * self._hop_stretch
        if (
            self._last_emit_time is not None
            and timestamp_s - self._last_emit_time < effective_hop_s - self._eps
        ):
            return None
        self._last_emit_time = timestamp_s
        return self._emit()

    def push_trace(self, trace: CSITrace) -> list[StreamingEstimate]:
        """Feed a whole trace packet-by-packet; collect all estimates.

        Accepts impaired traces (lossy, glitched) — per-packet validation
        drops what cannot be used, exactly as it would live.
        """
        estimates = []
        for k in range(trace.n_packets):
            out = self.push_packet(trace.csi[k], float(trace.timestamps_s[k]))
            if out is not None:
                estimates.append(out)
        return estimates

    @property
    def hop_stretch(self) -> float:
        """Current hop-widening factor (1.0 = the configured cadence)."""
        return self._hop_stretch

    def set_hop_stretch(self, stretch: float) -> None:
        """Widen (or restore) the emission cadence without reconfiguring.

        The effective hop becomes ``config.hop_s * stretch``; window
        geometry, gating, and checkpoints are untouched, so overload
        throttling can be applied and lifted mid-stream.  This is
        operational state: it is deliberately *not* checkpointed — a
        restored monitor starts back at the configured cadence unless its
        supervisor re-applies the stretch.

        Args:
            stretch: Multiplier >= 1 applied to ``config.hop_s``.
        """
        if stretch < 1.0:
            raise ConfigurationError(
                f"hop stretch must be >= 1, got {stretch}"
            )
        self._hop_stretch = float(stretch)

    def window_trace(self) -> CSITrace | None:
        """The current buffer as a trace (``None`` with < 2 packets).

        Built ``strict=False`` because a buffered window may legitimately
        carry the degraded timing the quality gates rejected it for — the
        fallback estimators in :mod:`repro.service` analyze exactly those
        windows.
        """
        if len(self._buffer) - self._win_start < 2:
            return None
        return CSITrace(
            csi=np.stack(list(islice(self._buffer, self._win_start, None))),
            timestamps_s=np.asarray(self._times)[self._win_start :],
            sample_rate_hz=self.sample_rate_hz,
            subcarrier_indices=self._subcarrier_indices,
            meta={"streaming_window": True},
            strict=False,
        )

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the monitor's full mutable state.

        The returned dict is self-contained (arrays and results are
        copied): mutating the monitor afterwards does not corrupt it.  A
        monitor constructed with the same configuration and then
        :meth:`restore`-d from this snapshot produces **bit-identical**
        estimates to one that was never interrupted.
        """
        return {
            "version": _CHECKPOINT_VERSION,
            "sample_rate_hz": self.sample_rate_hz,
            "config": asdict(self.config),
            "packet_shape": self._packet_shape,
            "subcarrier_indices": (
                None
                if self._subcarrier_indices is None
                else self._subcarrier_indices.copy()
            ),
            "buffer": [packet.copy() for packet in self._buffer],
            "times": list(self._times),
            "last_time": self._last_time,
            "last_emit_time": self._last_emit_time,
            "last_good_time": self._last_good_time,
            "last_good_result": copy.deepcopy(self._last_good_result),
            "counters": dict(self.counters),
            # Incremental-engine state.  Only the integer unwrap anchor
            # (cycle counts at the buffer's first packet) is serialized:
            # every float cache is a pure function of the buffered packets
            # and is rebuilt bit-identically from them on restore, but the
            # anchor is path history a truncated buffer cannot reproduce.
            "engine_cycles": (
                self._engine.base_cycles
                if self._engine is not None
                else (
                    None
                    if self._restored_cycles is None
                    else self._restored_cycles.copy()
                )
            ),
            "anomaly_time": self._anomaly_time,
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Load a :meth:`checkpoint` snapshot into this monitor.

        The monitor must have been constructed with the same sample rate
        and streaming configuration the checkpoint was taken under;
        anything else would silently change window geometry mid-stream.

        Raises:
            CheckpointError: The snapshot is malformed, from a different
                checkpoint format version, or incompatible with this
                monitor's configuration.
        """
        try:
            version = state["version"]
            if version != _CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"checkpoint version {version} != supported "
                    f"{_CHECKPOINT_VERSION}"
                )
            if state["sample_rate_hz"] != self.sample_rate_hz:
                raise CheckpointError(
                    f"checkpoint rate {state['sample_rate_hz']} Hz != "
                    f"monitor rate {self.sample_rate_hz} Hz"
                )
            if state["config"] != asdict(self.config):
                raise CheckpointError(
                    "checkpoint was taken under a different streaming "
                    "configuration"
                )
            buffer = [np.asarray(p) for p in state["buffer"]]
            times = [float(t) for t in state["times"]]
            if len(buffer) != len(times):
                raise CheckpointError(
                    f"checkpoint buffer has {len(buffer)} packets but "
                    f"{len(times)} timestamps"
                )
            packet_shape = state["packet_shape"]
            for packet in buffer:
                if packet_shape is not None and packet.shape != tuple(
                    packet_shape
                ):
                    raise CheckpointError(
                        f"checkpoint packet shape {packet.shape} != "
                        f"recorded {tuple(packet_shape)}"
                    )
            self._packet_shape = (
                None if packet_shape is None else tuple(packet_shape)
            )
            self._subcarrier_indices = (
                None
                if state["subcarrier_indices"] is None
                else np.asarray(state["subcarrier_indices"], dtype=int)
            )
            self._buffer = deque(packet.copy() for packet in buffer)
            self._times = deque(times)
            self._last_time = state["last_time"]
            self._last_emit_time = state["last_emit_time"]
            self._last_good_time = state["last_good_time"]
            self._last_good_result = copy.deepcopy(state["last_good_result"])
            self.counters = dict(state["counters"])
            cycles = state["engine_cycles"]
            self._anomaly_time = state["anomaly_time"]
            # The engine itself is never serialized; it is rebuilt lazily
            # from the buffer at the next clean emit, re-anchored on the
            # checkpointed cycle counts so the restored run stays
            # bit-identical to an uninterrupted one.
            self._engine = None
            self._amps = None
            self._restored_cycles = (
                None if cycles is None else np.asarray(cycles, dtype=np.int64)
            )
            # Replay the window-start pointer: with monotone buffered times
            # the per-push advance is equivalent to this scan.
            self._win_start = 0
            if self._incremental and len(times) > 1:
                # Same float expression as the per-push advance, so boundary
                # packets resolve identically to the uninterrupted run.
                while (
                    self._win_start < len(times) - 1
                    and times[-1] - times[self._win_start]
                    > self.config.window_s + self._eps
                ):
                    self._win_start += 1
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed checkpoint: {exc}"
            ) from exc

    def _count_drop(self, reason: str) -> None:
        """Mirror one dropped-packet tally into the metrics registry."""
        self._obs.count(
            "monitor_dropped_packets_total",
            labels={"reason": reason},
            help_text="Malformed packets dropped before buffering.",
        )

    def _reset_stream(self) -> None:
        """Forget everything tied to the old clock base."""
        self._buffer.clear()
        self._times.clear()
        self._last_time = None
        self._last_emit_time = None
        self._last_good_time = None
        self._last_good_result = None
        self._win_start = 0
        self._anomaly_time = None
        self._drop_engine()

    def _drop_engine(self) -> None:
        """Invalidate the trailing engine (and any restored unwrap anchor)."""
        self._engine = None
        self._amps = None
        self._restored_cycles = None

    def _reject(
        self, t_end: float, reason: str, quality: TraceQualityReport | None
    ) -> StreamingEstimate:
        """A structured rejection, holding over the last good estimate
        while the staleness budget allows."""
        self._obs.count(
            "monitor_rejected_windows_total",
            labels={"reason": reason},
            help_text="Windows rejected by quality gates or the estimator.",
        )
        if self._last_good_result is not None and self._last_good_time is not None:
            staleness = t_end - self._last_good_time
            if 0.0 <= staleness <= self.config.holdover_s:
                self._obs.count(
                    "monitor_holdover_windows_total",
                    help_text="Rejected windows that re-emitted a stale "
                    "estimate.",
                )
                return StreamingEstimate(
                    t_end,
                    self._last_good_result,
                    rejected_reason=reason,
                    held_over=True,
                    staleness_s=staleness,
                    quality=quality,
                )
        return StreamingEstimate(
            t_end, None, rejected_reason=reason, quality=quality
        )

    def _emit(self) -> StreamingEstimate:
        with self._obs.stage("window_emit", component="monitor"):
            if self._incremental:
                estimate = self._emit_incremental()
            else:
                estimate = self._emit_window()
        self._obs.gauge_set(
            "monitor_buffer_depth_packets",
            len(self._buffer),
            help_text="Packets currently buffered in the analysis window.",
        )
        return estimate

    def _emit_incremental(self) -> StreamingEstimate:
        """Dispatch one window to the trailing engine or the batch fallback.

        The engine serves only windows with clean, uniform timing (the same
        per-step tolerance the batch pipeline uses to decide reclocking —
        and no anomaly anywhere in the retained context, since the engine
        treats buffered rows as uniform samples).  Everything else takes
        the exact batch path of the non-incremental monitor.  Either way
        the buffer is trimmed afterwards to the analysis window plus the
        engine's rebuild context.
        """
        times = np.asarray(self._times)
        t_end = float(times[-1])
        if (
            self._anomaly_time is not None
            and float(times[0]) >= self._anomaly_time
        ):
            self._anomaly_time = None
        window_times = times[self._win_start :]
        quality = assess_timestamps(window_times, self.sample_rate_hz)
        try:
            gates_ok = (
                quality.max_gap_s <= self.config.max_gap_s
                and window_times.size >= _MIN_WINDOW_PACKETS
                and quality.loss_fraction <= self.config.max_loss_fraction
            )
            if gates_ok and self._anomaly_time is None and quality.is_uniform:
                self._obs.count(
                    "monitor_incremental_windows_total",
                    help_text="Windows served by the incremental engine.",
                )
                return self._emit_from_engine(t_end, quality)
            if gates_ok:
                self._obs.count(
                    "monitor_fallback_windows_total",
                    help_text="Clean-gate windows that required the batch "
                    "path (degraded timing in the window or its context).",
                )
            return self._emit_window()
        finally:
            self._evict_retained()

    def _emit_from_engine(
        self, t_end: float, quality: TraceQualityReport
    ) -> StreamingEstimate:
        cfg = self.config
        pipeline_cfg = self._pipeline.config
        n_sub = self._packet_shape[1]
        if self._pairs is None:
            self._pairs = self._pipeline._antenna_pairs(self._packet_shape[0])
        with self._obs.stage("incremental_advance", component="monitor"):
            engine = self._engine
            if engine is None:
                engine = self._rebuild_engine(n_sub)
                self._engine = engine
            elif engine.n_rows < len(self._buffer):
                block = np.stack(list(islice(self._buffer, engine.n_rows, None)))
                engine.extend(wrapped_pair_matrix(block, self._pairs))
                self._amps = np.concatenate([self._amps, np.abs(block)], axis=0)
        idx0 = self._win_start
        with self._obs.stage("incremental_estimate", component="monitor"):
            unwrapped = engine.unwrapped_window(idx0)
            v, state = self._pipeline.classify_environment(
                unwrapped[:, :n_sub], self.sample_rate_hz
            )
            if (
                pipeline_cfg.enforce_stationarity
                and state is not ActivityState.SITTING
            ):
                self._obs.count(
                    "pipeline_not_stationary_total",
                    help_text="Traces rejected by environment detection.",
                )
                return self._reject(t_end, "not-stationary", quality)
            amp_mean = self._amps[idx0:].mean(axis=0)
            mask = np.concatenate(
                [
                    amplitude_mask_from_mean(amp_mean, pair)
                    for pair in self._pairs
                ]
            )
            try:
                result = self._pipeline.estimate_from_matrix(
                    engine.calibrated_window(idx0),
                    mask,
                    engine.calibrated_rate_hz,
                    antenna_pairs=self._pairs,
                    n_subcarriers=n_sub,
                    v_statistic_value=v,
                    environment_state=state,
                    n_persons=cfg.n_persons,
                    estimate_heart=cfg.estimate_heart,
                    reclocked=False,
                    input_loss_fraction=quality.loss_fraction,
                )
            except (EstimationError, SignalTooShortError):
                return self._reject(t_end, "estimation-failed", quality)
        self._last_good_time = t_end
        self._last_good_result = result
        self._obs.count(
            "monitor_fresh_windows_total",
            help_text="Windows analyzed successfully with a fresh estimate.",
        )
        return StreamingEstimate(t_end, result, quality=quality)

    def _rebuild_engine(self, n_subcarriers: int) -> StreamingCalibrator:
        """Fresh trailing engine over the whole retained buffer.

        Deterministic given the buffer and the unwrap anchor, which is what
        makes checkpoints restore-safe: the restored monitor rebuilds here
        and lands on the exact caches of the engine it replaces.
        """
        calibration = self._pipeline.config.calibration
        engine = StreamingCalibrator(
            self.sample_rate_hz,
            len(self._pairs) * n_subcarriers,
            trend_window_s=calibration.trend_window_s,
            noise_window_s=calibration.noise_window_s,
            hampel_threshold=calibration.hampel_threshold,
            decimation_factor=self._decimation,
            initial_cycles=self._restored_cycles,
        )
        block = np.stack(self._buffer)
        engine.extend(wrapped_pair_matrix(block, self._pairs))
        self._amps = np.abs(block)
        self._restored_cycles = None
        self._obs.count(
            "monitor_engine_rebuilds_total",
            help_text="Trailing-engine rebuilds from the retained buffer.",
        )
        return engine

    def _evict_retained(self) -> None:
        """Trim rows no longer needed as engine rebuild context.

        Keeps ``_context_rows`` rows ahead of the analysis window (so a
        rebuild from the remaining buffer stays exact inside the window)
        and evicts in decimation-factor multiples (so the engine's
        decimation grid, anchored at row 0, keeps its phase); engine and
        amplitude caches shrink in lockstep with the buffer.
        """
        limit = self._win_start - self._context_rows
        if self._engine is not None:
            limit = min(limit, self._engine.n_rows)
        n_evict = (limit // self._decimation) * self._decimation
        if n_evict <= 0:
            return
        for _ in range(n_evict):
            self._buffer.popleft()
            self._times.popleft()
        self._win_start -= n_evict
        if self._engine is not None:
            self._engine.evict(n_evict)
            self._amps = self._amps[n_evict:]
        elif self._restored_cycles is not None:
            # The anchor described the old buffer front; no retained row
            # carries it any more.
            self._restored_cycles = None

    def _emit_window(self) -> StreamingEstimate:
        times = np.asarray(self._times)[self._win_start :]
        t_end = float(times[-1])
        quality = assess_timestamps(times, self.sample_rate_hz)
        if quality.max_gap_s > self.config.max_gap_s:
            return self._reject(t_end, "data-gap", quality)
        if (
            times.size < _MIN_WINDOW_PACKETS
            or quality.loss_fraction > self.config.max_loss_fraction
        ):
            return self._reject(t_end, "degraded-input", quality)

        window = CSITrace(
            csi=np.stack(list(islice(self._buffer, self._win_start, None))),
            timestamps_s=times,
            sample_rate_hz=self.sample_rate_hz,
            subcarrier_indices=self._subcarrier_indices,
            meta={"streaming_window": True},
        )
        try:
            result = self._pipeline.process(
                window,
                n_persons=self.config.n_persons,
                estimate_heart=self.config.estimate_heart,
            )
        except NotStationaryError:
            return self._reject(t_end, "not-stationary", quality)
        except (EstimationError, SignalTooShortError):
            return self._reject(t_end, "estimation-failed", quality)
        self._last_good_time = t_end
        self._last_good_result = result
        self._obs.count(
            "monitor_fresh_windows_total",
            help_text="Windows analyzed successfully with a fresh estimate.",
        )
        return StreamingEstimate(t_end, result, quality=quality)
