"""Data Calibration: detrend, denoise, and downsample (paper Section III-B2).

Three steps, applied per subcarrier:

1. *DC removal by Hampel detrending* — a large-window (2000 samples at
   400 Hz ≈ 5 s) Hampel filter with a tiny threshold tracks the slow
   baseline; subtracting it removes the DC component without touching the
   vital-sign band.
2. *High-frequency denoising* — a small-window (50 samples ≈ 0.125 s)
   Hampel filter smooths out packet-to-packet noise.
3. *Downsampling* — keep every 20th sample, 400 Hz → 20 Hz, shrinking
   10 000 packets to 500 and making the later DWT/FFT stages realtime-cheap.

Window sizes are specified in *seconds* here and converted using the actual
trace rate, so captures at the paper's other rates (Fig. 13 sweeps 20, 200,
400, 600 Hz) are calibrated consistently; at 400 Hz the defaults reproduce
the paper's 2000/50/20 sample counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray, check_arrays
from ..dsp.resample import decimate, downsampled_rate
from ..dsp.streaming_kernels.rolling import batched_hampel_filter
from ..errors import ConfigurationError

__all__ = ["CalibrationConfig", "CalibratedData", "calibrate"]


@dataclass(frozen=True)
class CalibrationConfig:
    """Calibration parameters (paper defaults at 400 Hz).

    Attributes:
        trend_window_s: Hampel detrend window (2000 samples @ 400 Hz = 5 s).
        noise_window_s: Hampel denoise window (50 samples @ 400 Hz = 0.125 s).
        hampel_threshold: The paper's 0.01 — small enough that the filter
            degenerates to a rolling median, which is the intent.
        target_rate_hz: Output rate after downsampling (20 Hz in the paper);
            the decimation factor is ``round(input_rate / target_rate)``,
            floored at 1 so low-rate captures pass through unchanged.
    """

    trend_window_s: float = 5.0
    noise_window_s: float = 0.125
    hampel_threshold: float = 0.01
    target_rate_hz: float = 20.0

    def __post_init__(self) -> None:
        if self.trend_window_s <= 0 or self.noise_window_s <= 0:
            raise ConfigurationError("Hampel windows must be positive")
        if self.noise_window_s >= self.trend_window_s:
            raise ConfigurationError(
                "denoise window must be shorter than the trend window"
            )
        if self.hampel_threshold < 0:
            raise ConfigurationError("Hampel threshold must be >= 0")
        if self.target_rate_hz <= 0:
            raise ConfigurationError("target rate must be positive")

    def decimation_factor(self, input_rate_hz: float) -> int:
        """Integer decimation factor for a given capture rate."""
        if input_rate_hz <= 0:
            raise ConfigurationError(
                f"input rate must be positive, got {input_rate_hz}"
            )
        return max(1, int(round(input_rate_hz / self.target_rate_hz)))


@dataclass(frozen=True)
class CalibratedData:
    """Output of the calibration stage.

    Attributes:
        series: ``(n_samples, n_subcarriers)`` calibrated phase-difference
            series at ``sample_rate_hz``.
        sample_rate_hz: Rate after downsampling.
        input_rate_hz: Rate of the raw data that was calibrated.
    """

    series: FloatArray
    sample_rate_hz: float
    input_rate_hz: float

    @property
    def n_samples(self) -> int:
        """Number of calibrated samples."""
        return int(self.series.shape[0])

    @property
    def n_subcarriers(self) -> int:
        """Number of subcarrier series."""
        return int(self.series.shape[1])


@check_arrays(phase_diff="n_packets|n_packets,n_subcarriers")
def calibrate(
    phase_diff: FloatArray,
    sample_rate_hz: float,
    config: CalibrationConfig | None = None,
) -> CalibratedData:
    """Run the three-step calibration on unwrapped phase-difference data.

    Args:
        phase_diff: ``(n_packets, n_subcarriers)`` unwrapped phase
            differences from :func:`repro.core.phase_difference.phase_difference`.
        sample_rate_hz: Packet rate of the input.
        config: Calibration parameters (paper defaults when omitted).

    Returns:
        :class:`CalibratedData` at the target rate.
    """
    config = config if config is not None else CalibrationConfig()
    phase_diff = np.atleast_2d(np.asarray(phase_diff, dtype=float))
    if phase_diff.ndim != 2:
        raise ConfigurationError(
            f"phase differences must be 2-D (packets × subcarriers), "
            f"got {phase_diff.shape}"
        )
    n = phase_diff.shape[0]
    trend_window = max(3, int(round(config.trend_window_s * sample_rate_hz)))
    noise_window = max(3, int(round(config.noise_window_s * sample_rate_hz)))
    trend_window = min(trend_window, n)
    noise_window = min(noise_window, n)

    # Batched over all subcarrier columns at once; bitwise equal to looping
    # hampel_filter per column (the per-column equivalence test pins this).
    trend = batched_hampel_filter(phase_diff, trend_window, config.hampel_threshold)
    detrended = phase_diff - trend
    calibrated = batched_hampel_filter(
        detrended, noise_window, config.hampel_threshold
    )

    factor = config.decimation_factor(sample_rate_hz)
    if factor > 1:
        calibrated = decimate(calibrated, factor, axis=0)
    return CalibratedData(
        series=calibrated,
        sample_rate_hz=downsampled_rate(sample_rate_hz, factor),
        input_rate_hz=float(sample_rate_hz),
    )
