"""Session-level monitoring reports: one call from trace to summary.

Combines the pieces a long-term monitoring deployment actually wants from a
night (or any long stationary session): breathing-rate statistics over
time, waveform variability, apnea events, heart rate when available, and
how much of the session was usable at all (environment detection).  This is
the highest-level convenience API in the library — everything it reports is
computed by the underlying modules and traceable through the returned
record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..errors import (
    ConfigurationError,
    EstimationError,
    NotStationaryError,
    ReproError,
)
from ..io_.trace import CSITrace
from .apnea import ApneaConfig, ApneaEvent, detect_apnea
from .environment import EnvironmentDetector
from .phase_difference import phase_difference
from .pipeline import PhaseBeat, PhaseBeatConfig
from .streaming import StreamingConfig, StreamingMonitor
from .waveform import BreathingWaveformStats, analyze_waveform

__all__ = ["SessionReport", "analyze_session"]


@dataclass(frozen=True)
class SessionReport:
    """Summary of one monitoring session.

    Attributes:
        duration_s: Session length.
        stationary_fraction: Fraction of 2-second windows environment
            detection classified as stationary/usable.
        breathing_rate_bpm: Whole-session breathing estimate (``nan`` when
            the session produced no usable estimate).
        rate_over_time_bpm: ``(times_s, rates_bpm)`` from the sliding-window
            monitor — the rate trend across the session.
        waveform: Per-breath statistics (``None`` if too few breaths).
        apnea_events: Detected breathing cessations.
        heart_rate_bpm: Heart estimate, or ``nan`` when unavailable.
        n_windows_rejected: Sliding windows rejected (motion / empty room).
    """

    duration_s: float
    stationary_fraction: float
    breathing_rate_bpm: float
    rate_over_time_bpm: tuple[FloatArray, FloatArray]
    waveform: BreathingWaveformStats | None
    apnea_events: tuple[ApneaEvent, ...]
    heart_rate_bpm: float
    n_windows_rejected: int

    @property
    def apnea_index_per_hour(self) -> float:
        """Apnea events per hour of session (the clinical AHI numerator)."""
        if self.duration_s <= 0:
            return 0.0
        return len(self.apnea_events) * 3600.0 / self.duration_s


def analyze_session(
    trace: CSITrace,
    *,
    pipeline_config: PhaseBeatConfig | None = None,
    window_s: float = 30.0,
    hop_s: float = 10.0,
    estimate_heart: bool = False,
    apnea_config: ApneaConfig | None = None,
) -> SessionReport:
    """Produce a :class:`SessionReport` from one long capture.

    Args:
        trace: The session capture (≥ 2 × ``window_s`` recommended).
        pipeline_config: Pipeline parameters; defaults to paper settings
            with stationarity enforcement off (the report itself carries
            the usability figures).
        window_s: Sliding analysis window for the rate trend.
        hop_s: Trend resolution.
        estimate_heart: Also estimate the session heart rate.
        apnea_config: Apnea-detection parameters.

    Returns:
        The assembled report.

    Raises:
        ConfigurationError: If the trace is shorter than one window.
    """
    if trace.duration_s < window_s:
        raise ConfigurationError(
            f"session of {trace.duration_s:.1f}s is shorter than one "
            f"{window_s:.0f}s analysis window"
        )
    if pipeline_config is None:
        pipeline_config = PhaseBeatConfig(enforce_stationarity=False)
    pipeline = PhaseBeat(pipeline_config)

    # Usability: windowed environment detection over the whole session.
    detector = EnvironmentDetector(pipeline_config.environment)
    diff = phase_difference(trace, pipeline_config.antenna_pair)
    stationary_fraction = detector.stationary_fraction(
        diff, trace.sample_rate_hz
    )

    # Whole-session estimate + band signals.
    breathing_bpm = float("nan")
    heart_bpm = float("nan")
    waveform: BreathingWaveformStats | None = None
    apnea_events: tuple[ApneaEvent, ...] = ()
    try:
        result = pipeline.process(trace, estimate_heart=estimate_heart)
        breathing_bpm = result.breathing_rates_bpm[0]
        if result.heart_rate_bpm is not None:
            heart_bpm = result.heart_rate_bpm
        rate = result.diagnostics.calibrated_rate_hz
        try:
            waveform = analyze_waveform(result.breathing_signal, rate)
        except EstimationError:
            waveform = None
        try:
            apnea_events = tuple(
                detect_apnea(result.breathing_signal, rate, apnea_config)
            )
        except ReproError:
            apnea_events = ()
    except (EstimationError, NotStationaryError):
        pass

    # Rate trend via the streaming monitor.
    monitor = StreamingMonitor(
        trace.sample_rate_hz,
        StreamingConfig(window_s=window_s, hop_s=hop_s),
        pipeline_config,
    )
    times, rates = [], []
    rejected = 0
    for estimate in monitor.push_trace(trace):
        if estimate.ok:
            times.append(estimate.time_s)
            rates.append(estimate.result.breathing_rates_bpm[0])
        else:
            rejected += 1

    return SessionReport(
        duration_s=trace.duration_s,
        stationary_fraction=stationary_fraction,
        breathing_rate_bpm=breathing_bpm,
        rate_over_time_bpm=(np.asarray(times), np.asarray(rates)),
        waveform=waveform,
        apnea_events=apnea_events,
        heart_rate_bpm=heart_bpm,
        n_windows_rejected=rejected,
    )
