"""The paper's contribution: the PhaseBeat processing pipeline."""

from .apnea import ApneaConfig, ApneaEvent, breathing_envelope, detect_apnea
from .breathing import (
    BREATHING_SEARCH_BAND_HZ,
    FFTBreathingEstimator,
    MusicBreathingEstimator,
    PeakBreathingEstimator,
)
from .calibration import CalibratedData, CalibrationConfig, calibrate
from .dwt_stage import DWTBands, DWTConfig, decompose
from .environment import (
    EnvironmentConfig,
    EnvironmentDetector,
    classify_windows,
    v_statistic,
    windowed_v,
)
from .heart import HEART_SEARCH_BAND_HZ, FFTHeartEstimator
from .phase_difference import phase_difference, raw_phase
from .pipeline import PhaseBeat, PhaseBeatConfig, prepare_calibrated_matrix
from .results import PhaseBeatResult, PipelineDiagnostics, VitalSignEstimate
from .session import SessionReport, analyze_session
from .streaming import StreamingConfig, StreamingEstimate, StreamingMonitor
from .waveform import BreathingWaveformStats, analyze_waveform, breath_intervals
from .subcarrier_selection import (
    SelectionConfig,
    SelectionResult,
    amplitude_quality_mask,
    select_subcarrier,
    subcarrier_sensitivities,
)

__all__ = [
    "ApneaConfig",
    "ApneaEvent",
    "BREATHING_SEARCH_BAND_HZ",
    "BreathingWaveformStats",
    "CalibratedData",
    "CalibrationConfig",
    "DWTBands",
    "DWTConfig",
    "EnvironmentConfig",
    "EnvironmentDetector",
    "FFTBreathingEstimator",
    "FFTHeartEstimator",
    "HEART_SEARCH_BAND_HZ",
    "MusicBreathingEstimator",
    "PeakBreathingEstimator",
    "PhaseBeat",
    "PhaseBeatConfig",
    "PhaseBeatResult",
    "PipelineDiagnostics",
    "SelectionConfig",
    "SelectionResult",
    "SessionReport",
    "StreamingConfig",
    "StreamingEstimate",
    "StreamingMonitor",
    "VitalSignEstimate",
    "amplitude_quality_mask",
    "analyze_session",
    "analyze_waveform",
    "breath_intervals",
    "breathing_envelope",
    "calibrate",
    "detect_apnea",
    "classify_windows",
    "decompose",
    "phase_difference",
    "prepare_calibrated_matrix",
    "raw_phase",
    "select_subcarrier",
    "subcarrier_sensitivities",
    "v_statistic",
    "windowed_v",
]
