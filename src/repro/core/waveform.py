"""Respiration-waveform analytics beyond the mean rate.

The paper stops at a single rate number, but the breathing-band signal the
pipeline recovers is a full waveform, and clinically interesting features
live in its *shape* and *timing*:

* per-breath intervals and their variability (respiratory-rate variability
  is a sleep-quality and stress marker, the breathing analogue of HRV);
* the inspiration:expiration (I:E) time ratio, read from the rise/fall
  segments between troughs and crests (prolonged expiration is an airway-
  obstruction marker).

All features are computed from peak/trough timing of the DWT breathing
band, so they compose directly with :class:`~repro.core.pipeline.PhaseBeat`
output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..dsp.peaks import find_peaks
from ..errors import ConfigurationError, EstimationError

__all__ = ["BreathingWaveformStats", "analyze_waveform", "breath_intervals"]


@dataclass(frozen=True)
class BreathingWaveformStats:
    """Per-breath timing statistics of a breathing-band signal.

    Attributes:
        n_breaths: Number of complete breaths analysed.
        mean_rate_bpm: 60 / mean breath interval.
        interval_std_s: Standard deviation of breath-to-breath intervals
            (the respiratory analogue of HRV's SDNN).
        interval_cv_fraction: Coefficient of variation of the intervals
            (std / mean) — dimensionless variability.
        ie_ratio: Median inspiration:expiration time ratio.  Computed from
            trough→crest (inspiration) vs crest→trough (expiration) times;
            healthy resting values sit around 0.5–0.8.
        intervals_s: The individual breath intervals.
    """

    n_breaths: int
    mean_rate_bpm: float
    interval_std_s: float
    interval_cv_fraction: float
    ie_ratio: float
    intervals_s: FloatArray


def breath_intervals(
    signal: FloatArray,
    sample_rate_hz: float,
    *,
    window_samples: int = 51,
    min_prominence_factor: float = 0.2,
) -> FloatArray:
    """Breath-to-breath intervals (seconds) from crest timing.

    Args:
        signal: Breathing-band series (DWT α₄ reconstruction).
        sample_rate_hz: Its sample rate.
        window_samples: Peak-dominance window.
        min_prominence_factor: Peak prominence floor as a fraction of the
            signal's standard deviation.

    Returns:
        One interval per consecutive crest pair.

    Raises:
        EstimationError: If fewer than two crests are found.
    """
    signal = np.asarray(signal, dtype=float)
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    prominence = min_prominence_factor * float(np.std(signal))
    crests = find_peaks(signal, window=window_samples, min_prominence=prominence)
    if crests.size < 2:
        raise EstimationError(
            f"need at least two breaths, found {crests.size} crest(s)"
        )
    return np.diff(crests) / sample_rate_hz


def analyze_waveform(
    signal: FloatArray,
    sample_rate_hz: float,
    *,
    window_samples: int = 51,
    min_prominence_factor: float = 0.2,
) -> BreathingWaveformStats:
    """Full waveform analysis: rate, variability, and I:E ratio.

    Args:
        signal: Breathing-band series.
        sample_rate_hz: Its sample rate.
        window_samples: Peak/trough dominance window.
        min_prominence_factor: Prominence floor (fraction of signal std).

    Returns:
        :class:`BreathingWaveformStats`.

    Raises:
        EstimationError: If too few breaths are present for the analysis.
    """
    signal = np.asarray(signal, dtype=float)
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    prominence = min_prominence_factor * float(np.std(signal))
    crests = find_peaks(signal, window=window_samples, min_prominence=prominence)
    troughs = find_peaks(
        -signal, window=window_samples, min_prominence=prominence
    )
    if crests.size < 2:
        raise EstimationError(
            f"need at least two breaths, found {crests.size} crest(s)"
        )

    intervals = np.diff(crests) / sample_rate_hz
    mean_interval = float(np.mean(intervals))
    interval_std = float(np.std(intervals))

    # Inspiration = trough → next crest; expiration = crest → next trough.
    inspirations = []
    expirations = []
    for crest in crests:
        earlier = troughs[troughs < crest]
        later = troughs[troughs > crest]
        if earlier.size:
            inspirations.append((crest - earlier[-1]) / sample_rate_hz)
        if later.size:
            expirations.append((later[0] - crest) / sample_rate_hz)
    if inspirations and expirations:
        ie_ratio = float(np.median(inspirations) / np.median(expirations))
    else:
        ie_ratio = float("nan")

    return BreathingWaveformStats(
        n_breaths=int(intervals.size),
        mean_rate_bpm=60.0 / mean_interval,
        interval_std_s=interval_std,
        interval_cv_fraction=interval_std / mean_interval,
        ie_ratio=ie_ratio,
        intervals_s=intervals,
    )
