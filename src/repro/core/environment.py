"""Environment Detection: keep only stationary segments (paper Eq. 8).

Vital signs are only readable while the person is stationary (sitting,
standing still, sleeping).  Walking or standing up swings the phase
difference by far more than chest motion does, and an empty room produces
almost no variation at all.  PhaseBeat computes the windowed mean absolute
deviation V of the phase-difference data and accepts a window as stationary
when V lies inside a threshold band.

Deviation from the paper, documented here and in DESIGN.md: Eq. 8 sums the
per-subcarrier deviations over all 30 subcarriers and normalizes only by the
window length; we normalize by the subcarrier count as well (V is then the
*average* per-subcarrier MAD), which makes the thresholds independent of how
many subcarriers a NIC reports.  The default band is calibrated on the
simulated lab scenario to play the same role as the paper's (0.25, 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray, check_arrays
from ..dsp.stats import mean_absolute_deviation
from ..errors import ConfigurationError
from ..physio.motion import ActivityState

__all__ = ["EnvironmentConfig", "v_statistic", "windowed_v", "classify_windows", "EnvironmentDetector"]


@dataclass(frozen=True)
class EnvironmentConfig:
    """Environment-detection parameters.

    Attributes:
        window_s: Sliding-window length in seconds (MAD is computed per
            window).
        hop_s: Window hop in seconds.
        stationary_band: (low, high) V thresholds: below low → empty room /
            no signal, inside → stationary person, above high → large motion.
    """

    window_s: float = 2.0
    hop_s: float = 1.0
    stationary_band: tuple[float, float] = (0.05, 1.0)

    def __post_init__(self) -> None:
        if self.window_s <= 0 or self.hop_s <= 0:
            raise ConfigurationError("window and hop must be positive")
        lo, hi = self.stationary_band
        if not 0 <= lo < hi:
            raise ConfigurationError(
                f"stationary band must satisfy 0 <= lo < hi, got {self.stationary_band}"
            )


@check_arrays(phase_diff="n_packets|n_packets,n_subcarriers")
def v_statistic(phase_diff: FloatArray) -> float:
    """The Eq. 8 deviation statistic of one window.

    Second documented deviation from the literal Eq. 8: the per-subcarrier
    MADs are combined with a *median* rather than a sum.  A person moving
    swings every subcarrier at once, so the median explodes exactly when
    the mean would; but one deep-faded subcarrier whose unwrapped phase
    random-walks (pure receiver noise) inflates only the mean — and must
    not masquerade as motion.

    Args:
        phase_diff: ``(n_packets, n_subcarriers)`` unwrapped phase
            differences of the window.

    Returns:
        Median over subcarriers of the per-subcarrier MAD.
    """
    phase_diff = np.atleast_2d(np.asarray(phase_diff, dtype=float))
    return float(np.median(mean_absolute_deviation(phase_diff, axis=0)))


@check_arrays(phase_diff="n_packets|n_packets,n_subcarriers")
def windowed_v(
    phase_diff: FloatArray, sample_rate_hz: float, config: EnvironmentConfig
) -> tuple[FloatArray, FloatArray]:
    """V statistic over hopping windows.

    Returns:
        ``(centers_s, v)`` — window center times and their V values.
    """
    phase_diff = np.atleast_2d(np.asarray(phase_diff, dtype=float))
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    window = max(2, int(round(config.window_s * sample_rate_hz)))
    hop = max(1, int(round(config.hop_s * sample_rate_hz)))
    n = phase_diff.shape[0]
    if n < window:
        raise ConfigurationError(
            f"segment of {n} packets shorter than one {window}-packet window"
        )
    centers = []
    values = []
    for start in range(0, n - window + 1, hop):
        stop = start + window
        centers.append((start + stop) / 2.0 / sample_rate_hz)
        values.append(v_statistic(phase_diff[start:stop]))
    return np.asarray(centers), np.asarray(values)


def classify_windows(v: FloatArray, config: EnvironmentConfig) -> np.ndarray:  # phaselint: disable=PL002 -- object array of ActivityState
    """Map V values to activity states.

    Below the band → :attr:`ActivityState.NO_PERSON` (no modulation at
    all); inside → :attr:`ActivityState.SITTING` (stationary, usable);
    above → :attr:`ActivityState.WALKING` (large motion — the detector
    cannot distinguish walking from standing up, and does not need to).
    """
    v = np.asarray(v, dtype=float)
    lo, hi = config.stationary_band
    # Element-wise assignment keeps the enum objects intact (bulk fills of a
    # str-enum decay to plain strings under numpy's scalar coercion).
    out = np.empty(v.shape, dtype=object)
    for i, value in np.ndenumerate(v):
        if value < lo:
            out[i] = ActivityState.NO_PERSON
        elif value > hi:
            out[i] = ActivityState.WALKING
        else:
            out[i] = ActivityState.SITTING
    return out


class EnvironmentDetector:
    """Stateful facade: is this segment usable for vital-sign estimation?"""

    def __init__(self, config: EnvironmentConfig | None = None):
        self.config = config if config is not None else EnvironmentConfig()

    def is_stationary(self, phase_diff: FloatArray) -> bool:
        """Whole-segment decision: V of the full segment inside the band."""
        v = v_statistic(phase_diff)
        lo, hi = self.config.stationary_band
        return lo <= v <= hi

    def segment_report(
        self, phase_diff: FloatArray, sample_rate_hz: float
    ) -> tuple[FloatArray, FloatArray, np.ndarray]:  # phaselint: disable=PL002 -- states are an object array
        """Windowed analysis: ``(centers_s, v, states)``."""
        centers, v = windowed_v(phase_diff, sample_rate_hz, self.config)
        return centers, v, classify_windows(v, self.config)

    def stationary_fraction(
        self, phase_diff: FloatArray, sample_rate_hz: float
    ) -> float:
        """Fraction of windows classified stationary."""
        _, _, states = self.segment_report(phase_diff, sample_rate_hz)
        return float(
            np.mean([state is ActivityState.SITTING for state in states])
        )
