"""Data Extraction: CSI phase difference between two receive antennas.

The first module of the PhaseBeat architecture (Fig. 2).  Per Theorem 1 the
measured phase difference between two chains of the same NIC cancels the
per-packet error terms (they share the clock and down-converter), leaving
``Δ∠CSI + Δβ + ΔZ`` — stable across packets, with the breathing modulation
riding on ``Δ∠CSI``.

The difference is computed as ``angle(csi_a · conj(csi_b))`` (numerically
robust near the ±π seam) and then unwrapped along the packet axis so slow
oscillations become continuous series the calibration stage can filter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..contracts import ComplexArray, FloatArray, check_trace
from ..errors import ConfigurationError
from ..io_.trace import CSITrace

__all__ = ["phase_difference", "raw_phase", "wrapped_pair_matrix"]


def wrapped_pair_matrix(
    csi: ComplexArray, antenna_pairs: Sequence[tuple[int, int]]
) -> FloatArray:
    """Wrapped phase-difference columns for several pairs in one shot.

    Vectorized over pairs: one conjugate product and one ``np.angle`` for
    all requested baselines.  Column block ``p`` holds pair
    ``antenna_pairs[p]``'s ``n_subcarriers`` series, identical to stacking
    per-pair ``angle(csi_a * conj(csi_b))`` results side by side.  No
    unwrapping — the streaming engine applies its own integer-cycle unwrap,
    and :func:`repro.core.pipeline.pair_difference_matrix` applies
    ``np.unwrap`` for the batch path.

    Args:
        csi: ``[n_packets × n_rx × n_subcarriers]`` complex CSI block.
        antenna_pairs: Pairs ``(a, b)`` of receive-chain indices.

    Returns:
        ``[n_packets × n_pairs·n_subcarriers]`` wrapped differences.
    """
    csi = np.asarray(csi)
    if csi.ndim != 3:
        raise ConfigurationError(
            f"expected [n_packets x n_rx x n_subcarriers] CSI, got {csi.shape}"
        )
    if not antenna_pairs:
        raise ConfigurationError("at least one antenna pair is required")
    n_rx = csi.shape[1]
    for a, b in antenna_pairs:
        if a == b:
            raise ConfigurationError("antenna pair must name two distinct chains")
        for idx in (a, b):
            if not 0 <= idx < n_rx:
                raise ConfigurationError(
                    f"antenna index {idx} out of range for {n_rx} chains"
                )
    a_idx = [a for a, _ in antenna_pairs]
    b_idx = [b for _, b in antenna_pairs]
    # np.multiply (not the * operator): interpreter-level expressions let
    # numpy elide a large refcount-1 temporary into an in-place multiply
    # whose fused loop rounds differently from the out-of-place one — and
    # the elision only engages above a size threshold, making ``a*conj(b)``
    # extent-dependent in the last ulp.  Explicit ufunc calls never take
    # that path, so blockwise extraction stays bitwise equal to a full-pass
    # extraction — the streaming engine's rebuild-from-buffer bit-identity
    # rides on this.
    product = np.multiply(csi[:, a_idx, :], np.conjugate(csi[:, b_idx, :]))
    return np.angle(product).reshape(csi.shape[0], -1)


@check_trace()
def phase_difference(
    trace: CSITrace,
    antenna_pair: tuple[int, int] = (0, 1),
    *,
    unwrap: bool = True,
) -> FloatArray:
    """Measured phase difference Δ∠CSI_i per packet and subcarrier.

    Args:
        trace: The captured CSI stream.
        antenna_pair: Indices (a, b) of the two receive chains; the paper
            uses two adjacent antennas of the Intel 5300.
        unwrap: Unwrap along the packet axis, turning the wrapped difference
            into a continuous series (required before filtering; set False
            to reproduce the Fig. 1 polar scatter).

    Returns:
        ``(n_packets, n_subcarriers)`` phase differences in radians.
    """
    a, b = antenna_pair
    if a == b:
        raise ConfigurationError("antenna pair must name two distinct chains")
    for idx in (a, b):
        if not 0 <= idx < trace.n_rx:
            raise ConfigurationError(
                f"antenna index {idx} out of range for {trace.n_rx} chains"
            )
    # Explicit ufunc call for the same extent-independence reason as
    # :func:`wrapped_pair_matrix` — keeps the per-pair path bitwise equal
    # to the batched one regardless of trace length.
    diff = np.angle(
        np.multiply(trace.csi[:, a, :], np.conjugate(trace.csi[:, b, :]))
    )
    if unwrap:
        diff = np.unwrap(diff, axis=0)
    return diff


@check_trace()
def raw_phase(trace: CSITrace, antenna: int = 0) -> FloatArray:
    """Raw measured phase ∠CSI of a single chain (the Fig. 1 foil).

    Unusable for vital signs — the per-packet PBD/SFO/CFO terms scatter it
    over the whole circle — but needed by the phase-stability experiment and
    the raw-phase ablation.
    """
    if not 0 <= antenna < trace.n_rx:
        raise ConfigurationError(
            f"antenna index {antenna} out of range for {trace.n_rx} chains"
        )
    return np.angle(trace.csi[:, antenna, :])
