"""Data Extraction: CSI phase difference between two receive antennas.

The first module of the PhaseBeat architecture (Fig. 2).  Per Theorem 1 the
measured phase difference between two chains of the same NIC cancels the
per-packet error terms (they share the clock and down-converter), leaving
``Δ∠CSI + Δβ + ΔZ`` — stable across packets, with the breathing modulation
riding on ``Δ∠CSI``.

The difference is computed as ``angle(csi_a · conj(csi_b))`` (numerically
robust near the ±π seam) and then unwrapped along the packet axis so slow
oscillations become continuous series the calibration stage can filter.
"""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray, check_trace
from ..errors import ConfigurationError
from ..io_.trace import CSITrace

__all__ = ["phase_difference", "raw_phase"]


@check_trace()
def phase_difference(
    trace: CSITrace,
    antenna_pair: tuple[int, int] = (0, 1),
    *,
    unwrap: bool = True,
) -> FloatArray:
    """Measured phase difference Δ∠CSI_i per packet and subcarrier.

    Args:
        trace: The captured CSI stream.
        antenna_pair: Indices (a, b) of the two receive chains; the paper
            uses two adjacent antennas of the Intel 5300.
        unwrap: Unwrap along the packet axis, turning the wrapped difference
            into a continuous series (required before filtering; set False
            to reproduce the Fig. 1 polar scatter).

    Returns:
        ``(n_packets, n_subcarriers)`` phase differences in radians.
    """
    a, b = antenna_pair
    if a == b:
        raise ConfigurationError("antenna pair must name two distinct chains")
    for idx in (a, b):
        if not 0 <= idx < trace.n_rx:
            raise ConfigurationError(
                f"antenna index {idx} out of range for {trace.n_rx} chains"
            )
    diff = np.angle(trace.csi[:, a, :] * np.conj(trace.csi[:, b, :]))
    if unwrap:
        diff = np.unwrap(diff, axis=0)
    return diff


@check_trace()
def raw_phase(trace: CSITrace, antenna: int = 0) -> FloatArray:
    """Raw measured phase ∠CSI of a single chain (the Fig. 1 foil).

    Unusable for vital signs — the per-packet PBD/SFO/CFO terms scatter it
    over the whole circle — but needed by the phase-stability experiment and
    the raw-phase ablation.
    """
    if not 0 <= antenna < trace.n_rx:
        raise ConfigurationError(
            f"antenna index {antenna} out of range for {trace.n_rx} chains"
        )
    return np.angle(trace.csi[:, antenna, :])
