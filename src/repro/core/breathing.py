"""Breathing Rate Estimation (paper Section III-C).

Three estimators:

* :class:`PeakBreathingEstimator` — the paper's single-person method: peak
  detection on the DWT approximation with the 51-sample dominance window,
  rate = 60 / mean peak-to-peak interval.  Chosen over FFT because the FFT
  bin width at realistic window lengths is coarser than the accuracy target.
* :class:`FFTBreathingEstimator` — the multi-person baseline of Fig. 8: one
  rate per spectral peak; fails when rates are closer than the Rayleigh
  resolution.
* :class:`MusicBreathingEstimator` — the paper's multi-person method:
  root-MUSIC over the calibrated subcarrier matrix (Eq. 11–12), resolving
  rates the FFT cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..dsp.fft_utils import fundamental_frequency, spectral_peaks
from ..dsp.music import estimate_frequencies
from ..dsp.peaks import find_peaks, robust_peak_interval
from ..errors import ConfigurationError, EstimationError

__all__ = [
    "BREATHING_SEARCH_BAND_HZ",
    "PeakBreathingEstimator",
    "FFTBreathingEstimator",
    "MusicBreathingEstimator",
]

#: Admissible breathing band (Hz): the paper cites 0.17–0.62 Hz for adult
#: breathing; the search band is slightly wider to avoid clipping estimates
#: at the edges.
BREATHING_SEARCH_BAND_HZ = (0.1, 0.7)


@dataclass(frozen=True)
class PeakBreathingEstimator:
    """Single-person breathing rate via sliding-window peak detection.

    The dominance window defaults to the paper's 51 samples (the maximum
    human breathing period at 20 Hz).  With ``adaptive_window`` the window
    is instead matched to a coarse FFT pre-estimate of the breathing
    period, so fast breathers don't lose true peaks to an over-long window
    and slow breathers don't admit fake ones — the final rate still comes
    from peak-to-peak timing, which is what beats the raw FFT resolution.

    Attributes:
        window_samples: Dominance window when ``adaptive_window`` is off.
        min_prominence_factor: Peaks must rise above the window median by
            this fraction of the series' overall standard deviation; damps
            fake peaks on near-flat segments.
        adaptive_window: Match the window to an FFT period pre-estimate.
        band_hz: Search band for the FFT pre-estimate.
    """

    window_samples: int = 51
    min_prominence_factor: float = 0.2
    adaptive_window: bool = True
    band_hz: tuple[float, float] = BREATHING_SEARCH_BAND_HZ

    def __post_init__(self) -> None:
        if self.window_samples < 3:
            raise ConfigurationError("window must be >= 3 samples")
        if self.min_prominence_factor < 0:
            raise ConfigurationError("prominence factor must be >= 0")

    def estimate_bpm(self, breathing_signal: FloatArray, sample_rate_hz: float) -> float:
        """Breathing rate in breaths/min from the DWT breathing band.

        Raises:
            EstimationError: If fewer than two true peaks are found.
        """
        breathing_signal = np.asarray(breathing_signal, dtype=float)
        window = self.window_samples
        if self.adaptive_window:
            f0 = fundamental_frequency(
                breathing_signal, sample_rate_hz, band=self.band_hz
            )
            # 1.2× the pre-estimated period: the dominance radius (half the
            # window) then exceeds half a period, so the secondary crest a
            # strong 2nd harmonic adds mid-cycle is suppressed, while true
            # peaks one full period apart always survive.
            period_samples = sample_rate_hz / max(f0, 1e-6)
            window = int(np.clip(round(1.2 * period_samples) | 1, 25, 121))
        prominence = self.min_prominence_factor * float(np.std(breathing_signal))
        peaks = find_peaks(
            breathing_signal,
            window=window,
            min_prominence=prominence,
        )
        period = robust_peak_interval(peaks, sample_rate_hz)
        return 60.0 / period


@dataclass(frozen=True)
class FFTBreathingEstimator:
    """Multi-person breathing rates from FFT magnitude peaks (the foil).

    Attributes:
        band_hz: Search band.
        min_separation_hz: Peaks closer than this merge — the Rayleigh-limit
            behaviour Fig. 8 demonstrates (0 lets the raw spectrum decide).
    """

    band_hz: tuple[float, float] = BREATHING_SEARCH_BAND_HZ
    min_separation_hz: float = 0.0

    def estimate_bpm(
        self, signal: FloatArray, sample_rate_hz: float, n_persons: int = 1
    ) -> FloatArray:
        """Breathing rates (bpm, ascending) for up to ``n_persons``.

        May return fewer rates than requested when the spectrum shows fewer
        peaks — exactly the failure mode of Fig. 8's three-person panel.
        """
        if n_persons < 1:
            raise ConfigurationError(f"n_persons must be >= 1, got {n_persons}")
        signal = np.asarray(signal, dtype=float)
        if signal.ndim == 2:
            # Aggregate subcarriers by their average spectrum carrier: use
            # the strongest column to mirror single-series FFT processing.
            signal = signal[:, int(np.argmax(np.std(signal, axis=0)))]
        freqs = spectral_peaks(
            signal,
            sample_rate_hz,
            n_persons,
            band=self.band_hz,
            min_separation_hz=self.min_separation_hz,
        )
        if freqs.size == 0:
            raise EstimationError("no spectral peaks inside the breathing band")
        return 60.0 * freqs


@dataclass(frozen=True)
class MusicBreathingEstimator:
    """Multi-person breathing rates via root-MUSIC (paper Eq. 11–12).

    Attributes:
        band_hz: Admissible breathing band.
        subspace_order: Covariance dimension m; ``None`` → automatic.
        decimation: Post-analytic decimation applied before the subspace
            step; at a 20 Hz processing rate a factor of 10 stretches the
            subspace aperture enough to split rates 0.025 Hz apart.
    """

    band_hz: tuple[float, float] = BREATHING_SEARCH_BAND_HZ
    subspace_order: int | None = None
    decimation: int = 10

    def estimate_bpm(
        self,
        series: FloatArray,
        sample_rate_hz: float,
        n_persons: int,
    ) -> FloatArray:
        """Breathing rates (bpm, ascending) for ``n_persons`` subjects.

        Args:
            series: Either the full calibrated subcarrier matrix
                ``(n_samples, 30)`` — the paper's 30-subcarrier variant — or
                a single series (the single-subcarrier ablation of Fig. 14).
            sample_rate_hz: Rate of the series.
            n_persons: Number of rates to recover.
        """
        if n_persons < 1:
            raise ConfigurationError(f"n_persons must be >= 1, got {n_persons}")
        freqs = estimate_frequencies(
            series,
            n_persons,
            sample_rate_hz,
            order=self.subspace_order,
            band=self.band_hz,
            decimation=self.decimation,
        )
        if freqs.size == 0:
            raise EstimationError("root-MUSIC returned no admissible rates")
        return 60.0 * freqs
