"""Typed result records produced by the PhaseBeat pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..contracts import FloatArray
from ..physio.motion import ActivityState

__all__ = ["VitalSignEstimate", "PipelineDiagnostics", "PhaseBeatResult"]


@dataclass(frozen=True)
class VitalSignEstimate:
    """One estimated rate with its provenance.

    Attributes:
        rate_bpm: The estimate in beats (breaths) per minute.
        method: Which estimator produced it (``"peak"``, ``"fft"``,
            ``"root-music"``, ``"fft+3bin"``).
    """

    rate_bpm: float
    method: str


@dataclass(frozen=True)
class PipelineDiagnostics:
    """Intermediate quantities useful for inspection and plotting.

    Attributes:
        v_statistic: Environment-detection V of the processed segment.
        environment_state: Classified activity state.
        selected_subcarrier: Subcarrier chosen by selection (0–29).
        selected_antenna_pair: The antenna pair the selected series came
            from (pair diversity may pick the non-primary pair).
        candidate_subcarriers: The top-k selection candidates.
        sensitivities: Per-subcarrier MAD profile (Fig. 7).
        calibrated_rate_hz: Sample rate after calibration.
        n_calibrated_samples: Length of the calibrated series.
        breathing_band_hz: DWT breathing band.
        heart_band_hz: DWT heart band.
        reclocked: Whether the input timestamps were non-uniform (packet
            loss, gaps, jitter) and the series was interpolated onto a
            uniform grid before calibration.
        input_loss_fraction: Packet-loss fraction of the input stream
            (0.0 for a clean uniform capture).
    """

    v_statistic: float
    environment_state: ActivityState
    selected_subcarrier: int
    selected_antenna_pair: tuple[int, int]
    candidate_subcarriers: tuple[int, ...]
    sensitivities: FloatArray
    calibrated_rate_hz: float
    n_calibrated_samples: int
    breathing_band_hz: tuple[float, float]
    heart_band_hz: tuple[float, float]
    reclocked: bool = False
    input_loss_fraction: float = 0.0


@dataclass(frozen=True)
class PhaseBeatResult:
    """Full output of one pipeline run.

    Attributes:
        breathing: Breathing estimates, one per detected person (ascending
            rate for multi-person runs).
        heart: Heart estimate, or ``None`` when not requested / detectable.
        diagnostics: Intermediate pipeline state.
        breathing_signal: The DWT breathing-band series (for plots).
        heart_signal: The DWT heart-band series (for plots).
    """

    breathing: tuple[VitalSignEstimate, ...]
    heart: VitalSignEstimate | None
    diagnostics: PipelineDiagnostics
    breathing_signal: FloatArray | None = field(repr=False, default=None)
    heart_signal: FloatArray | None = field(repr=False, default=None)

    @property
    def breathing_rates_bpm(self) -> tuple[float, ...]:
        """Just the breathing numbers, ascending."""
        return tuple(e.rate_bpm for e in self.breathing)

    @property
    def heart_rate_bpm(self) -> float | None:
        """Just the heart number, if any."""
        return None if self.heart is None else self.heart.rate_bpm
