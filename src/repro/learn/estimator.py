"""The learned serving rung: a trained bundle behind the estimator protocol.

:class:`LearnedEstimator` exposes the same
``estimate_breathing_bpm(trace) -> float`` surface as the classical
fallback estimators (:class:`~repro.extensions.csi_ratio.CsiRatioEstimator`,
:class:`~repro.baselines.amplitude.AmplitudeMethod`), so the
:class:`~repro.service.MonitorSupervisor` can slot it into the fallback
ladder and the eval harness can run it head-to-head against the classical
chain.  Windows the feature extractor refuses (too short, too degraded)
raise :class:`~repro.errors.EstimationError`, which the supervisor treats
as "no estimate" — the rung degrades to the held-over phase-difference
value instead of guessing.

Inference is instrumented (``learn_stage_duration_s`` via the shared
stage timer, ``learn_inferences_total``) and features for a given window
are computed once even when both the rate and apnea heads are queried,
via a small keyed cache (``learn_feature_cache_hits_count``).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..contracts import FloatArray
from ..errors import EstimationError, ReproError
from ..io_.trace import CSITrace
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .features import FeatureConfig, window_features
from .persist import LearnedBundle

__all__ = ["LearnedEstimator"]

_FEATURE_CACHE_ENTRIES = 8


class LearnedEstimator:
    """Serve a trained :class:`~repro.learn.persist.LearnedBundle`.

    Args:
        bundle: The trained model family.
        config: Feature-extraction parameters (must match what the bundle
            was trained with for sensible output).
        use_mlp: Serve the MLP rate head instead of the ridge head.
        instrumentation: Optional :class:`repro.obs.Instrumentation`;
            inference timings and cache counters land there.
    """

    method = "learned"

    def __init__(
        self,
        bundle: LearnedBundle,
        *,
        config: FeatureConfig | None = None,
        use_mlp: bool = False,
        instrumentation: Instrumentation | None = None,
    ):
        bundle.check_catalogue()
        self.bundle = bundle
        self.config = config if config is not None else FeatureConfig()
        self.use_mlp = bool(use_mlp)
        self._obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        # Tiny per-instance feature cache: the supervisor may query both
        # the rate and apnea heads on the same window, and re-featurizing
        # is the expensive half of inference.  Keyed by cheap window
        # identity (shape + end timestamps), bounded, instance-owned (no
        # module state — PL010).
        self._feature_cache: OrderedDict[
            tuple[int, int, int, float, float], FloatArray
        ] = OrderedDict()

    def _cache_key(
        self, trace: CSITrace
    ) -> tuple[int, int, int, float, float]:
        return (
            int(trace.n_packets),
            int(trace.n_rx),
            int(trace.n_subcarriers),
            float(trace.timestamps_s[0]),
            float(trace.timestamps_s[-1]),
        )

    def _features(self, trace: CSITrace) -> FloatArray:
        key = self._cache_key(trace)
        cached = self._feature_cache.get(key)
        if cached is not None:
            self._feature_cache.move_to_end(key)
            self._obs.count(
                "learn_feature_cache_hits_count",
                help_text="Window feature vectors served from the cache.",
            )
            return cached
        self._obs.count(
            "learn_feature_cache_misses_count",
            help_text="Window feature vectors computed fresh.",
        )
        vector = window_features(trace, self.config)
        self._feature_cache[key] = vector
        while len(self._feature_cache) > _FEATURE_CACHE_ENTRIES:
            self._feature_cache.popitem(last=False)
        return vector

    def estimate_breathing_bpm(self, trace: CSITrace) -> float:
        """Breathing-rate estimate for one window.

        Args:
            trace: The CSI window (typically
                :meth:`StreamingMonitor.window_trace` output).

        Returns:
            The estimated rate in bpm, clamped to the physiologically
            plausible band the features were built over.

        Raises:
            EstimationError: When the window is too short or degraded for
                the feature extractor (the serving ladder degrades).
        """
        with self._obs.stage("infer", component="learn"):
            try:
                vector = self._features(trace)
            except EstimationError:
                raise
            except ReproError as exc:
                # Contract violations and other pipeline refusals surface
                # as "no estimate" so the serving rung degrades cleanly.
                raise EstimationError(
                    f"learned featurization failed: {exc}"
                ) from exc
            rate_bpm = self.bundle.predict_rate_bpm(
                vector, use_mlp=self.use_mlp
            )
            lo_hz, hi_hz = self.config.breathing_band_hz
            rate_bpm = float(np.clip(rate_bpm, lo_hz * 60.0, hi_hz * 60.0))
        self._obs.count(
            "learn_inferences_total",
            labels={"head": "rate"},
            help_text="Learned-estimator inferences served.",
        )
        return rate_bpm

    def apnea_probability(self, trace: CSITrace) -> float:
        """Probability the window contains an apneic pause.

        Args:
            trace: The CSI window.

        Returns:
            Probability in ``[0, 1]``.

        Raises:
            EstimationError: When the window cannot be featurized.
            ConfigurationError: When the bundle has no apnea head.
        """
        with self._obs.stage("infer", component="learn"):
            try:
                vector = self._features(trace)
            except EstimationError:
                raise
            except ReproError as exc:
                raise EstimationError(
                    f"learned featurization failed: {exc}"
                ) from exc
            probability = self.bundle.apnea_probability(vector)
        self._obs.count(
            "learn_inferences_total",
            labels={"head": "apnea"},
            help_text="Learned-estimator inferences served.",
        )
        return probability
