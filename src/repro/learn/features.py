"""Deterministic per-window features for the learned estimator track.

One CSI window becomes one fixed-length real vector.  The catalogue mixes
three kinds of evidence the classical chain uses only partially:

* **pooled spectral evidence** — the classical chain estimates from a few
  *selected* subcarriers; pooling magnitude spectra across *all* eligible
  columns is markedly more robust when heavy packet loss or through-wall
  attenuation makes any single subcarrier unreliable;
* **cross-subcarrier agreement** — the median and spread of per-column
  peak frequencies tell the model when the spectral vote is unanimous
  (trust the peak) versus scattered (fall back on pooled/autocorrelation
  evidence);
* **envelope statistics** — breathing-envelope depth and quiet-run length,
  the apnea cues :mod:`repro.core.apnea` thresholds by hand.

Everything is computed with the batched DSP kernels from
:mod:`repro.dsp.fft_utils` (one vectorized FFT per window, cached plans)
and is a pure function of the input window — no RNG, no wall clock — so a
feature matrix is byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import BoolArray, FloatArray, check_matrix, check_trace
from ..core.calibration import CalibrationConfig
from ..core.pipeline import prepare_calibrated_matrix
from ..dsp.fft_utils import band_mask, batched_magnitude_spectrum
from ..errors import ConfigurationError, EstimationError
from ..io_.trace import CSITrace

__all__ = [
    "FEATURE_NAMES",
    "FeatureConfig",
    "matrix_features",
    "window_features",
]

# The fixed feature catalogue, in output order.  docs/learned.md documents
# each entry; the serialized model bundle embeds this tuple so an artifact
# trained against one catalogue refuses to serve another.
FEATURE_NAMES: tuple[str, ...] = (
    "pooled_peak_hz",
    "octave_peak_hz",
    "pooled_prominence_ratio",
    "vote_median_hz",
    "vote_spread_hz",
    "weighted_peak_hz",
    "harmonic_ratio",
    "subharmonic_ratio",
    "autocorr_peak_hz",
    "band_power_fraction",
    "spectral_entropy_norm",
    "motion_level",
    "motion_top_fraction",
    "envelope_min_ratio",
    "envelope_low_fraction",
    "quiet_run_s",
    "eligible_fraction",
    "window_duration_s",
    "window_rate_hz",
)


@dataclass(frozen=True)
class FeatureConfig:
    """Feature-extraction parameters.

    Attributes:
        breathing_band_hz: Search band for the breathing fundamental.
        nfft_min: Minimum FFT length (windows are zero-padded up to at
            least this, and to the next power of two above the window).
        min_samples: Minimum calibrated samples per window; shorter
            windows raise :class:`~repro.errors.EstimationError` so the
            serving rung degrades instead of guessing.
        min_eligible_fraction: Minimum fraction of quality-eligible
            subcarrier columns; below it the window counts as too
            degraded to featurize.
        envelope_window_s: Sliding-RMS window for the breathing envelope.
        quiet_threshold_fraction: Envelope fraction of its median below
            which a sample counts as "quiet" (apnea cue).
        calibration: Calibration parameters for the trace front half.
    """

    breathing_band_hz: tuple[float, float] = (0.1, 0.7)
    nfft_min: int = 1024
    min_samples: int = 64
    min_eligible_fraction: float = 0.05
    envelope_window_s: float = 4.0
    quiet_threshold_fraction: float = 0.3
    calibration: CalibrationConfig | None = None

    def __post_init__(self) -> None:
        lo, hi = self.breathing_band_hz
        if not 0 < lo < hi:
            raise ConfigurationError(
                f"breathing_band_hz must satisfy 0 < lo < hi, got "
                f"{self.breathing_band_hz}"
            )
        if self.nfft_min < 8:
            raise ConfigurationError("nfft_min must be >= 8")
        if self.min_samples < 8:
            raise ConfigurationError("min_samples must be >= 8")
        if not 0.0 <= self.min_eligible_fraction <= 1.0:
            raise ConfigurationError(
                "min_eligible_fraction must be in [0, 1]"
            )
        if self.envelope_window_s <= 0:
            raise ConfigurationError("envelope_window_s must be positive")
        if not 0.0 < self.quiet_threshold_fraction < 1.0:
            raise ConfigurationError(
                "quiet_threshold_fraction must be in (0, 1)"
            )


def _nfft_for(n_samples: int, nfft_min: int) -> int:
    """FFT length: next power of two >= both the window and ``nfft_min``."""
    n = max(int(nfft_min), int(n_samples))
    return 1 << (n - 1).bit_length()


def _moving_rms(x: FloatArray, window_samples: int) -> FloatArray:
    """Sliding-RMS envelope via cumulative sums (same length as ``x``)."""
    w = max(1, min(int(window_samples), x.size))
    padded = np.concatenate([np.zeros(1), np.cumsum(x * x)])
    # Right-aligned window, clamped at the left edge.
    hi = np.arange(1, x.size + 1)
    lo = np.maximum(hi - w, 0)
    return np.sqrt((padded[hi] - padded[lo]) / (hi - lo))


def _longest_true_run(mask: BoolArray) -> int:
    """Length of the longest consecutive ``True`` run."""
    best = 0
    run = 0
    for flag in mask.tolist():
        run = run + 1 if flag else 0
        if run > best:
            best = run
    return best


def _interp_peak_hz(
    freqs_hz: FloatArray, magnitude: FloatArray, peak_index: int
) -> float:
    """Quadratic-interpolated frequency of a spectral peak bin."""
    k = int(peak_index)
    if k <= 0 or k >= magnitude.size - 1:
        return float(freqs_hz[k])
    left, center, right = (
        float(magnitude[k - 1]),
        float(magnitude[k]),
        float(magnitude[k + 1]),
    )
    denominator = left - 2.0 * center + right
    if denominator >= 0.0:
        return float(freqs_hz[k])
    delta = 0.5 * (left - right) / denominator
    bin_width = float(freqs_hz[1] - freqs_hz[0])
    return float(freqs_hz[k] + delta * bin_width)


def _autocorr_peak_hz(
    pooled: FloatArray, sample_rate_hz: float, band_hz: tuple[float, float]
) -> float:
    """Breathing-rate candidate from the first autocorrelation peak."""
    x = pooled - pooled.mean()
    n = x.size
    nfft = 1 << (2 * n - 1).bit_length()
    spectrum = np.fft.rfft(x, n=nfft)
    ac = np.fft.irfft(spectrum * np.conj(spectrum), n=nfft)[:n]
    lo_lag = max(1, int(round(sample_rate_hz / band_hz[1])))
    hi_lag = min(n - 1, int(round(sample_rate_hz / band_hz[0])))
    if hi_lag <= lo_lag:
        return 0.0
    lags = np.arange(lo_lag, hi_lag + 1)
    k = int(lags[np.argmax(ac[lo_lag : hi_lag + 1])])
    if ac[k] <= 0:
        return 0.0
    return float(sample_rate_hz / k)


@check_matrix("matrix")
def matrix_features(
    matrix: FloatArray,
    sample_rate_hz: float,
    *,
    quality: BoolArray | None = None,
    config: FeatureConfig | None = None,
) -> FloatArray:
    """Featurize one calibrated ``[n_samples x n_columns]`` window.

    Args:
        matrix: Calibrated phase-difference (or synthetic) series, one
            column per subcarrier stream.
        sample_rate_hz: Post-calibration sample rate.
        quality: Optional per-column eligibility mask (ineligible columns
            are excluded from every statistic).
        config: Feature parameters.

    Returns:
        A 1-D float vector aligned with :data:`FEATURE_NAMES`.

    Raises:
        EstimationError: When the window is too short or too degraded to
            featurize (the serving rung treats this as "no estimate").
    """
    cfg = config if config is not None else FeatureConfig()
    n_samples, n_columns = matrix.shape
    if n_samples < cfg.min_samples:
        raise EstimationError(
            f"window too short for learned features: {n_samples} samples "
            f"< {cfg.min_samples}"
        )
    if sample_rate_hz <= 0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz}"
        )
    if quality is None:
        eligible = np.ones(n_columns, dtype=bool)
    else:
        if quality.shape != (n_columns,):
            raise ConfigurationError(
                f"quality mask shape {quality.shape} does not match "
                f"{n_columns} columns"
            )
        eligible = np.asarray(quality, dtype=bool).copy()
    eligible &= np.all(np.isfinite(matrix), axis=0)
    eligible &= matrix.std(axis=0) > 0
    eligible_fraction = float(eligible.mean())
    if eligible_fraction < cfg.min_eligible_fraction or not eligible.any():
        raise EstimationError(
            f"window quality too low for learned features: only "
            f"{eligible_fraction:.0%} of columns eligible"
        )

    columns = matrix[:, eligible]
    nfft = _nfft_for(n_samples, cfg.nfft_min)
    freqs, mags = batched_magnitude_spectrum(
        columns, sample_rate_hz, nfft=nfft
    )
    in_band = band_mask(freqs, cfg.breathing_band_hz)
    if not in_band.any():
        raise EstimationError(
            f"no FFT bins inside the breathing band {cfg.breathing_band_hz}"
        )
    band_indices = np.flatnonzero(in_band)
    band_freqs = freqs[band_indices]
    band_mags = mags[band_indices, :]

    # Robust per-column motion scale (median absolute deviation).
    deviations = np.abs(columns - np.median(columns, axis=0, keepdims=True))
    sensitivities = np.median(deviations, axis=0)
    total_sensitivity = float(sensitivities.sum())
    if total_sensitivity <= 0:
        raise EstimationError("window carries no motion energy")
    weights = sensitivities / total_sensitivity

    pooled_full = mags.mean(axis=1)
    pooled = pooled_full[band_indices]
    peak_band_index = int(np.argmax(pooled))
    peak_index = int(band_indices[peak_band_index])
    peak_magnitude = float(pooled[peak_band_index])
    pooled_peak_hz = _interp_peak_hz(freqs, pooled_full, peak_index)
    median_band = float(np.median(pooled))
    pooled_prominence_ratio = peak_magnitude / max(median_band, 1e-12)

    # Octave correction: chest-motion spectra are often harmonic-dominant
    # (the path-length nonlinearity pumps energy into 2f), so when half
    # the peak frequency still lies in-band and carries substantial
    # energy, the subharmonic is the better fundamental candidate.
    octave_peak_hz = pooled_peak_hz
    half_hz = 0.5 * pooled_peak_hz
    if half_hz >= cfg.breathing_band_hz[0]:
        half_magnitude = float(np.interp(half_hz, freqs, pooled_full))
        if half_magnitude >= 0.25 * peak_magnitude:
            octave_peak_hz = half_hz

    votes_hz = band_freqs[np.argmax(band_mags, axis=0)]
    vote_median_hz = float(np.median(votes_hz))
    q75, q25 = np.percentile(votes_hz, [75.0, 25.0])
    vote_spread_hz = float(q75 - q25)

    weighted = band_mags @ weights
    weighted_peak_index = int(band_indices[int(np.argmax(weighted))])
    weighted_peak_hz = _interp_peak_hz(
        freqs, mags @ weights, weighted_peak_index
    )

    harmonic_ratio = float(
        np.interp(2.0 * pooled_peak_hz, freqs, pooled_full)
        / max(peak_magnitude, 1e-12)
    )
    subharmonic_ratio = float(
        np.interp(0.5 * pooled_peak_hz, freqs, pooled_full)
        / max(peak_magnitude, 1e-12)
    )

    pooled_series = columns @ weights
    autocorr_peak_hz = _autocorr_peak_hz(
        pooled_series, sample_rate_hz, cfg.breathing_band_hz
    )

    spectral_power = pooled_full[1:]  # exclude DC
    band_power_fraction = float(
        pooled.sum() / max(float(spectral_power.sum()), 1e-12)
    )
    probabilities = pooled / max(float(pooled.sum()), 1e-12)
    nonzero = probabilities[probabilities > 0]
    spectral_entropy_norm = float(
        -(nonzero * np.log(nonzero)).sum() / np.log(max(pooled.size, 2))
    )

    motion_level = float(sensitivities.mean())
    motion_top_fraction = float(sensitivities.max() / total_sensitivity)

    envelope = _moving_rms(
        pooled_series - pooled_series.mean(),
        int(round(cfg.envelope_window_s * sample_rate_hz)),
    )
    envelope_median = float(np.median(envelope))
    envelope_min_ratio = float(
        np.percentile(envelope, 5.0) / max(envelope_median, 1e-12)
    )
    quiet = envelope < cfg.quiet_threshold_fraction * envelope_median
    envelope_low_fraction = float(quiet.mean())
    quiet_run_s = _longest_true_run(quiet) / float(sample_rate_hz)

    vector = np.array(
        [
            pooled_peak_hz,
            octave_peak_hz,
            pooled_prominence_ratio,
            vote_median_hz,
            vote_spread_hz,
            weighted_peak_hz,
            harmonic_ratio,
            subharmonic_ratio,
            autocorr_peak_hz,
            band_power_fraction,
            spectral_entropy_norm,
            motion_level,
            motion_top_fraction,
            envelope_min_ratio,
            envelope_low_fraction,
            quiet_run_s,
            eligible_fraction,
            n_samples / float(sample_rate_hz),
            float(sample_rate_hz),
        ],
        dtype=float,
    )
    if not np.all(np.isfinite(vector)):
        raise EstimationError("non-finite feature value in window")
    return vector


@check_trace()
def window_features(
    trace: CSITrace, config: FeatureConfig | None = None
) -> FloatArray:
    """Featurize one CSI trace window end to end.

    Runs the shared classical front half
    (:func:`repro.core.pipeline.prepare_calibrated_matrix`: phase
    difference, Hampel calibration, amplitude quality mask) and featurizes
    the calibrated matrix.

    Args:
        trace: The CSI window.
        config: Feature parameters.

    Returns:
        A 1-D float vector aligned with :data:`FEATURE_NAMES`.
    """
    cfg = config if config is not None else FeatureConfig()
    matrix, quality, rate_hz = prepare_calibrated_matrix(
        trace, calibration=cfg.calibration
    )
    return matrix_features(matrix, rate_hz, quality=quality, config=cfg)
