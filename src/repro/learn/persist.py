"""Canonical-JSON serialization for trained model bundles.

A :class:`LearnedBundle` is everything the serving rung needs: the fitted
rate models, the optional apnea classifier, the feature catalogue they
were trained against, and the training metadata (seed, corpus shape).
Serialization is canonical — sorted keys, compact separators, ``repr``
floats — so training twice from the same seed yields *byte-identical*
artifacts, which is what the determinism suite asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError
from .features import FEATURE_NAMES
from .models import LogisticClassifier, RidgeRegressor, TinyMLP

__all__ = [
    "MODEL_SCHEMA_VERSION",
    "LearnedBundle",
    "dump_bundle",
    "load_bundle",
    "save_bundle",
    "read_bundle",
]

# Bump when the bundle schema changes shape; loaders reject other versions.
MODEL_SCHEMA_VERSION = 1

_MODEL_KINDS: dict[str, Any] = {
    RidgeRegressor.kind: RidgeRegressor,
    LogisticClassifier.kind: LogisticClassifier,
    TinyMLP.kind: TinyMLP,
}


@dataclass(frozen=True)
class LearnedBundle:
    """A trained model family ready to serve.

    Attributes:
        feature_names: The feature catalogue the models consume; serving
            refuses a bundle whose catalogue disagrees with the running
            :data:`repro.learn.features.FEATURE_NAMES`.
        breathing_model: Primary breathing-rate regressor (ridge).
        breathing_mlp: Optional MLP alternative for the rate head.
        apnea_model: Optional apnea-presence classifier.
        meta: Training metadata (seed, corpus mode/size, residuals).
    """

    feature_names: tuple[str, ...]
    breathing_model: RidgeRegressor
    breathing_mlp: TinyMLP | None = None
    apnea_model: LogisticClassifier | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "feature_names", tuple(self.feature_names)
        )
        if not self.breathing_model.fitted:
            raise ConfigurationError("bundle needs a fitted rate model")

    def check_catalogue(self) -> None:
        """Reject a bundle trained against a different feature catalogue."""
        if self.feature_names != FEATURE_NAMES:
            raise ConfigurationError(
                "model bundle was trained against a different feature "
                f"catalogue ({len(self.feature_names)} features vs the "
                f"running {len(FEATURE_NAMES)})"
            )

    def predict_rate_bpm(
        self, features: FloatArray, *, use_mlp: bool = False
    ) -> float:
        """Breathing rate for one feature vector.

        Args:
            features: A 1-D vector aligned with :attr:`feature_names`.
            use_mlp: Serve the MLP head instead of the ridge head.

        Returns:
            The predicted rate in bpm.
        """
        row = np.asarray(features, dtype=float).reshape(1, -1)
        if use_mlp:
            if self.breathing_mlp is None:
                raise ConfigurationError("bundle has no MLP rate head")
            return float(self.breathing_mlp.predict(row)[0])
        return float(self.breathing_model.predict(row)[0])

    def apnea_probability(self, features: FloatArray) -> float:
        """Probability the window contains an apneic pause.

        Args:
            features: A 1-D vector aligned with :attr:`feature_names`.

        Returns:
            Probability in ``[0, 1]``.
        """
        if self.apnea_model is None:
            raise ConfigurationError("bundle has no apnea head")
        row = np.asarray(features, dtype=float).reshape(1, -1)
        return float(self.apnea_model.predict_probability(row)[0])


def dump_bundle(bundle: LearnedBundle) -> str:
    """Serialize a bundle to canonical JSON (byte-reproducible).

    Args:
        bundle: The trained bundle.

    Returns:
        Canonical JSON text ending in a newline.
    """
    payload: dict[str, Any] = {
        "version": MODEL_SCHEMA_VERSION,
        "feature_names": list(bundle.feature_names),
        "breathing_model": bundle.breathing_model.state(),
        "breathing_mlp": (
            bundle.breathing_mlp.state() if bundle.breathing_mlp is not None else None
        ),
        "apnea_model": (
            bundle.apnea_model.state()
            if bundle.apnea_model is not None
            else None
        ),
        "meta": bundle.meta,
    }
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    )


def _restore(state: dict[str, Any] | None, expected_kind: str) -> Any:
    if state is None:
        return None
    kind = state.get("kind")
    if kind != expected_kind:
        raise ConfigurationError(
            f"expected a {expected_kind!r} model state, got {kind!r}"
        )
    return _MODEL_KINDS[expected_kind].from_state(state)


def load_bundle(text: str) -> LearnedBundle:
    """Parse a bundle from its canonical JSON text.

    Args:
        text: Output of :func:`dump_bundle`.

    Returns:
        The restored :class:`LearnedBundle`.

    Raises:
        ConfigurationError: On malformed JSON, a wrong schema version, or
            an unexpected model kind.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"model bundle is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ConfigurationError("model bundle JSON must be an object")
    version = payload.get("version")
    if version != MODEL_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported model schema version {version!r} "
            f"(this build reads version {MODEL_SCHEMA_VERSION})"
        )
    breathing_model = _restore(payload.get("breathing_model"), RidgeRegressor.kind)
    if breathing_model is None:
        raise ConfigurationError("model bundle has no rate model")
    return LearnedBundle(
        feature_names=tuple(payload.get("feature_names", ())),
        breathing_model=breathing_model,
        breathing_mlp=_restore(payload.get("breathing_mlp"), TinyMLP.kind),
        apnea_model=_restore(payload.get("apnea_model"), LogisticClassifier.kind),
        meta=dict(payload.get("meta", {})),
    )


def save_bundle(bundle: LearnedBundle, path: str) -> None:
    """Write a bundle's canonical JSON to ``path``.

    Args:
        bundle: The trained bundle.
        path: Destination file path.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_bundle(bundle))


def read_bundle(path: str) -> LearnedBundle:
    """Load a bundle previously written by :func:`save_bundle`.

    Args:
        path: Source file path.

    Returns:
        The restored :class:`LearnedBundle`.
    """
    with open(path, encoding="utf-8") as fh:
        return load_bundle(fh.read())
