"""Corpus generation and training for the learned estimator track.

Two corpus sources, both fully seeded:

* **simulator corpora** — windows captured from :mod:`repro.rf.scene`
  scenes (laboratory and through-wall), degraded through
  :mod:`repro.rf.impairments` packet loss at several severities, with
  scripted apneic pauses mixed in for the apnea head.  ``mode="synthetic"``
  swaps the RF chain for direct calibrated-matrix synthesis (same feature
  path, ~50x faster) — used by the chaos/sanitize scenarios where training
  happens in-process;
* **recorded ``.cst`` stores** — :func:`corpus_from_store` slices stored
  traces into windows through :class:`repro.store.TraceReader`, with
  calibration optionally memoized by a
  :class:`repro.store.StoreCalibrationMemo`.

Training is deterministic end to end: window ``k`` of a corpus draws from
``default_rng((seed, k))``, the models are closed-form or fixed-iteration,
and :func:`repro.learn.persist.dump_bundle` canonicalizes the artifact —
so the same config yields byte-identical bundles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError, EstimationError, ReproError
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..physio.breathing import ApneicBreathing, SinusoidalBreathing
from ..physio.person import Person
from ..rf.impairments import (
    BernoulliLoss,
    ImpulsiveCorruption,
    SubcarrierNulls,
    TimestampJitter,
    apply_impairments,
)
from ..rf.receiver import capture_trace
from ..rf.scene import laboratory_scenario, through_wall_scenario
from .features import FEATURE_NAMES, FeatureConfig, matrix_features, window_features
from .models import LogisticClassifier, RidgeRegressor, TinyMLP
from .persist import LearnedBundle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..store.memo import StoreCalibrationMemo

__all__ = [
    "TrainingConfig",
    "FeatureDataset",
    "generate_corpus",
    "corpus_from_store",
    "train",
    "train_from_store",
]

_MODES = ("synthetic", "rf")
_SCENARIOS = ("lab", "through-wall")


@dataclass(frozen=True)
class TrainingConfig:
    """Seeded corpus + model parameters.

    Attributes:
        mode: ``"rf"`` captures windows through the full simulator chain;
            ``"synthetic"`` synthesizes calibrated matrices directly (same
            features, much faster — the chaos harness's choice).
        n_windows: Corpus size (windows attempted; degraded windows that
            fail feature extraction are skipped and counted).
        window_duration_s: Capture length per window.
        sample_rate_hz: Packet rate of ``rf``-mode captures.
        scenarios: Scene families to cycle through (``rf`` mode).
        loss_fractions: Packet-loss severities to cycle through.
        apnea_fraction: Probability a window carries a scripted apneic
            pause (trains the apnea head).
        breathing_band_hz: Ground-truth breathing-rate range sampled.
        seed: Master seed; window ``k`` draws from ``(seed, k)``.
        with_mlp: Also fit the MLP rate head.
        features: Feature-extraction parameters.
    """

    mode: str = "synthetic"
    n_windows: int = 160
    window_duration_s: float = 20.0
    sample_rate_hz: float = 50.0
    scenarios: tuple[str, ...] = _SCENARIOS
    loss_fractions: tuple[float, ...] = (0.0, 0.3, 0.6)
    apnea_fraction: float = 0.25
    breathing_band_hz: tuple[float, float] = (0.15, 0.5)
    seed: int = 0
    with_mlp: bool = True
    features: FeatureConfig = field(default_factory=FeatureConfig)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown training mode {self.mode!r}; expected one of "
                f"{_MODES}"
            )
        if self.n_windows < 8:
            raise ConfigurationError("n_windows must be >= 8")
        if self.window_duration_s <= 0:
            raise ConfigurationError("window_duration_s must be positive")
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        for name in self.scenarios:
            if name not in _SCENARIOS:
                raise ConfigurationError(
                    f"unknown scenario {name!r}; expected one of {_SCENARIOS}"
                )
        if not self.scenarios:
            raise ConfigurationError("scenarios must be non-empty")
        if not self.loss_fractions:
            raise ConfigurationError("loss_fractions must be non-empty")
        for loss in self.loss_fractions:
            if not 0.0 <= loss < 1.0:
                raise ConfigurationError(
                    f"loss fractions must be in [0, 1), got {loss}"
                )
        if not 0.0 <= self.apnea_fraction <= 1.0:
            raise ConfigurationError("apnea_fraction must be in [0, 1]")
        lo, hi = self.breathing_band_hz
        if not 0 < lo < hi:
            raise ConfigurationError(
                "breathing_band_hz must satisfy 0 < lo < hi"
            )


@dataclass(frozen=True)
class FeatureDataset:
    """One featurized corpus.

    Attributes:
        features: ``[n_windows x n_features]`` matrix.
        rates_bpm: Ground-truth breathing rate per window.
        apnea_labels: 1.0 where the window carries an apneic pause.
        feature_names: Column catalogue of :attr:`features`.
        n_skipped: Windows dropped because feature extraction refused
            them (too degraded).
    """

    features: FloatArray
    rates_bpm: FloatArray
    apnea_labels: FloatArray
    feature_names: tuple[str, ...] = FEATURE_NAMES
    n_skipped: int = 0

    @property
    def n_windows(self) -> int:
        """Number of usable windows in the corpus."""
        return int(self.features.shape[0])


def _synthetic_window(
    rng: np.random.Generator, config: TrainingConfig
) -> tuple[FloatArray, float, float, float]:
    """One synthetic calibrated matrix + (rate_hz, truth_bpm, apnea)."""
    # A 50 Hz capture decimates to 25 Hz through the default calibration
    # (target 20 Hz, integer factor 2) — match it so rate-linked features
    # agree between synthetic and captured corpora.
    rate_hz = 25.0
    # Serving windows vary (the supervisor serves ~15 s windows, offline
    # eval 30 s) — span that range so duration-linked features generalize.
    duration_s = float(
        rng.uniform(0.7, 1.6) * config.window_duration_s
    )
    n = int(round(duration_s * rate_hz))
    t = np.arange(n) / rate_hz
    frequency_hz = float(rng.uniform(*config.breathing_band_hz))
    n_columns = 24
    n_responsive = int(rng.integers(6, 18))
    noise_scale = float(rng.uniform(0.3, 2.5))
    # Chest-motion spectra are frequently harmonic-dominant (path-length
    # nonlinearity); teach the model both regimes.
    harmonic_ratio = (
        float(rng.uniform(0.8, 2.2))
        if rng.random() < 0.4
        else float(rng.uniform(0.1, 0.5))
    )

    gate = np.ones(n)
    apnea = 0.0
    if rng.random() < config.apnea_fraction:
        apnea = 1.0
        start = float(rng.uniform(0.15, 0.35)) * duration_s
        length = float(rng.uniform(0.3, 0.5)) * duration_s
        ramp_s = 0.5
        inside = np.clip(
            np.minimum(t - start, start + length - t) / ramp_s, 0.0, 1.0
        )
        gate = 1.0 - inside

    columns = []
    for column in range(n_columns):
        if column < n_responsive:
            amplitude = float(rng.lognormal(0.0, 0.5))
            phase = float(rng.uniform(0, 2 * np.pi))
            breathing = amplitude * np.sin(
                2 * np.pi * frequency_hz * t + phase
            )
            breathing += harmonic_ratio * amplitude * np.sin(
                2 * np.pi * 2 * frequency_hz * t + 2 * phase
            )
            signal = gate * breathing
        else:
            signal = np.zeros(n)
        signal = signal + noise_scale * 0.3 * rng.standard_normal(n)
        columns.append(signal)
    matrix = np.stack(columns, axis=1)
    return matrix, rate_hz, frequency_hz * 60.0, apnea


def _rf_window(
    rng: np.random.Generator, index: int, config: TrainingConfig
) -> tuple[Any, float, float]:
    """One simulator-captured trace + (truth_bpm, apnea)."""
    frequency_hz = float(rng.uniform(*config.breathing_band_hz))
    breathing: Any = SinusoidalBreathing(
        frequency_hz=frequency_hz,
        amplitude_m=float(rng.uniform(4.0e-3, 6.0e-3)),
        phase=float(rng.uniform(0, 2 * np.pi)),
    )
    duration_s = float(
        rng.uniform(0.7, 1.6) * config.window_duration_s
    )
    apnea = 0.0
    if rng.random() < config.apnea_fraction:
        apnea = 1.0
        start = float(rng.uniform(0.2, 0.4)) * duration_s
        length = float(rng.uniform(0.3, 0.5)) * duration_s
        breathing = ApneicBreathing(
            base=breathing, pauses_s=((start, length),)
        )
    jitter = rng.uniform(-0.3, 0.3, size=3)
    person = Person(
        position=(2.2 + float(jitter[0]), 3.0 + float(jitter[1]), 1.0),
        breathing=breathing,
        heartbeat=None,
    )
    scenario_name = config.scenarios[index % len(config.scenarios)]
    seed = int(rng.integers(0, 2**31 - 1))
    if scenario_name == "through-wall":
        person = Person(
            position=(2.5 + float(jitter[0]), 0.8, 1.0),
            breathing=breathing,
            heartbeat=None,
        )
        # Sample the geometry the paper sweeps (Fig. 16): distance and
        # wall attenuation both drive SNR, and the corpus must cover the
        # low-SNR corner where the learned track is supposed to win.
        scene = through_wall_scenario(
            float(rng.uniform(3.0, 7.0)),
            persons=[person],
            wall_loss_db=float(rng.uniform(6.0, 11.0)),
            clutter_seed=seed,
        )
    else:
        scene = laboratory_scenario([person], clutter_seed=seed)
    trace = capture_trace(
        scene,
        duration_s=duration_s,
        sample_rate_hz=config.sample_rate_hz,
        seed=seed,
    )
    impairments: list[Any] = []
    loss = config.loss_fractions[index % len(config.loss_fractions)]
    if loss > 0:
        impairments.append(BernoulliLoss(loss_fraction=loss))
    # Mix in the hardware impairment families the heavy eval scenarios
    # apply, so the extractor's robustness features are trained in-domain.
    if rng.random() < 0.5:
        impairments.append(
            TimestampJitter(std_s=float(rng.uniform(1e-3, 10e-3)))
        )
    if rng.random() < 0.4:
        impairments.append(
            ImpulsiveCorruption(
                hit_fraction=float(rng.uniform(0.01, 0.06)),
                magnitude=float(rng.uniform(8.0, 15.0)),
            )
        )
    if rng.random() < 0.3:
        impairments.append(SubcarrierNulls(n_nulls=int(rng.integers(2, 9))))
    if impairments:
        trace = apply_impairments(trace, impairments, seed=seed + 1)
    return trace, frequency_hz * 60.0, apnea


def generate_corpus(
    config: TrainingConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
) -> FeatureDataset:
    """Generate a featurized training corpus from the simulators.

    Args:
        config: Corpus parameters.
        instrumentation: Optional metrics sink (window counters).

    Returns:
        The featurized :class:`FeatureDataset`.
    """
    cfg = config if config is not None else TrainingConfig()
    obs = (
        instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    )
    rows: list[FloatArray] = []
    rates: list[float] = []
    labels: list[float] = []
    n_skipped = 0
    for index in range(cfg.n_windows):
        rng = np.random.default_rng((cfg.seed, index))
        try:
            if cfg.mode == "synthetic":
                matrix, rate_hz, truth_bpm, apnea = _synthetic_window(rng, cfg)
                vector = matrix_features(
                    matrix, rate_hz, config=cfg.features
                )
            else:
                trace, truth_bpm, apnea = _rf_window(rng, index, cfg)
                vector = window_features(trace, cfg.features)
        except ReproError:
            # A window too degraded to featurize is a legitimate corpus
            # outcome under heavy loss settings — skip and count it.
            n_skipped += 1
            continue
        rows.append(vector)
        rates.append(truth_bpm)
        labels.append(apnea)
    if len(rows) < 8:
        raise EstimationError(
            f"corpus collapsed: only {len(rows)} of {cfg.n_windows} windows "
            "were featurizable"
        )
    obs.count(
        "learn_train_windows_total",
        amount=float(len(rows)),
        help_text="Featurized training windows accumulated.",
    )
    return FeatureDataset(
        features=np.stack(rows, axis=0),
        rates_bpm=np.asarray(rates, dtype=float),
        apnea_labels=np.asarray(labels, dtype=float),
        n_skipped=n_skipped,
    )


def corpus_from_store(
    root_dir: str,
    stems: tuple[str, ...] | None = None,
    *,
    window_duration_s: float = 20.0,
    hop_s: float = 10.0,
    features: FeatureConfig | None = None,
    memo: "StoreCalibrationMemo | None" = None,
    instrumentation: Instrumentation | None = None,
) -> FeatureDataset:
    """Featurize recorded ``.cst`` stores into a training corpus.

    Each store is read through :class:`repro.store.TraceReader` (salvage
    semantics included), calibrated once — through the shared
    :class:`repro.store.StoreCalibrationMemo` when one is passed, so
    repeated reads of the same segments hit the cache — and sliced into
    overlapping windows.  Ground-truth rates come from the recorded
    ``breathing_rates_bpm`` trace metadata.

    Args:
        root_dir: Directory holding the ``.cst`` segments.
        stems: Store stems to read; all stems in the directory when
            omitted.
        window_duration_s: Window length sliced from each store.
        hop_s: Hop between window starts.
        features: Feature-extraction parameters.
        memo: Optional shared calibration memo.
        instrumentation: Optional metrics sink.

    Returns:
        The featurized :class:`FeatureDataset` (apnea labels all zero —
        recorded stores carry no apnea ground truth).
    """
    from ..store.backend import DirectoryBackend
    from ..store.memo import StoreCalibrationMemo
    from ..store.reader import TraceReader

    if window_duration_s <= 0 or hop_s <= 0:
        raise ConfigurationError("window_duration_s and hop_s must be positive")
    cfg = features if features is not None else FeatureConfig()
    backend = DirectoryBackend(root_dir)
    if stems is None:
        # Segment files are named ``<stem>-<NNNNN>.cst``.
        found = sorted(
            {
                name[: -len(".cst")].rsplit("-", 1)[0]
                for name in backend.list_names()
                if name.endswith(".cst")
            }
        )
        stems = tuple(found)
    if not stems:
        raise ConfigurationError(f"no .cst stores found under {root_dir!r}")
    worker = memo if memo is not None else StoreCalibrationMemo(
        instrumentation=instrumentation
    )

    rows: list[FloatArray] = []
    rates: list[float] = []
    n_skipped = 0
    for stem in stems:
        reader = TraceReader(backend, stem, instrumentation=instrumentation)
        trace, _ = reader.read_trace()
        truth_bpm = float(trace.meta["breathing_rates_bpm"][0])
        matrix, quality, rate_hz = worker.calibrated_matrix(
            backend, stem, calibration=cfg.calibration
        )
        window_samples = int(round(window_duration_s * rate_hz))
        hop_samples = max(1, int(round(hop_s * rate_hz)))
        n_samples = matrix.shape[0]
        starts = range(0, max(n_samples - window_samples, 0) + 1, hop_samples)
        if n_samples < window_samples:
            starts = range(0, 1)  # single truncated window
        for start in starts:
            piece = matrix[start : start + window_samples]
            try:
                vector = matrix_features(
                    piece, rate_hz, quality=quality, config=cfg
                )
            except ReproError:
                n_skipped += 1
                continue
            rows.append(vector)
            rates.append(truth_bpm)
    if not rows:
        raise EstimationError(
            f"no featurizable windows in stores {list(stems)}"
        )
    return FeatureDataset(
        features=np.stack(rows, axis=0),
        rates_bpm=np.asarray(rates, dtype=float),
        apnea_labels=np.zeros(len(rows)),
        n_skipped=n_skipped,
    )


def _fit_bundle(
    corpus: FeatureDataset,
    *,
    seed: int,
    with_mlp: bool,
    meta: dict[str, Any],
) -> LearnedBundle:
    """Fit the model family on a corpus and assemble the bundle."""
    breathing_model = RidgeRegressor().fit(corpus.features, corpus.rates_bpm)
    residuals = np.abs(
        breathing_model.predict(corpus.features) - corpus.rates_bpm
    )
    breathing_mlp = None
    if with_mlp:
        breathing_mlp = TinyMLP(seed=seed).fit(corpus.features, corpus.rates_bpm)
    apnea_model = None
    labels = corpus.apnea_labels
    if labels.min() < 0.5 < labels.max():  # phaselint: disable=PL004 -- class-presence check on exact 0/1 labels
        apnea_model = LogisticClassifier().fit(corpus.features, labels)
    meta = dict(meta)
    meta.update(
        {
            "seed": seed,
            "n_windows": corpus.n_windows,
            "n_skipped": corpus.n_skipped,
            "train_mae_bpm": float(residuals.mean()),
            "has_apnea_head": apnea_model is not None,
        }
    )
    return LearnedBundle(
        feature_names=corpus.feature_names,
        breathing_model=breathing_model,
        breathing_mlp=breathing_mlp,
        apnea_model=apnea_model,
        meta=meta,
    )


def train(
    config: TrainingConfig | None = None,
    *,
    instrumentation: Instrumentation | None = None,
) -> LearnedBundle:
    """Train the learned estimator family from a simulator corpus.

    Args:
        config: Corpus + model parameters.
        instrumentation: Optional metrics sink; training duration lands in
            the ``learn_stage_duration_s`` histogram.

    Returns:
        The trained, serialization-ready :class:`LearnedBundle`.
    """
    cfg = config if config is not None else TrainingConfig()
    obs = (
        instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    )
    with obs.stage("train", component="learn"):
        corpus = generate_corpus(cfg, instrumentation=instrumentation)
        bundle = _fit_bundle(
            corpus,
            seed=cfg.seed,
            with_mlp=cfg.with_mlp,
            meta={
                "mode": cfg.mode,
                "scenarios": list(cfg.scenarios),
                "loss_fractions": list(cfg.loss_fractions),
                "window_duration_s": cfg.window_duration_s,
            },
        )
    return bundle


def train_from_store(
    root_dir: str,
    stems: tuple[str, ...] | None = None,
    *,
    config: TrainingConfig | None = None,
    memo: "StoreCalibrationMemo | None" = None,
    instrumentation: Instrumentation | None = None,
) -> LearnedBundle:
    """Train the rate head from recorded ``.cst`` stores.

    Args:
        root_dir: Directory holding the ``.cst`` segments.
        stems: Store stems to read; all stems when omitted.
        config: Model parameters (corpus-generation fields are unused).
        memo: Optional shared calibration memo (cache hits when the same
            stores are calibrated again, e.g. train-then-eval).
        instrumentation: Optional metrics sink.

    Returns:
        The trained :class:`LearnedBundle` (no apnea head — stores carry
        no apnea ground truth).
    """
    cfg = config if config is not None else TrainingConfig()
    obs = (
        instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    )
    with obs.stage("train", component="learn"):
        corpus = corpus_from_store(
            root_dir,
            stems,
            window_duration_s=cfg.window_duration_s,
            features=cfg.features,
            memo=memo,
            instrumentation=instrumentation,
        )
        if corpus.n_windows < 8:
            raise EstimationError(
                f"store corpus too small to fit: {corpus.n_windows} windows"
            )
        bundle = _fit_bundle(
            corpus,
            seed=cfg.seed,
            with_mlp=cfg.with_mlp,
            meta={"mode": "store", "stems": sorted(stems) if stems else "all"},
        )
    return bundle
