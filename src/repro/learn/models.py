"""From-scratch seeded numpy models for the learned track.

Three tiny estimators, chosen so training is exactly reproducible:

* :class:`RidgeRegressor` — closed-form regularized least squares for
  breathing rate (no iteration, no RNG);
* :class:`LogisticClassifier` — fixed-iteration full-batch gradient
  descent for apnea presence (no RNG);
* :class:`TinyMLP` — one tanh hidden layer trained by fixed-iteration
  full-batch gradient descent with momentum; the only randomness is the
  weight init, drawn from a ``numpy.random.Generator`` constructed inside
  :meth:`TinyMLP.fit` from the model's seed, so two fits from the same
  seed produce bit-identical weights.

Every model serializes to a plain JSON-safe ``state`` dict (see
:mod:`repro.learn.persist`) and restores without refitting.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..contracts import FloatArray, check_matrix
from ..errors import ConfigurationError

__all__ = ["RidgeRegressor", "LogisticClassifier", "TinyMLP"]

_SIGMA_FLOOR = 1e-9
_RELATIVE_SIGMA_FLOOR = 1e-2


def _standardize_columns(
    features: FloatArray,
) -> tuple[FloatArray, FloatArray, FloatArray]:
    """Column means/scales and the standardized matrix."""
    mu = features.mean(axis=0)
    sigma = features.std(axis=0)
    # A column that is (near-)constant in training carries no signal, but a
    # raw 1/sigma scale would wildly amplify any serving-time deviation
    # (e.g. a context feature like window duration served outside the
    # training range).  Floor the scale relative to the column magnitude so
    # such columns are effectively muted instead of explosive.
    floor = _RELATIVE_SIGMA_FLOOR * (1.0 + np.abs(mu))
    sigma = np.where(sigma > floor, sigma, 1.0 + np.abs(mu))
    return mu, sigma, (features - mu) / sigma


def _check_training_pair(features: FloatArray, targets: FloatArray) -> None:
    if features.shape[0] != targets.shape[0]:
        raise ConfigurationError(
            f"features ({features.shape[0]} rows) and targets "
            f"({targets.shape[0]}) disagree"
        )
    if features.shape[0] < 2:
        raise ConfigurationError("need at least 2 training rows")


class RidgeRegressor:
    """Closed-form ridge regression over standardized features.

    Args:
        l2: Ridge penalty on the standardized weights.
    """

    kind = "ridge"

    def __init__(self, l2: float = 1.0):
        if l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {l2}")
        self.l2 = float(l2)
        self._mu: FloatArray | None = None
        self._sigma: FloatArray | None = None
        self._weights: FloatArray | None = None
        self._intercept = 0.0

    @property
    def fitted(self) -> bool:
        """Whether the model carries trained weights."""
        return self._weights is not None

    @check_matrix("features")
    def fit(
        self, features: FloatArray, targets: FloatArray
    ) -> "RidgeRegressor":
        """Fit by solving the regularized normal equations.

        Args:
            features: ``[n_rows x n_features]`` training matrix.
            targets: ``[n_rows]`` regression targets.

        Returns:
            ``self`` (for chaining).
        """
        targets = np.asarray(targets, dtype=float)
        _check_training_pair(features, targets)
        self._mu, self._sigma, standardized = _standardize_columns(features)
        self._intercept = float(targets.mean())
        centered = targets - self._intercept
        gram = standardized.T @ standardized
        gram[np.diag_indices_from(gram)] += self.l2
        self._weights = np.linalg.solve(gram, standardized.T @ centered)
        return self

    @check_matrix("features")
    def predict(self, features: FloatArray) -> FloatArray:
        """Predict targets for ``[n_rows x n_features]`` rows."""
        if self._weights is None or self._mu is None or self._sigma is None:
            raise ConfigurationError("RidgeRegressor is not fitted")
        standardized = (features - self._mu) / self._sigma
        return np.asarray(
            self._intercept + standardized @ self._weights, dtype=float
        )

    def state(self) -> dict[str, Any]:
        """JSON-safe trained state (inverse of :meth:`from_state`)."""
        if self._weights is None or self._mu is None or self._sigma is None:
            raise ConfigurationError("RidgeRegressor is not fitted")
        return {
            "kind": self.kind,
            "l2": self.l2,
            "mu": self._mu.tolist(),
            "sigma": self._sigma.tolist(),
            "weights": self._weights.tolist(),
            "intercept": self._intercept,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "RidgeRegressor":
        """Restore a fitted model from :meth:`state` output."""
        model = cls(l2=float(state["l2"]))
        model._mu = np.asarray(state["mu"], dtype=float)
        model._sigma = np.asarray(state["sigma"], dtype=float)
        model._weights = np.asarray(state["weights"], dtype=float)
        model._intercept = float(state["intercept"])
        return model


class LogisticClassifier:
    """Full-batch gradient-descent logistic regression (deterministic).

    Args:
        l2: L2 penalty on the standardized weights.
        step_size: Gradient-descent step.
        n_iterations: Fixed iteration count (no early stopping, so the
            trained weights are a pure function of the data).
    """

    kind = "logistic"

    def __init__(
        self, l2: float = 1e-2, step_size: float = 0.5, n_iterations: int = 300
    ):
        if l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {l2}")
        if step_size <= 0:
            raise ConfigurationError("step_size must be positive")
        if n_iterations < 1:
            raise ConfigurationError("n_iterations must be >= 1")
        self.l2 = float(l2)
        self.step_size = float(step_size)
        self.n_iterations = int(n_iterations)
        self._mu: FloatArray | None = None
        self._sigma: FloatArray | None = None
        self._weights: FloatArray | None = None
        self._bias = 0.0

    @property
    def fitted(self) -> bool:
        """Whether the model carries trained weights."""
        return self._weights is not None

    @check_matrix("features")
    def fit(
        self, features: FloatArray, labels: FloatArray
    ) -> "LogisticClassifier":
        """Fit on binary ``labels`` (0/1).

        Args:
            features: ``[n_rows x n_features]`` training matrix.
            labels: ``[n_rows]`` binary labels.

        Returns:
            ``self`` (for chaining).
        """
        labels = np.asarray(labels, dtype=float)
        _check_training_pair(features, labels)
        unique = np.unique(labels)
        if not np.all(np.isin(unique, (0.0, 1.0))):
            raise ConfigurationError(
                f"labels must be binary 0/1, got values {unique}"
            )
        self._mu, self._sigma, standardized = _standardize_columns(features)
        n_rows = standardized.shape[0]
        weights = np.zeros(standardized.shape[1])
        bias = 0.0
        for _ in range(self.n_iterations):
            logits = standardized @ weights + bias
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            residual = probabilities - labels
            gradient = standardized.T @ residual / n_rows + self.l2 * weights
            weights -= self.step_size * gradient
            bias -= self.step_size * float(residual.mean())
        self._weights = weights
        self._bias = bias
        return self

    @check_matrix("features")
    def predict_probability(self, features: FloatArray) -> FloatArray:
        """Per-row probability of the positive class."""
        if self._weights is None or self._mu is None or self._sigma is None:
            raise ConfigurationError("LogisticClassifier is not fitted")
        standardized = (features - self._mu) / self._sigma
        logits = standardized @ self._weights + self._bias
        return np.asarray(1.0 / (1.0 + np.exp(-logits)), dtype=float)

    def state(self) -> dict[str, Any]:
        """JSON-safe trained state (inverse of :meth:`from_state`)."""
        if self._weights is None or self._mu is None or self._sigma is None:
            raise ConfigurationError("LogisticClassifier is not fitted")
        return {
            "kind": self.kind,
            "l2": self.l2,
            "step_size": self.step_size,
            "n_iterations": self.n_iterations,
            "mu": self._mu.tolist(),
            "sigma": self._sigma.tolist(),
            "weights": self._weights.tolist(),
            "bias": self._bias,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "LogisticClassifier":
        """Restore a fitted model from :meth:`state` output."""
        model = cls(
            l2=float(state["l2"]),
            step_size=float(state["step_size"]),
            n_iterations=int(state["n_iterations"]),
        )
        model._mu = np.asarray(state["mu"], dtype=float)
        model._sigma = np.asarray(state["sigma"], dtype=float)
        model._weights = np.asarray(state["weights"], dtype=float)
        model._bias = float(state["bias"])
        return model


class TinyMLP:
    """One-hidden-layer tanh MLP regressor, seeded and deterministic.

    The ``Generator`` that initializes the weights is constructed inside
    :meth:`fit` from ``seed`` — it never lives at module or class level —
    so the model owns its stream and two fits with the same seed and data
    produce bit-identical weights (PL009's RNG-flow discipline).

    Args:
        hidden_units: Hidden-layer width.
        l2: L2 penalty on both weight matrices.
        step_size: Gradient-descent step.
        n_iterations: Fixed iteration count.
        momentum: Classical momentum coefficient.
        seed: Weight-init seed.
    """

    kind = "mlp"

    def __init__(
        self,
        hidden_units: int = 16,
        l2: float = 1e-4,
        step_size: float = 0.05,
        n_iterations: int = 400,
        momentum: float = 0.9,
        seed: int = 0,
    ):
        if hidden_units < 1:
            raise ConfigurationError("hidden_units must be >= 1")
        if l2 < 0:
            raise ConfigurationError(f"l2 must be >= 0, got {l2}")
        if step_size <= 0:
            raise ConfigurationError("step_size must be positive")
        if n_iterations < 1:
            raise ConfigurationError("n_iterations must be >= 1")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        self.hidden_units = int(hidden_units)
        self.l2 = float(l2)
        self.step_size = float(step_size)
        self.n_iterations = int(n_iterations)
        self.momentum = float(momentum)
        self.seed = int(seed)
        self._mu: FloatArray | None = None
        self._sigma: FloatArray | None = None
        self._hidden_weights: FloatArray | None = None
        self._hidden_bias: FloatArray | None = None
        self._out_weights: FloatArray | None = None
        self._out_bias = 0.0
        self._target_mu = 0.0
        self._target_sigma = 1.0

    @property
    def fitted(self) -> bool:
        """Whether the model carries trained weights."""
        return self._hidden_weights is not None

    @check_matrix("features")
    def fit(self, features: FloatArray, targets: FloatArray) -> "TinyMLP":
        """Fit by full-batch gradient descent with momentum.

        Args:
            features: ``[n_rows x n_features]`` training matrix.
            targets: ``[n_rows]`` regression targets.

        Returns:
            ``self`` (for chaining).
        """
        targets = np.asarray(targets, dtype=float)
        _check_training_pair(features, targets)
        self._mu, self._sigma, standardized = _standardize_columns(features)
        self._target_mu = float(targets.mean())
        self._target_sigma = max(float(targets.std()), _SIGMA_FLOOR)
        scaled_targets = (targets - self._target_mu) / self._target_sigma

        n_rows, n_features = standardized.shape
        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(n_features)
        hidden_w = rng.normal(0.0, scale, size=(n_features, self.hidden_units))
        hidden_b = np.zeros(self.hidden_units)
        out_w = rng.normal(
            0.0, 1.0 / np.sqrt(self.hidden_units), size=self.hidden_units
        )
        out_b = 0.0
        velocity = [
            np.zeros_like(hidden_w),
            np.zeros_like(hidden_b),
            np.zeros_like(out_w),
            0.0,
        ]
        for _ in range(self.n_iterations):
            hidden = np.tanh(standardized @ hidden_w + hidden_b)
            prediction = hidden @ out_w + out_b
            residual = prediction - scaled_targets
            grad_out_w = hidden.T @ residual / n_rows + self.l2 * out_w
            grad_out_b = float(residual.mean())
            back = np.outer(residual, out_w) * (1.0 - hidden * hidden)
            grad_hidden_w = (
                standardized.T @ back / n_rows + self.l2 * hidden_w
            )
            grad_hidden_b = back.mean(axis=0)
            velocity[0] = self.momentum * velocity[0] - self.step_size * grad_hidden_w
            velocity[1] = self.momentum * velocity[1] - self.step_size * grad_hidden_b
            velocity[2] = self.momentum * velocity[2] - self.step_size * grad_out_w
            velocity[3] = self.momentum * velocity[3] - self.step_size * grad_out_b
            hidden_w = hidden_w + velocity[0]
            hidden_b = hidden_b + velocity[1]
            out_w = out_w + velocity[2]
            out_b = out_b + velocity[3]
        self._hidden_weights = hidden_w
        self._hidden_bias = hidden_b
        self._out_weights = out_w
        self._out_bias = float(out_b)
        return self

    @check_matrix("features")
    def predict(self, features: FloatArray) -> FloatArray:
        """Predict targets for ``[n_rows x n_features]`` rows."""
        if (
            self._hidden_weights is None
            or self._mu is None
            or self._sigma is None
            or self._hidden_bias is None
            or self._out_weights is None
        ):
            raise ConfigurationError("TinyMLP is not fitted")
        standardized = (features - self._mu) / self._sigma
        hidden = np.tanh(standardized @ self._hidden_weights + self._hidden_bias)
        scaled = hidden @ self._out_weights + self._out_bias
        return np.asarray(
            self._target_mu + self._target_sigma * scaled, dtype=float
        )

    def state(self) -> dict[str, Any]:
        """JSON-safe trained state (inverse of :meth:`from_state`)."""
        if (
            self._hidden_weights is None
            or self._mu is None
            or self._sigma is None
            or self._hidden_bias is None
            or self._out_weights is None
        ):
            raise ConfigurationError("TinyMLP is not fitted")
        return {
            "kind": self.kind,
            "hidden_units": self.hidden_units,
            "l2": self.l2,
            "step_size": self.step_size,
            "n_iterations": self.n_iterations,
            "momentum": self.momentum,
            "seed": self.seed,
            "mu": self._mu.tolist(),
            "sigma": self._sigma.tolist(),
            "hidden_weights": self._hidden_weights.tolist(),
            "hidden_bias": self._hidden_bias.tolist(),
            "out_weights": self._out_weights.tolist(),
            "out_bias": self._out_bias,
            "target_mu": self._target_mu,
            "target_sigma": self._target_sigma,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "TinyMLP":
        """Restore a fitted model from :meth:`state` output."""
        model = cls(
            hidden_units=int(state["hidden_units"]),
            l2=float(state["l2"]),
            step_size=float(state["step_size"]),
            n_iterations=int(state["n_iterations"]),
            momentum=float(state["momentum"]),
            seed=int(state["seed"]),
        )
        model._mu = np.asarray(state["mu"], dtype=float)
        model._sigma = np.asarray(state["sigma"], dtype=float)
        model._hidden_weights = np.asarray(state["hidden_weights"], dtype=float)
        model._hidden_bias = np.asarray(state["hidden_bias"], dtype=float)
        model._out_weights = np.asarray(state["out_weights"], dtype=float)
        model._out_bias = float(state["out_bias"])
        model._target_mu = float(state["target_mu"])
        model._target_sigma = float(state["target_sigma"])
        return model
