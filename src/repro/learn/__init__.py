"""Learned estimator track: features, tiny numpy models, training, serving.

A second estimator *family* alongside the classical phase-difference + DWT
chain (PulseFi / ComplexBeat direction, see PAPERS.md).  The track is
deliberately dependency-free: features come from the repo's own batched
DSP kernels, the models are from-scratch numpy (ridge regression for rate,
logistic regression for apnea, a tiny MLP), and every stage is seeded so a
trained artifact is byte-reproducible.

Layout:

* :mod:`repro.learn.features` — deterministic per-window feature vectors
  from calibrated subcarrier matrices;
* :mod:`repro.learn.models` — the from-scratch estimators;
* :mod:`repro.learn.persist` — canonical-JSON model bundles;
* :mod:`repro.learn.train` — corpus generation (simulator or recorded
  ``.cst`` stores) and the training entry point;
* :mod:`repro.learn.estimator` — the :class:`LearnedEstimator` rung served
  by :class:`repro.service.MonitorSupervisor` and the eval harness.
"""

from .estimator import LearnedEstimator
from .features import FEATURE_NAMES, FeatureConfig, matrix_features, window_features
from .models import LogisticClassifier, RidgeRegressor, TinyMLP
from .persist import (
    MODEL_SCHEMA_VERSION,
    LearnedBundle,
    dump_bundle,
    load_bundle,
    read_bundle,
    save_bundle,
)
from .train import (
    FeatureDataset,
    TrainingConfig,
    corpus_from_store,
    generate_corpus,
    train,
    train_from_store,
)

__all__ = [
    "FEATURE_NAMES",
    "FeatureConfig",
    "matrix_features",
    "window_features",
    "RidgeRegressor",
    "LogisticClassifier",
    "TinyMLP",
    "MODEL_SCHEMA_VERSION",
    "LearnedBundle",
    "dump_bundle",
    "load_bundle",
    "save_bundle",
    "read_bundle",
    "FeatureDataset",
    "TrainingConfig",
    "generate_corpus",
    "corpus_from_store",
    "train",
    "train_from_store",
    "LearnedEstimator",
]
