"""Trace containers and dataset generation utilities."""

from .dataset import DatasetEntry, TraceDataset, generate_dataset
from .trace import CSITrace

__all__ = ["CSITrace", "DatasetEntry", "TraceDataset", "generate_dataset"]
