"""Trace containers, quality assessment, and dataset generation utilities."""

from .dataset import DatasetEntry, TraceDataset, generate_dataset
from .quality import TraceQualityReport, assess_timestamps, assess_trace
from .trace import CSITrace

__all__ = [
    "CSITrace",
    "DatasetEntry",
    "TraceDataset",
    "TraceQualityReport",
    "assess_timestamps",
    "assess_trace",
    "generate_dataset",
]
