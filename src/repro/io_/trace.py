"""CSI trace container and on-disk format.

A :class:`CSITrace` is the interchange object of the whole library: the RF
simulator produces one, the PhaseBeat pipeline consumes one, and traces can
round-trip through ``.npz`` files so experiments are repeatable without
re-simulating.  The layout mirrors what the Intel 5300 CSI tool delivers:
complex CSI indexed ``[packet, rx_antenna, subcarrier]`` plus packet
timestamps.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from pathlib import Path
from typing import Any
import json

import numpy as np

from ..contracts import ComplexArray, FloatArray, IntArray
from ..errors import DataGapError, DegradedInputError, TraceFormatError
from .quality import TraceQualityReport, assess_trace

__all__ = ["CSITrace"]

_FORMAT_VERSION = 1

# Every format version this loader can still read.  A bumped writer must
# extend this tuple (or migrate) rather than silently re-using a number.
_SUPPORTED_VERSIONS = (_FORMAT_VERSION,)


@dataclass
class CSITrace:
    """A captured (or simulated) CSI stream.

    Attributes:
        csi: Complex CSI, shape ``(n_packets, n_rx, n_subcarriers)``.
        timestamps_s: Packet capture times, shape ``(n_packets,)``,
            monotonically non-decreasing.
        sample_rate_hz: Nominal packet rate (the paper injects at 400 Hz).
        subcarrier_indices: The m_i index of each reported subcarrier.
        meta: Free-form JSON-serializable metadata — scenario name, ground
            truth rates, seeds.  Ground-truth keys used by the evaluation
            harness: ``breathing_rates_bpm`` (list) and ``heart_rates_bpm``.
        strict: Construction-time flag (not a stored field).  When True
            (default) timestamps must be finite and non-decreasing, matching
            what a healthy capture delivers.  The impairment injector passes
            False so traces carrying clock glitches (backward jumps, NaN
            stamps) can exist as test vectors; such traces are exactly what
            :meth:`validate` and the streaming quality gates are for.
    """

    csi: ComplexArray
    timestamps_s: FloatArray
    sample_rate_hz: float
    subcarrier_indices: IntArray
    meta: dict[str, Any] = field(default_factory=dict)
    strict: InitVar[bool] = True

    def __post_init__(self, strict: bool = True) -> None:
        self.csi = np.asarray(self.csi)
        self.timestamps_s = np.asarray(self.timestamps_s, dtype=float)
        self.subcarrier_indices = np.asarray(self.subcarrier_indices, dtype=int)
        if self.csi.ndim != 3:
            raise TraceFormatError(
                f"CSI must be (packets, antennas, subcarriers), got {self.csi.shape}"
            )
        if not np.iscomplexobj(self.csi):
            raise TraceFormatError("CSI must be complex-valued")
        if not np.all(np.isfinite(self.csi)):
            raise TraceFormatError(
                "CSI contains non-finite values (NaN/inf); a real capture "
                "never produces these — reject the packet source instead"
            )
        if self.timestamps_s.shape != (self.csi.shape[0],):
            raise TraceFormatError(
                f"timestamps shape {self.timestamps_s.shape} does not match "
                f"{self.csi.shape[0]} packets"
            )
        if strict:
            if not np.all(np.isfinite(self.timestamps_s)):
                raise TraceFormatError("timestamps contain non-finite values")
            if self.csi.shape[0] > 1 and np.any(np.diff(self.timestamps_s) < 0):
                raise TraceFormatError("timestamps must be non-decreasing")
        if self.subcarrier_indices.shape != (self.csi.shape[2],):
            raise TraceFormatError(
                f"{self.subcarrier_indices.size} subcarrier indices for "
                f"{self.csi.shape[2]} subcarriers"
            )
        if self.sample_rate_hz <= 0:
            raise TraceFormatError(
                f"sample rate must be positive, got {self.sample_rate_hz}"
            )

    @property
    def n_packets(self) -> int:
        """Number of captured packets."""
        return int(self.csi.shape[0])

    @property
    def n_rx(self) -> int:
        """Number of receive antennas."""
        return int(self.csi.shape[1])

    @property
    def n_subcarriers(self) -> int:
        """Number of reported subcarriers (30 for the Intel 5300)."""
        return int(self.csi.shape[2])

    @property
    def duration_s(self) -> float:
        """Capture duration in seconds."""
        if self.n_packets < 2:
            return 0.0
        return float(self.timestamps_s[-1] - self.timestamps_s[0])

    def quality_report(self, *, uniform_tol: float = 0.25) -> TraceQualityReport:
        """Timing-health summary (loss, gaps, rate, monotonicity).

        See :func:`repro.io_.quality.assess_trace`; ``uniform_tol`` is the
        interval deviation (fraction of the nominal packet interval) above
        which the stream no longer counts as uniformly sampled.
        """
        return assess_trace(self, uniform_tol=uniform_tol)

    def validate(
        self,
        *,
        max_loss_fraction: float = 0.5,
        max_gap_s: float | None = None,
        require_monotonic: bool = True,
    ) -> TraceQualityReport:
        """Gate the trace on timing quality; return the report when it passes.

        Args:
            max_loss_fraction: Maximum tolerable packet-loss fraction
                (effective vs nominal rate) before the trace is rejected.
            max_gap_s: Largest tolerable inter-packet gap; ``None`` accepts
                any gap length.
            require_monotonic: Reject traces with backward or non-finite
                timestamps (clock glitches / corrupted capture logs).

        Returns:
            The :class:`~repro.io_.quality.TraceQualityReport`.

        Raises:
            DataGapError: A gap exceeds ``max_gap_s`` (and the trace is
                otherwise healthy enough for the gap to be the headline).
            DegradedInputError: Loss or timestamp-integrity checks failed.
        """
        report = self.quality_report()
        reasons = report.issues(
            max_loss_fraction=max_loss_fraction, max_gap_s=max_gap_s
        )
        if not require_monotonic:
            reasons = [
                r
                for r in reasons
                if r not in ("non-monotonic-timestamps", "non-finite-timestamps")
            ]
        if reasons == ["data-gap"]:
            raise DataGapError(
                report.max_gap_s, max_gap_s, at_s=report.max_gap_at_s
            )
        if reasons:
            raise DegradedInputError(reasons, report=report)
        return report

    def amplitudes(self) -> FloatArray:
        """|CSI| per packet/antenna/subcarrier (the baseline method's input)."""
        return np.abs(self.csi)

    def phases(self) -> FloatArray:
        """Raw measured phase ∠CSI in radians (wrapped to (−π, π])."""
        return np.angle(self.csi)

    def slice_packets(self, start: int, stop: int) -> "CSITrace":
        """A sub-trace covering packets ``[start, stop)`` (metadata shared)."""
        if not 0 <= start < stop <= self.n_packets:
            raise TraceFormatError(
                f"invalid packet slice [{start}, {stop}) of {self.n_packets}"
            )
        # strict=False: the parent trace already passed (or deliberately
        # bypassed) construction checks; slicing must not re-reject an
        # impaired trace that exists as a test vector.
        return CSITrace(
            csi=self.csi[start:stop],
            timestamps_s=self.timestamps_s[start:stop],
            sample_rate_hz=self.sample_rate_hz,
            subcarrier_indices=self.subcarrier_indices,
            meta=dict(self.meta),
            strict=False,
        )

    def save(self, path: str | Path) -> Path:
        """Write the trace to an ``.npz`` file; returns the resolved path."""
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        np.savez_compressed(
            path,
            format_version=np.int64(_FORMAT_VERSION),
            csi=self.csi,
            timestamps_s=self.timestamps_s,
            sample_rate_hz=np.float64(self.sample_rate_hz),
            subcarrier_indices=self.subcarrier_indices,
            meta_json=np.bytes_(json.dumps(self.meta).encode()),
        )
        return path

    @classmethod
    def load(cls, path: str | Path, *, strict: bool = True) -> "CSITrace":
        """Load a trace previously written by :meth:`save`.

        Args:
            path: The ``.npz`` file.
            strict: Enforce construction-time timestamp checks; pass False
                to load saved impaired test vectors (see the class docs).
        """
        path = Path(path)
        try:
            with np.load(path) as data:
                raw_version = data["format_version"]
                try:
                    version = int(raw_version)
                except (TypeError, ValueError) as exc:
                    raise TraceFormatError(
                        f"{path} has an unreadable trace format version "
                        f"{raw_version!r} (supported: "
                        f"{', '.join(str(v) for v in _SUPPORTED_VERSIONS)})"
                    ) from exc
                if version not in _SUPPORTED_VERSIONS:
                    raise TraceFormatError(
                        f"unsupported trace format version {version} "
                        f"(supported: "
                        f"{', '.join(str(v) for v in _SUPPORTED_VERSIONS)})"
                    )
                meta = json.loads(bytes(data["meta_json"]).decode())
                return cls(
                    csi=data["csi"],
                    timestamps_s=data["timestamps_s"],
                    sample_rate_hz=float(data["sample_rate_hz"]),
                    subcarrier_indices=data["subcarrier_indices"],
                    meta=meta,
                    strict=strict,
                )
        except KeyError as exc:
            raise TraceFormatError(f"{path} is missing trace field {exc}") from exc
