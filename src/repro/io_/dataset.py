"""Labelled trace datasets: generate, store, and reload experiment corpora.

The paper's evaluation ran four subjects over three months; the analogue
here is a reproducible corpus of simulated captures.  A dataset is a
directory of ``.npz`` traces plus an ``index.json`` listing each trace's
file, scenario, seed, and ground truth — enough to rerun any experiment
without re-simulating, or to share a corpus between machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from ..errors import TraceFormatError
from ..rf.receiver import capture_trace
from ..rf.scene import Scenario
from .trace import CSITrace

__all__ = ["DatasetEntry", "TraceDataset", "generate_dataset"]

_INDEX_NAME = "index.json"
_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DatasetEntry:
    """One trace of a dataset.

    Attributes:
        filename: Trace file name inside the dataset directory.
        scenario: Scenario label.
        seed: The capture seed.
        breathing_rates_bpm: Ground-truth breathing rates.
        heart_rates_bpm: Ground-truth heart rates (``None`` entries allowed).
        duration_s: Capture length.
        sample_rate_hz: Packet rate.
    """

    filename: str
    scenario: str
    seed: int
    breathing_rates_bpm: tuple[float, ...]
    heart_rates_bpm: tuple[float | None, ...]
    duration_s: float
    sample_rate_hz: float


class TraceDataset:
    """A directory of labelled CSI traces with a JSON index.

    Args:
        root: Dataset directory (created on first write).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._entries: list[DatasetEntry] = []
        index = self.root / _INDEX_NAME
        if index.exists():
            self._load_index()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DatasetEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> tuple[DatasetEntry, ...]:
        """All index entries, in insertion order."""
        return tuple(self._entries)

    def add_trace(self, trace: CSITrace, *, name: str | None = None) -> DatasetEntry:
        """Store one trace and append it to the index.

        Args:
            trace: The capture; ground truth is read from its metadata.
            name: File stem; defaults to ``trace_<n>``.

        Returns:
            The new index entry.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        stem = name if name is not None else f"trace_{len(self._entries):04d}"
        path = trace.save(self.root / f"{stem}.npz")
        entry = DatasetEntry(
            filename=path.name,
            scenario=str(trace.meta.get("scenario", "unknown")),
            seed=int(trace.meta.get("seed", -1)),
            breathing_rates_bpm=tuple(
                float(v) for v in trace.meta.get("breathing_rates_bpm", [])
            ),
            heart_rates_bpm=tuple(
                None if v is None else float(v)
                for v in trace.meta.get("heart_rates_bpm", [])
            ),
            duration_s=float(trace.duration_s),
            sample_rate_hz=float(trace.sample_rate_hz),
        )
        self._entries.append(entry)
        self._write_index()
        return entry

    def load_trace(self, entry: DatasetEntry | int) -> CSITrace:
        """Load the trace behind an entry (or an index position)."""
        if isinstance(entry, int):
            entry = self._entries[entry]
        return CSITrace.load(self.root / entry.filename)

    def filter(self, predicate: Callable[[DatasetEntry], bool]) -> list[DatasetEntry]:
        """Entries satisfying ``predicate`` (e.g. by scenario name)."""
        return [e for e in self._entries if predicate(e)]

    def _write_index(self) -> None:
        payload = {
            "format_version": _FORMAT_VERSION,
            "entries": [
                {
                    "filename": e.filename,
                    "scenario": e.scenario,
                    "seed": e.seed,
                    "breathing_rates_bpm": list(e.breathing_rates_bpm),
                    "heart_rates_bpm": list(e.heart_rates_bpm),
                    "duration_s": e.duration_s,
                    "sample_rate_hz": e.sample_rate_hz,
                }
                for e in self._entries
            ],
        }
        (self.root / _INDEX_NAME).write_text(json.dumps(payload, indent=2))

    def _load_index(self) -> None:
        try:
            payload = json.loads((self.root / _INDEX_NAME).read_text())
            version = payload["format_version"]
            if version != _FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported dataset index version {version}"
                )
            self._entries = [
                DatasetEntry(
                    filename=item["filename"],
                    scenario=item["scenario"],
                    seed=int(item["seed"]),
                    breathing_rates_bpm=tuple(item["breathing_rates_bpm"]),
                    heart_rates_bpm=tuple(
                        None if v is None else float(v)
                        for v in item["heart_rates_bpm"]
                    ),
                    duration_s=float(item["duration_s"]),
                    sample_rate_hz=float(item["sample_rate_hz"]),
                )
                for item in payload["entries"]
            ]
        except (KeyError, json.JSONDecodeError) as exc:
            raise TraceFormatError(
                f"malformed dataset index in {self.root}: {exc}"
            ) from exc


def generate_dataset(
    root: str | Path,
    scenario_factory: Callable[[int, np.random.Generator], Scenario],
    n_traces: int,
    *,
    duration_s: float = 30.0,
    sample_rate_hz: float = 400.0,
    base_seed: int = 0,
) -> TraceDataset:
    """Simulate and store a labelled corpus.

    Args:
        root: Output directory.
        scenario_factory: Maps ``(index, rng)`` to a scenario; the factory
            controls subjects, clutter, and geometry per trace.
        n_traces: Corpus size.
        duration_s: Capture length per trace.
        sample_rate_hz: Packet rate.
        base_seed: Trace k uses seed ``base_seed + k``.

    Returns:
        The populated :class:`TraceDataset`.
    """
    dataset = TraceDataset(root)
    for k in range(n_traces):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        scenario = scenario_factory(k, rng)
        trace = capture_trace(
            scenario,
            duration_s=duration_s,
            sample_rate_hz=sample_rate_hz,
            seed=seed,
        )
        dataset.add_trace(trace)
    return dataset
