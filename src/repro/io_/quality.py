"""Trace quality assessment: how damaged is a captured CSI stream?

Real frame-capture deployments never deliver the clean 400 pkt/s stream the
paper evaluates on: frames drop (CSMA backoff, interference bursts), NICs
reset mid-capture, and timestamp counters jitter, drift, or glitch backwards.
:func:`assess_trace` condenses a trace's timing health into one
:class:`TraceQualityReport` that the pipeline, the streaming monitor, and the
robustness benchmark all gate on, so "is this input good enough?" has a
single answer everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

import numpy as np

from ..contracts import FloatArray

if TYPE_CHECKING:
    from .trace import CSITrace

__all__ = ["TraceQualityReport", "assess_trace", "assess_timestamps"]


@dataclass(frozen=True)
class TraceQualityReport:
    """Timing/quality summary of a CSI stream.

    Attributes:
        n_packets: Packets in the stream.
        duration_s: Span of the (finite, sorted) timestamps.
        nominal_rate_hz: The rate the capture *claims* (``sample_rate_hz``).
        effective_rate_hz: ``(n_packets - 1) / duration`` — what actually
            arrived.
        loss_fraction: ``1 − effective/nominal``, clipped to ``[0, 1]``; the
            fraction of expected packets that never arrived.
        max_gap_s: Largest interval between consecutive packets.
        max_gap_at_s: Timestamp where that largest gap begins.
        n_backward_steps: Timestamp pairs that go backwards (clock glitch).
        n_nonfinite_timestamps: NaN/inf timestamps (corrupted capture log).
        is_monotonic: No backward steps and no non-finite timestamps.
        is_uniform: Intervals stay within ``uniform_tol`` of the nominal
            packet interval — blind decimation is safe only when this holds.
    """

    n_packets: int
    duration_s: float
    nominal_rate_hz: float
    effective_rate_hz: float
    loss_fraction: float
    max_gap_s: float
    max_gap_at_s: float
    n_backward_steps: int
    n_nonfinite_timestamps: int
    is_monotonic: bool
    is_uniform: bool

    def issues(
        self,
        *,
        max_loss_fraction: float = 0.5,
        max_gap_s: float | None = None,
    ) -> list[str]:
        """Machine-readable list of violated checks (empty when healthy)."""
        found = []
        if self.n_nonfinite_timestamps:
            found.append("non-finite-timestamps")
        if self.n_backward_steps:
            found.append("non-monotonic-timestamps")
        if self.loss_fraction > max_loss_fraction:
            found.append("loss-fraction")
        if max_gap_s is not None and self.max_gap_s > max_gap_s:
            found.append("data-gap")
        return found

    def summary(self) -> str:
        """One-line human rendering for logs and service event details."""
        return (
            f"{self.n_packets} pkts over {self.duration_s:.1f}s "
            f"(effective {self.effective_rate_hz:.1f}/"
            f"{self.nominal_rate_hz:.0f} Hz, "
            f"loss {self.loss_fraction:.0%}, "
            f"max gap {self.max_gap_s * 1e3:.0f} ms)"
        )


def assess_timestamps(
    timestamps_s: FloatArray,
    nominal_rate_hz: float,
    *,
    uniform_tol: float = 0.25,
) -> TraceQualityReport:
    """Assess a raw timestamp vector against its nominal packet rate.

    Args:
        timestamps_s: Packet capture times (any order, NaN tolerated).
        nominal_rate_hz: The rate the stream claims to have been captured at.
        uniform_tol: Maximum deviation of any interval from the nominal
            interval, as a fraction of that interval, for the stream to
            count as uniform.

    Returns:
        The :class:`TraceQualityReport`.
    """
    t = np.asarray(timestamps_s, dtype=float).ravel()
    finite = np.isfinite(t)
    n_nonfinite = int((~finite).sum())
    t_ok = t[finite]
    n = int(t.size)

    diffs = np.diff(t_ok) if t_ok.size >= 2 else np.empty(0)
    n_backward = int((diffs < 0).sum())
    # Gap/rate statistics are defined over the sorted finite times so a
    # backward glitch does not masquerade as a negative "gap".
    t_sorted = np.sort(t_ok)
    gaps = np.diff(t_sorted)
    duration = float(t_sorted[-1] - t_sorted[0]) if t_sorted.size >= 2 else 0.0
    if gaps.size:
        k = int(np.argmax(gaps))
        max_gap = float(gaps[k])
        max_gap_at = float(t_sorted[k])
    else:
        max_gap = 0.0
        max_gap_at = 0.0
    effective = (t_sorted.size - 1) / duration if duration > 0 else 0.0
    loss = float(np.clip(1.0 - effective / nominal_rate_hz, 0.0, 1.0))

    interval = 1.0 / nominal_rate_hz
    uniform = (
        n_nonfinite == 0
        and n_backward == 0
        and gaps.size > 0
        and float(np.abs(gaps - interval).max()) <= uniform_tol * interval
    )
    return TraceQualityReport(
        n_packets=n,
        duration_s=duration,
        nominal_rate_hz=float(nominal_rate_hz),
        effective_rate_hz=float(effective),
        loss_fraction=loss,
        max_gap_s=max_gap,
        max_gap_at_s=max_gap_at,
        n_backward_steps=n_backward,
        n_nonfinite_timestamps=n_nonfinite,
        is_monotonic=(n_backward == 0 and n_nonfinite == 0),
        is_uniform=bool(uniform),
    )


def assess_trace(trace: "CSITrace", *, uniform_tol: float = 0.25) -> TraceQualityReport:
    """Assess a :class:`~repro.io_.trace.CSITrace` (see :func:`assess_timestamps`)."""
    return assess_timestamps(
        trace.timestamps_s, trace.sample_rate_hz, uniform_tol=uniform_tol
    )
