"""Extensions beyond the PhaseBeat paper.

* :mod:`repro.extensions.tensor` / :mod:`repro.extensions.tensorbeat` —
  the authors' follow-up direction (TensorBeat, paper ref. [23]):
  multi-person breathing via Hankel-tensor CP decomposition.
* :mod:`repro.extensions.csi_ratio` — the FarSense-style complex CSI
  ratio: the same error cancellation as the phase difference, plus
  null-point robustness from the complex-plane principal axis.
"""

from .csi_ratio import CsiRatioConfig, CsiRatioEstimator, csi_ratio_series
from .tensor import CPDecomposition, cp_als, khatri_rao, unfold
from .tensorbeat import TensorBeatConfig, TensorBeatEstimator, hankel_tensor

__all__ = [
    "CPDecomposition",
    "CsiRatioConfig",
    "CsiRatioEstimator",
    "csi_ratio_series",
    "TensorBeatConfig",
    "TensorBeatEstimator",
    "cp_als",
    "hankel_tensor",
    "khatri_rao",
    "unfold",
]
