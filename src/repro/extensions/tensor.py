"""Canonical polyadic (CP) tensor decomposition, from scratch.

The numerical engine behind the TensorBeat extension: alternating least
squares (ALS) on a 3-way tensor, with the Khatri–Rao product and mode
unfoldings implemented directly in numpy.  Kept separate from the
application so it can be tested against exact synthetic tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError, EstimationError

__all__ = ["CPDecomposition", "cp_als", "khatri_rao", "unfold", "cp_reconstruct"]


def khatri_rao(a: FloatArray, b: FloatArray) -> FloatArray:
    """Column-wise Kronecker (Khatri–Rao) product.

    Args:
        a: ``(I, R)`` matrix.
        b: ``(J, R)`` matrix.

    Returns:
        ``(I·J, R)`` matrix whose column r is ``kron(a[:, r], b[:, r])``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ConfigurationError(
            f"khatri_rao needs matching column counts, got {a.shape} and {b.shape}"
        )
    i, r = a.shape
    j, _ = b.shape
    return (a[:, None, :] * b[None, :, :]).reshape(i * j, r)


def unfold(tensor: FloatArray, mode: int) -> FloatArray:
    """Mode-``mode`` unfolding of a 3-way tensor (Kolda–Bader convention)."""
    tensor = np.asarray(tensor)
    if tensor.ndim != 3:
        raise ConfigurationError(f"expected a 3-way tensor, got {tensor.ndim}-way")
    if mode not in (0, 1, 2):
        raise ConfigurationError(f"mode must be 0, 1 or 2, got {mode}")
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


@dataclass
class CPDecomposition:
    """Result of a rank-R CP decomposition of a 3-way tensor.

    Attributes:
        factors: ``(A, B, C)`` factor matrices of shapes (I, R), (J, R),
            (K, R), each with unit-norm columns.
        weights: Per-component scale λ_r absorbed from the factors.
        fit: Final relative fit ``1 − ‖T − T̂‖ / ‖T‖`` in [0, 1].
        n_iterations: ALS iterations performed.
    """

    factors: tuple[FloatArray, FloatArray, FloatArray]
    weights: FloatArray
    fit: float
    n_iterations: int

    @property
    def rank(self) -> int:
        """The decomposition rank R."""
        return int(self.weights.size)


def cp_reconstruct(decomposition: CPDecomposition) -> FloatArray:
    """Rebuild the tensor from its CP factors."""
    a, b, c = decomposition.factors
    weighted = a * decomposition.weights[None, :]
    full = unfold_inverse(weighted @ khatri_rao(b, c).T, (a.shape[0], b.shape[0], c.shape[0]))
    return full


def unfold_inverse(matrix: FloatArray, shape: tuple[int, int, int]) -> FloatArray:
    """Inverse of :func:`unfold` for mode 0."""
    return matrix.reshape(shape[0], shape[1], shape[2])


def cp_als(
    tensor: FloatArray,
    rank: int,
    *,
    n_iterations: int = 200,
    tolerance: float = 1e-8,
    seed: int = 0,
    ridge: float = 1e-6,
) -> CPDecomposition:
    """Rank-``rank`` CP decomposition by alternating least squares.

    Args:
        tensor: 3-way array (real or complex).
        rank: Number of rank-1 components R.
        n_iterations: Maximum ALS sweeps.
        tolerance: Stop when the fit improves less than this per sweep.
        seed: Random initialization seed.
        ridge: Tikhonov regularization added to the normal equations —
            stabilizes sweeps when components are nearly collinear (the
            case for close breathing rates).

    Returns:
        A :class:`CPDecomposition`.

    Raises:
        EstimationError: If ALS produced a degenerate (NaN) factorization.
    """
    tensor = np.asarray(tensor)
    if tensor.ndim != 3:
        raise ConfigurationError(f"expected a 3-way tensor, got {tensor.ndim}-way")
    if rank < 1:
        raise ConfigurationError(f"rank must be >= 1, got {rank}")
    if min(tensor.shape) < 1:
        raise ConfigurationError("tensor has an empty mode")

    rng = np.random.default_rng(seed)
    is_complex = np.iscomplexobj(tensor)

    def init(n: int) -> FloatArray:
        real = rng.standard_normal((n, rank))
        if is_complex:
            return real + 1j * rng.standard_normal((n, rank))
        return real

    factors = [init(tensor.shape[m]) for m in range(3)]
    unfoldings = [unfold(tensor, m) for m in range(3)]
    norm_total = np.linalg.norm(tensor)
    if norm_total == 0:
        raise ConfigurationError("cannot decompose the zero tensor")

    fit_previous = -np.inf
    eye = np.eye(rank)
    iterations_done = 0
    best_factors = [f.copy() for f in factors]
    best_fit = -np.inf
    for iteration in range(n_iterations):
        iterations_done = iteration + 1
        for mode in range(3):
            others = [factors[m] for m in range(3) if m != mode]
            # Khatri–Rao of the other two factors, consistent with the
            # moveaxis-based unfolding (first remaining mode varies slowest).
            kr = khatri_rao(others[0], others[1])
            gram = (others[0].conj().T @ others[0]) * (
                others[1].conj().T @ others[1]
            )
            rhs = unfoldings[mode] @ kr.conj()
            # Scale-aware Tikhonov term: near-collinear components (close
            # breathing rates) make the Gram ill-conditioned, and CP's
            # degenerate "swamps" (two huge cancelling components) need a
            # real damping floor to stay out of.
            damping = ridge * max(float(np.trace(gram).real) / rank, 1.0)
            regularized = gram + damping * eye
            # Complex LS: F · conj(G) = rhs, so Fᵀ solves conj(G)ᵀ x = rhsᵀ,
            # and conj(G)ᵀ = G because the Gram is Hermitian.
            solution, *_ = np.linalg.lstsq(regularized, rhs.T, rcond=None)
            factors[mode] = solution.T
            # Renormalize all but the last-updated mode each sweep so no
            # single factor's scale can explode (swamp prevention).
            if mode != 2:
                norms = np.linalg.norm(factors[mode], axis=0)
                norms[norms == 0] = 1.0
                factors[mode] = factors[mode] / norms[None, :]
        # Fit via the mode-0 reconstruction.
        approx = (factors[0] @ khatri_rao(factors[1], factors[2]).T)
        fit = 1.0 - np.linalg.norm(unfoldings[0] - approx) / norm_total
        if fit > best_fit:
            best_fit = fit
            best_factors = [f.copy() for f in factors]
        if abs(fit - fit_previous) < tolerance:
            break
        if fit < best_fit - 0.5:
            # Diverging into a degenerate configuration — keep the best
            # factors seen and stop.
            break
        fit_previous = fit
    factors = best_factors

    # Normalize columns; absorb scales into weights.
    weights = np.ones(rank)
    for mode in range(3):
        norms = np.linalg.norm(factors[mode], axis=0)
        norms[norms == 0] = 1.0
        factors[mode] = factors[mode] / norms[None, :]
        weights = weights * norms
    if not np.all(np.isfinite(weights)):
        raise EstimationError("CP-ALS diverged (non-finite weights)")

    order = np.argsort(weights)[::-1]
    factors = [f[:, order] for f in factors]
    weights = weights[order]
    approx = (factors[0] * weights[None, :]) @ khatri_rao(
        factors[1], factors[2]
    ).T
    fit = float(1.0 - np.linalg.norm(unfoldings[0] - approx) / norm_total)
    return CPDecomposition(
        factors=(factors[0], factors[1], factors[2]),
        weights=weights,
        fit=fit,
        n_iterations=iterations_done,
    )
