"""CSI-ratio sensing (the FarSense-style successor to phase difference).

PhaseBeat uses only the *phase* of the cross-antenna quotient.  Later work
(FarSense, MobiCom '19-era) showed the full **complex ratio**

```
r_i(t) = CSI_i^(a)(t) / CSI_i^(b)(t)
```

cancels the same per-packet hardware terms (they multiply both chains
identically) while keeping two observables — the real and imaginary parts
of the breathing-driven arc the ratio traces in the complex plane.  When
the chest modulation sits at a *phase* null (the rate-doubling failure mode
of pure phase methods), the motion still shows up in the magnitude
direction; projecting the complex fluctuation onto its principal component
recovers the breathing waveform at any operating point.

This module implements that estimator on top of the existing calibration
machinery, as a second beyond-the-paper extension and a robustness
comparison point for the ablation suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.breathing import BREATHING_SEARCH_BAND_HZ, PeakBreathingEstimator
from ..dsp.hampel import hampel_filter
from ..dsp.resample import decimate, downsampled_rate
from ..contracts import ComplexArray, FloatArray
from ..errors import ConfigurationError, EstimationError
from ..io_.trace import CSITrace

__all__ = ["CsiRatioConfig", "CsiRatioEstimator", "csi_ratio_series"]


def csi_ratio_series(
    trace: CSITrace,
    antenna_pair: tuple[int, int] = (0, 1),
    *,
    epsilon: float = 1e-9,
) -> ComplexArray:
    """Complex cross-antenna CSI ratio per packet and subcarrier.

    Args:
        trace: The capture.
        antenna_pair: (numerator, denominator) chains.
        epsilon: Denominator regularization — a deep-faded denominator
            sample otherwise explodes the ratio.

    Returns:
        ``(n_packets, n_subcarriers)`` complex ratios.
    """
    a, b = antenna_pair
    if a == b:
        raise ConfigurationError("antenna pair must name two distinct chains")
    for idx in (a, b):
        if not 0 <= idx < trace.n_rx:
            raise ConfigurationError(
                f"antenna index {idx} out of range for {trace.n_rx} chains"
            )
    numerator = trace.csi[:, a, :]
    denominator = trace.csi[:, b, :]
    return numerator * np.conj(denominator) / (
        np.abs(denominator) ** 2 + epsilon
    )


def _principal_component_series(ratio: ComplexArray) -> FloatArray:
    """Project a complex series' fluctuation on its principal axis.

    Stacks the (mean-removed) real and imaginary parts as a 2-D point
    cloud and returns the coordinates along the dominant eigenvector of
    its covariance — the direction the breathing arc actually moves in,
    whatever the operating point.
    """
    centered = ratio - ratio.mean()
    points = np.column_stack([centered.real, centered.imag])
    covariance = points.T @ points / max(points.shape[0] - 1, 1)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    principal = eigenvectors[:, int(np.argmax(eigenvalues))]
    return points @ principal


@dataclass(frozen=True)
class CsiRatioConfig:
    """CSI-ratio estimator parameters.

    Attributes:
        antenna_pair: Chains forming the ratio.
        trend_window_s: Hampel detrend window (as in the paper pipeline).
        noise_window_s: Hampel denoise window.
        target_rate_hz: Processing rate after decimation.
        band_hz: Breathing search band.
    """

    antenna_pair: tuple[int, int] = (0, 1)
    trend_window_s: float = 5.0
    noise_window_s: float = 0.125
    target_rate_hz: float = 20.0
    band_hz: tuple[float, float] = BREATHING_SEARCH_BAND_HZ

    def __post_init__(self) -> None:
        if self.trend_window_s <= self.noise_window_s:
            raise ConfigurationError(
                "trend window must exceed the noise window"
            )
        if self.target_rate_hz <= 0:
            raise ConfigurationError("target rate must be positive")


class CsiRatioEstimator:
    """Breathing estimation from the complex CSI ratio's principal axis."""

    def __init__(self, config: CsiRatioConfig | None = None):
        self.config = config if config is not None else CsiRatioConfig()

    def breathing_series(self, trace: CSITrace) -> tuple[FloatArray, float]:
        """The calibrated principal-axis series and its sample rate.

        Per subcarrier: form the complex ratio, decimate to the processing
        rate, project the fluctuation on its principal axis, then Hampel
        detrend/denoise.  The subcarrier whose principal axis explains the
        most variance (strongest coherent arc) is selected.
        """
        cfg = self.config
        ratio = csi_ratio_series(trace, cfg.antenna_pair)
        factor = max(1, int(round(trace.sample_rate_hz / cfg.target_rate_hz)))
        rate = downsampled_rate(trace.sample_rate_hz, factor)

        best_series = None
        best_energy = -np.inf
        noise_window = max(3, int(round(cfg.noise_window_s * trace.sample_rate_hz)))
        trend_window = max(5, int(round(cfg.trend_window_s * trace.sample_rate_hz)))
        for column in range(ratio.shape[1]):
            # Smooth the complex components before decimation.
            real = hampel_filter(ratio[:, column].real, noise_window, 0.01)
            imag = hampel_filter(ratio[:, column].imag, noise_window, 0.01)
            smooth = real + 1j * imag
            trend = hampel_filter(smooth.real, trend_window, 0.01) + 1j * (
                hampel_filter(smooth.imag, trend_window, 0.01)
            )
            detrended = decimate(
                np.column_stack([(smooth - trend).real, (smooth - trend).imag]),
                factor,
                axis=0,
            )
            complex_series = detrended[:, 0] + 1j * detrended[:, 1]
            projected = _principal_component_series(complex_series)
            energy = float(np.var(projected))
            if energy > best_energy:
                best_energy = energy
                best_series = projected
        if best_series is None:
            raise EstimationError("no usable subcarrier ratio series")
        return best_series, rate

    def estimate_breathing_bpm(self, trace: CSITrace) -> float:
        """Single-person breathing rate from the CSI ratio."""
        series, rate = self.breathing_series(trace)
        return PeakBreathingEstimator().estimate_bpm(series, rate)
