"""TensorBeat-style multi-person breathing estimation (paper ref. [23]).

The PhaseBeat authors' follow-up, *TensorBeat* (ACM TIST), replaces
root-MUSIC with tensor decomposition: Hankelize each calibrated subcarrier
series, stack the Hankel matrices into a 3-way tensor (window × shift ×
subcarrier), and CP-decompose.  For data that is a sum of K complex
exponentials, the rank-K CP factors are Vandermonde — each temporal factor
is itself a single exponential whose frequency is one person's breathing
rate.  Reading one frequency per component sidesteps the peak-pairing
problem FFT methods have.

This implementation follows that pipeline with the analytic signal (so K
real sinusoids need rank K, not 2K) and estimates each factor's frequency
from its phase slope, which is exact for a clean exponential factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import hilbert

from ..contracts import FloatArray
from ..errors import ConfigurationError, EstimationError
from .tensor import cp_als

__all__ = ["TensorBeatConfig", "TensorBeatEstimator", "hankel_tensor"]


def hankel_tensor(
    matrix: FloatArray, window: int
) -> FloatArray:
    """Stack per-column Hankel matrices into a 3-way tensor.

    Args:
        matrix: ``(n_samples, n_channels)`` complex series (one column per
            subcarrier).
        window: Hankel window length L.

    Returns:
        ``(L, n_samples − L + 1, n_channels)`` tensor.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"expected (samples × channels), got {matrix.shape}"
        )
    n, channels = matrix.shape
    if not 2 <= window < n:
        raise ConfigurationError(
            f"window must be in [2, {n - 1}], got {window}"
        )
    shifts = n - window + 1
    out = np.empty((window, shifts, channels), dtype=matrix.dtype)
    for c in range(channels):
        view = np.lib.stride_tricks.sliding_window_view(matrix[:, c], window)
        out[:, :, c] = view.T
    return out


@dataclass(frozen=True)
class TensorBeatConfig:
    """TensorBeat estimator parameters.

    Attributes:
        band_hz: Admissible breathing band.
        hankel_window: Hankel window L; ``None`` → half the series (a
            balanced Hankel matrix maximizes the rank-resolving aperture).
        decimation: Post-analytic decimation (same aperture-stretching trick
            as the root-MUSIC estimator).
        extra_rank: Components fitted beyond ``n_persons``.  Zero by
            default: the Hankel tensor of K exponentials has CP rank
            exactly K, and surplus components make ALS split tones into
            mixtures instead of isolating them.  Raise only for data with
            strong harmonics that need somewhere to go.
        n_iterations: CP-ALS sweep limit.
        n_restarts: Random ALS restarts; the factorization with the best
            fit wins (ALS is non-convex and close breathing rates create
            shallow local minima).
    """

    band_hz: tuple[float, float] = (0.1, 0.7)
    hankel_window: int | None = None
    decimation: int = 10
    extra_rank: int = 0
    n_iterations: int = 300
    n_restarts: int = 3

    def __post_init__(self) -> None:
        lo, hi = self.band_hz
        if lo < 0 or hi <= lo:
            raise ConfigurationError(f"band must satisfy 0 <= lo < hi, got {self.band_hz}")
        if self.decimation < 1:
            raise ConfigurationError("decimation must be >= 1")
        if self.extra_rank < 0:
            raise ConfigurationError("extra_rank must be >= 0")
        if self.n_restarts < 1:
            raise ConfigurationError("n_restarts must be >= 1")


class TensorBeatEstimator:
    """Multi-person breathing rates via Hankel-tensor CP decomposition."""

    def __init__(self, config: TensorBeatConfig | None = None):
        self.config = config if config is not None else TensorBeatConfig()

    def estimate_bpm(
        self,
        series: FloatArray,
        sample_rate_hz: float,
        n_persons: int,
        *,
        seed: int = 0,
    ) -> FloatArray:
        """Breathing rates (bpm, ascending) for ``n_persons`` subjects.

        Args:
            series: Calibrated subcarrier matrix ``(n_samples, n_channels)``
                or a single series.
            sample_rate_hz: Its sample rate.
            n_persons: Number of rates to recover.
            seed: CP-ALS initialization seed.

        Raises:
            EstimationError: If no in-band components were found.
        """
        cfg = self.config
        if n_persons < 1:
            raise ConfigurationError(f"n_persons must be >= 1, got {n_persons}")
        series = np.asarray(series, dtype=float)
        if series.ndim == 1:
            series = series[:, None]

        data = series - series.mean(axis=0, keepdims=True)
        analytic = hilbert(data, axis=0)[:: cfg.decimation]
        rate = sample_rate_hz / cfg.decimation
        n = analytic.shape[0]
        window = cfg.hankel_window or max(n_persons + cfg.extra_rank + 2, n // 2)
        if window >= n:
            raise ConfigurationError(
                f"series too short ({n} samples) for Hankel window {window}"
            )

        tensor = hankel_tensor(analytic, window)
        rank = n_persons + cfg.extra_rank
        decomposition = None
        for restart in range(cfg.n_restarts):
            candidate = cp_als(
                tensor,
                rank,
                n_iterations=cfg.n_iterations,
                seed=seed + 1000 * restart,
            )
            if decomposition is None or candidate.fit > decomposition.fit:
                decomposition = candidate

        candidates = []
        for r in range(decomposition.rank):
            # Both temporal modes (window and shift) of a Vandermonde
            # component carry the same exponential; averaging their phase
            # slopes halves the frequency variance.
            f_window = self._factor_frequency(
                decomposition.factors[0][:, r], rate
            )
            f_shift = self._factor_frequency(
                decomposition.factors[1][:, r], rate
            )
            frequency = 0.5 * (f_window + f_shift)
            if cfg.band_hz[0] <= frequency <= cfg.band_hz[1]:
                candidates.append((decomposition.weights[r], frequency))
        if not candidates:
            raise EstimationError(
                "no CP components with in-band frequencies; the tensor rank "
                "may be too low or the band too narrow"
            )
        candidates.sort(reverse=True)
        chosen = self._dedup([f for _, f in candidates], n_persons)
        return 60.0 * np.sort(np.asarray(chosen[:n_persons]))

    @staticmethod
    def _factor_frequency(factor: FloatArray, sample_rate_hz: float) -> float:
        """Frequency of a (near-)exponential factor.

        Shift-invariance estimate (single-component ESPRIT): a Vandermonde
        factor satisfies ``v[1:] = z · v[:-1]``, so the least-squares ratio
        ``z = v[:-1]ᴴ v[1:] / ‖v[:-1]‖²`` recovers the pole exactly for a
        clean exponential and degrades gracefully under noise — unlike a
        polyfit of the unwrapped phase, which inherits unwrap glitches at
        low-magnitude samples.
        """
        head = factor[:-1]
        denominator = np.vdot(head, head)
        if denominator == 0:
            return 0.0
        z = np.vdot(head, factor[1:]) / denominator
        return abs(float(np.angle(z))) * sample_rate_hz / (2.0 * np.pi)

    @staticmethod
    def _dedup(
        frequencies: list[float], n_wanted: int, tolerance_hz: float = 0.012
    ) -> list[float]:
        """Merge near-duplicate component frequencies (split components)."""
        kept: list[float] = []
        for f in frequencies:
            if all(abs(f - g) > tolerance_hz for g in kept):
                kept.append(f)
            if len(kept) == n_wanted:
                break
        # Backfill with duplicates if dedup was too aggressive.
        for f in frequencies:
            if len(kept) == n_wanted:
                break
            if f not in kept:
                kept.append(f)
        return kept
