"""Antenna gain models.

The paper uses omnidirectional antennas everywhere except for heart-rate
experiments, where a *directional* TX antenna boosts the power reflected off
the subject (Section III-D1, IV-A).  A gain pattern here is simply amplitude
gain as a function of departure direction; the channel model multiplies each
ray's amplitude by the TX gain toward its first hop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..contracts import FloatArray
from .geometry import PointLike, as_point, unit_vector

__all__ = ["Antenna", "OmniAntenna", "DirectionalAntenna"]


class Antenna:
    """Interface: amplitude gain toward a unit direction vector."""

    def gain(self, direction: FloatArray) -> float:
        """Amplitude (not power) gain toward ``direction`` (unit vector)."""
        raise NotImplementedError

    def gain_towards(self, src: PointLike, dst: PointLike) -> float:
        """Convenience: gain from a source point toward a target point."""
        return self.gain(unit_vector(src, dst))


@dataclass(frozen=True)
class OmniAntenna(Antenna):
    """Isotropic radiator with a flat amplitude gain."""

    amplitude_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.amplitude_gain <= 0:
            raise ConfigurationError(
                f"gain must be positive, got {self.amplitude_gain}"
            )

    def gain(self, direction: FloatArray) -> float:
        """Flat gain, independent of direction."""
        return self.amplitude_gain


@dataclass(frozen=True)
class DirectionalAntenna(Antenna):
    """Cosine-power beam: high gain on boresight, floor elsewhere.

    A standard parametric pattern ``g(θ) = G·max(cos θ, 0)^p`` (plus a small
    back-lobe floor) — enough to reproduce the paper's effect, where aiming
    the TX at the subject multiplies the chest-reflected ray's amplitude
    while leaving off-axis clutter at the floor gain.

    Attributes:
        boresight: Point the antenna is aimed at (gain is computed against
            the unit vector toward this point from the antenna).
        position: Antenna location, needed to resolve the boresight vector.
        peak_amplitude_gain: Amplitude gain on boresight (≈ 2.8 ≈ 9 dBi
            power gain, typical of a small panel antenna).
        exponent: Beam sharpness p; larger is narrower.
        floor: Off-axis/back-lobe amplitude gain.  A realistic panel still
            illuminates the rest of the room appreciably; too small a floor
            starves the static multipath field and drives the chest ray's
            modulation index into the deep-comb regime where heart-rate
            sidebands swamp the carrier.
    """

    position: tuple[float, float, float]
    boresight: tuple[float, float, float]
    peak_amplitude_gain: float = 2.8
    exponent: float = 2.0
    floor: float = 0.7

    def __post_init__(self) -> None:
        if self.peak_amplitude_gain <= 0 or self.floor <= 0:
            raise ConfigurationError("gains must be positive")
        if self.floor > self.peak_amplitude_gain:
            raise ConfigurationError("floor gain cannot exceed peak gain")
        if self.exponent <= 0:
            raise ConfigurationError(
                f"beam exponent must be positive, got {self.exponent}"
            )
        # Validate eagerly so a bad aim fails at construction.
        as_point(self.position)
        as_point(self.boresight)

    def gain(self, direction: FloatArray) -> float:
        """Cosine-lobe gain toward ``direction``, floored behind the array."""
        axis = unit_vector(self.position, self.boresight)
        cos_theta = float(np.dot(np.asarray(direction, dtype=float), axis))
        if cos_theta <= 0.0:
            return self.floor
        beam = self.peak_amplitude_gain * cos_theta**self.exponent
        return max(beam, self.floor)
