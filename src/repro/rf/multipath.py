"""Multipath ray construction for the Eq. 2 channel model.

The channel frequency response of subcarrier i is the paper's Eq. 2:

    CSI_i = Σ_k r_k · exp(-j 2π f_i τ_k)

Each *ray* is one term: the LOS path, reflections off static clutter
(furniture, walls), and one dynamic reflection off each person's chest whose
path length is modulated by breathing and heartbeat.  Rays carry per-antenna
delays (the receive elements are 2.68 cm apart, so each sees a slightly
different path length — that geometric difference is what makes the
cross-antenna phase difference sensitive to path-length changes).

Amplitudes follow a free-space-like 1/d law with a reflection loss for
scattered paths and a per-traversal wall loss for through-wall scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..physio.person import Person
from .antennas import Antenna, OmniAntenna
from .constants import SPEED_OF_LIGHT
from ..contracts import FloatArray
from .geometry import PointLike, as_point, distance, reflection_path_length

__all__ = ["Wall", "StaticRay", "DynamicRay", "build_static_rays", "build_person_ray"]

#: Amplitude of the direct path at 1 m separation with unit antenna gains.
#: An arbitrary reference — every derived quantity (phase noise vs. signal)
#: only depends on amplitude *ratios* and the noise floor.
REFERENCE_AMPLITUDE = 1.0

#: Amplitude reflection coefficient of a human torso at 5 GHz (mostly water,
#: near-specular at chest scale).
BODY_REFLECTION_COEFF = 0.55


@dataclass(frozen=True)
class Wall:
    """An infinite wall plane with a per-traversal transmission loss.

    Attributes:
        point: Any point on the wall plane.
        normal: Plane normal (need not be unit length).
        loss_db: One-way transmission loss in dB (power), typical interior
            drywall ≈ 3–5 dB, brick ≈ 6–10 dB at 5 GHz.
    """

    point: tuple[float, float, float]
    normal: tuple[float, float, float]
    loss_db: float = 6.0

    def __post_init__(self) -> None:
        as_point(self.point)
        n = np.asarray(self.normal, dtype=float)
        if np.linalg.norm(n) == 0:
            raise ConfigurationError("wall normal must be a nonzero vector")
        if self.loss_db < 0:
            raise ConfigurationError(f"wall loss must be >= 0 dB, got {self.loss_db}")

    def crossings(self, a: PointLike, b: PointLike) -> int:
        """1 if the segment a→b crosses the wall plane, else 0."""
        n = np.asarray(self.normal, dtype=float)
        p = as_point(self.point)
        side_a = float(np.dot(as_point(a) - p, n))
        side_b = float(np.dot(as_point(b) - p, n))
        return int(side_a * side_b < 0)

    def amplitude_factor(self, a: PointLike, b: PointLike) -> float:
        """Amplitude attenuation of the segment a→b through this wall."""
        n_crossings = self.crossings(a, b)
        return 10.0 ** (-self.loss_db * n_crossings / 20.0)


def _path_amplitude(path_length: float) -> float:
    """Free-space-like amplitude 1/d law, floored at 0.2 m to avoid blowups."""
    return REFERENCE_AMPLITUDE / max(path_length, 0.2)


def _wall_factor(walls: tuple[Wall, ...], a, b) -> float:
    factor = 1.0
    for wall in walls:
        factor *= wall.amplitude_factor(a, b)
    return factor


@dataclass(frozen=True)
class StaticRay:
    """A time-invariant multipath component (plus motion sensitivities).

    Attributes:
        amplitudes: Per-RX-antenna amplitude r_k, shape ``(n_rx,)``.
        delays_s: Per-RX-antenna propagation delay τ_k, shape ``(n_rx,)``.
        motion_amp_sens: How strongly large body motion modulates this ray's
            amplitude (a walking body shadows and unshadows paths); drawn
            per-ray in [-1, 1].
        motion_phase_sens: How strongly body motion perturbs the ray's
            effective path length, in path-lengths per meter of body travel.
    """

    amplitudes: FloatArray
    delays_s: FloatArray
    motion_amp_sens: float = 0.0
    motion_phase_sens: float = 0.0

    def __post_init__(self) -> None:
        if self.amplitudes.shape != self.delays_s.shape:
            raise ConfigurationError(
                "amplitudes and delays must have the same per-antenna shape"
            )


@dataclass(frozen=True)
class DynamicRay:
    """The chest-reflected ray of one person.

    The instantaneous delay of antenna a is
    ``delays_s[a] + 2 · displacement(t) / c`` — chest motion changes both the
    TX→chest and chest→RX segments by approximately the displacement each.

    Attributes:
        person: The subject this ray reflects off.
        amplitudes: Per-antenna amplitude, shape ``(n_rx,)``.
        delays_s: Per-antenna mean delay (at zero displacement).
    """

    person: Person
    amplitudes: FloatArray
    delays_s: FloatArray

    def __post_init__(self) -> None:
        if self.amplitudes.shape != self.delays_s.shape:
            raise ConfigurationError(
                "amplitudes and delays must have the same per-antenna shape"
            )


def build_static_rays(
    tx_position: PointLike,
    rx_positions: FloatArray,
    *,
    tx_antenna: Antenna | None = None,
    walls: tuple[Wall, ...] = (),
    n_clutter: int = 6,
    clutter_region: tuple[tuple[float, float], tuple[float, float]] = ((0.0, 5.0), (0.0, 9.0)),
    include_los: bool = True,
    seed: int = 0,
) -> list[StaticRay]:
    """Construct the static part of the channel: LOS plus clutter rays.

    Args:
        tx_position: Transmit antenna location.
        rx_positions: ``(n_rx, 3)`` receive element positions.
        tx_antenna: TX gain pattern (omni by default).
        walls: Walls attenuating any segment that crosses them.
        n_clutter: Number of random scatterers (tables, PCs, walls of the
            room) — the paper's lab is "crowded with tables and PCs".
        clutter_region: ((x_min, x_max), (y_min, y_max)) area scatterers are
            drawn from.
        include_los: Whether a direct path exists (a heavy wall may still
            attenuate rather than remove it).
        seed: Clutter placement seed.

    Returns:
        List of :class:`StaticRay`.
    """
    tx = as_point(tx_position)
    rx_positions = np.atleast_2d(np.asarray(rx_positions, dtype=float))
    antenna = tx_antenna if tx_antenna is not None else OmniAntenna()
    rng = np.random.default_rng(seed)
    rays: list[StaticRay] = []

    if include_los:
        amplitudes = []
        delays = []
        for rx in rx_positions:
            d = distance(tx, rx)
            gain = antenna.gain_towards(tx, rx)
            amplitudes.append(_path_amplitude(d) * gain * _wall_factor(walls, tx, rx))
            delays.append(d / SPEED_OF_LIGHT)
        rays.append(
            StaticRay(
                amplitudes=np.asarray(amplitudes),
                delays_s=np.asarray(delays),
                motion_amp_sens=float(rng.uniform(-0.3, 0.3)),
                motion_phase_sens=float(rng.uniform(-0.2, 0.2)),
            )
        )

    (x_lo, x_hi), (y_lo, y_hi) = clutter_region
    for _ in range(n_clutter):
        scatterer = np.array(
            [rng.uniform(x_lo, x_hi), rng.uniform(y_lo, y_hi), rng.uniform(0.3, 2.2)]
        )
        reflection = float(rng.uniform(0.15, 0.5))
        amplitudes = []
        delays = []
        for rx in rx_positions:
            path = reflection_path_length(tx, scatterer, rx)
            gain = antenna.gain_towards(tx, scatterer)
            wall_att = _wall_factor(walls, tx, scatterer) * _wall_factor(
                walls, scatterer, rx
            )
            amplitudes.append(_path_amplitude(path) * reflection * gain * wall_att)
            delays.append(path / SPEED_OF_LIGHT)
        rays.append(
            StaticRay(
                amplitudes=np.asarray(amplitudes),
                delays_s=np.asarray(delays),
                motion_amp_sens=float(rng.uniform(-1.0, 1.0)),
                motion_phase_sens=float(rng.uniform(-1.0, 1.0)),
            )
        )
    return rays


def build_person_ray(
    person: Person,
    tx_position: PointLike,
    rx_positions: FloatArray,
    *,
    tx_antenna: Antenna | None = None,
    walls: tuple[Wall, ...] = (),
) -> DynamicRay:
    """Construct the breathing-modulated reflection ray for one person."""
    tx = as_point(tx_position)
    rx_positions = np.atleast_2d(np.asarray(rx_positions, dtype=float))
    antenna = tx_antenna if tx_antenna is not None else OmniAntenna()
    chest = as_point(person.position)

    amplitudes = []
    delays = []
    gain = antenna.gain_towards(tx, chest)
    for rx in rx_positions:
        path = reflection_path_length(tx, chest, rx)
        wall_att = _wall_factor(walls, tx, chest) * _wall_factor(walls, chest, rx)
        amplitudes.append(
            _path_amplitude(path)
            * BODY_REFLECTION_COEFF
            * person.reflectivity
            * gain
            * wall_att
        )
        delays.append(path / SPEED_OF_LIGHT)
    return DynamicRay(
        person=person,
        amplitudes=np.asarray(amplitudes),
        delays_s=np.asarray(delays),
    )
