"""Time-varying channel frequency response (paper Eq. 2).

Evaluates ``CSI_i(t) = Σ_k r_k(t) · exp(-j 2π f_i τ_k(t))`` over a packet
time grid, for every RX antenna and reported subcarrier.  Three kinds of
terms contribute:

* static rays — constant delay and amplitude while the scene is stationary;
* dynamic (chest) rays — delay modulated by ``2·displacement(t)/c``;
* motion perturbation — during walking / standing-up segments the body
  perturbs *every* path, modelled as per-ray amplitude and path-length
  modulation proportional to the scripted body displacement.

The output is *clean* CSI; :class:`repro.rf.hardware.HardwareErrorModel`
turns it into what a real NIC would report.
"""

from __future__ import annotations

import numpy as np

from ..contracts import BoolArray, ComplexArray, FloatArray
from ..errors import ConfigurationError
from .constants import SPEED_OF_LIGHT
from .multipath import DynamicRay, StaticRay

__all__ = ["simulate_clean_csi"]

#: Body travel (m) at which motion perturbation reaches full modulation
#: depth; walking sway of ±0.2 m then swings ray amplitudes by ±50%.
_MOTION_AMPLITUDE_SCALE = 0.4


def simulate_clean_csi(
    static_rays: list[StaticRay],
    dynamic_rays: list[tuple[DynamicRay, FloatArray]],
    times_s: FloatArray,
    frequencies_hz: FloatArray,
    *,
    n_rx: int,
    body_displacement_m: FloatArray | None = None,
    person_present: BoolArray | None = None,
) -> ComplexArray:
    """Evaluate Eq. 2 over time for all antennas and subcarriers.

    Args:
        static_rays: Static multipath components.
        dynamic_rays: Pairs of (chest ray, chest displacement array in
            meters aligned with ``times_s``).  Displacement shifts the path
            length by twice its value (both path segments change).
        times_s: Packet times, shape ``(n_packets,)``.
        frequencies_hz: Subcarrier center frequencies f_i.
        n_rx: Number of receive antennas (validated against ray shapes).
        body_displacement_m: Optional large-scale body displacement per
            packet; nonzero values switch on motion perturbation of the
            static rays and add to every dynamic ray's path.
        person_present: Optional boolean mask per packet; where False the
            dynamic rays vanish (empty-room segments of Fig. 3).

    Returns:
        Complex CSI of shape ``(n_packets, n_rx, n_subcarriers)``.
    """
    times_s = np.asarray(times_s, dtype=float)
    frequencies_hz = np.asarray(frequencies_hz, dtype=float)
    if times_s.ndim != 1 or frequencies_hz.ndim != 1:
        raise ConfigurationError("times and frequencies must be 1-D arrays")
    n_t = times_s.size
    n_sub = frequencies_hz.size
    out = np.zeros((n_t, n_rx, n_sub), dtype=complex)

    body = (
        np.zeros(n_t)
        if body_displacement_m is None
        else np.asarray(body_displacement_m, dtype=float)
    )
    if body.shape != times_s.shape:
        raise ConfigurationError(
            f"body displacement shape {body.shape} does not match "
            f"{times_s.shape} packets"
        )
    moving = bool(np.any(body != 0.0))  # phaselint: disable=PL004 -- exact stillness sentinel

    for ray in static_rays:
        if ray.amplitudes.shape != (n_rx,):
            raise ConfigurationError(
                f"static ray has {ray.amplitudes.shape} amplitudes for "
                f"{n_rx} antennas"
            )
        sensitive = (
            ray.motion_amp_sens != 0.0  # phaselint: disable=PL004 -- zero default
            or ray.motion_phase_sens != 0.0  # phaselint: disable=PL004 -- zero default
        )
        if moving and sensitive:
            modulation = np.clip(
                1.0 + ray.motion_amp_sens * body / _MOTION_AMPLITUDE_SCALE,
                0.05,
                None,
            )
            extra_delay = ray.motion_phase_sens * body / SPEED_OF_LIGHT
            for a in range(n_rx):
                tau = ray.delays_s[a] + extra_delay
                phase = -2.0 * np.pi * np.outer(tau, frequencies_hz)
                out[:, a, :] += (
                    (ray.amplitudes[a] * modulation)[:, None] * np.exp(1j * phase)
                )
        else:
            for a in range(n_rx):
                phase = -2.0 * np.pi * ray.delays_s[a] * frequencies_hz
                out[:, a, :] += ray.amplitudes[a] * np.exp(1j * phase)[None, :]

    presence = (
        np.ones(n_t, dtype=bool)
        if person_present is None
        else np.asarray(person_present, dtype=bool)
    )
    if presence.shape != times_s.shape:
        raise ConfigurationError(
            f"presence mask shape {presence.shape} does not match packets"
        )

    for ray, displacement in dynamic_rays:
        displacement = np.asarray(displacement, dtype=float)
        if displacement.shape != times_s.shape:
            raise ConfigurationError(
                f"displacement shape {displacement.shape} does not match packets"
            )
        if ray.amplitudes.shape != (n_rx,):
            raise ConfigurationError(
                f"dynamic ray has {ray.amplitudes.shape} amplitudes for "
                f"{n_rx} antennas"
            )
        # Chest motion and scripted body travel both lengthen the two-segment
        # reflection path by ~2× the displacement.
        path_delta = 2.0 * (displacement + body) / SPEED_OF_LIGHT
        gate = presence.astype(float)
        for a in range(n_rx):
            tau = ray.delays_s[a] + path_delta
            phase = -2.0 * np.pi * np.outer(tau, frequencies_hz)
            out[:, a, :] += (ray.amplitudes[a] * gate)[:, None] * np.exp(1j * phase)
    return out
