"""Deployment diagnostics: sensitivity maps and null-point prediction.

The chest-reflected ray modulates the cross-antenna phase difference with a
gain that depends on where the subject sits relative to the link — a
subject on a Fresnel null produces a breathing fundamental that nearly
vanishes (the source of the pipeline's rare rate-doubling failures).  These
tools predict that sensitivity *before* deployment:

* :func:`phase_difference_sensitivity` — numerically perturbs the chest
  position along the reflection normal and measures how far the phase
  difference moves per millimetre of displacement, per subcarrier;
* :func:`sensitivity_map` — evaluates the median sensitivity over a grid of
  candidate subject positions, yielding the placement map an installer
  would want.

Both work on the same ray/channel machinery as the simulator, so the map
is exactly the signal model the pipeline will face.
"""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError
from ..physio.person import Person
from .channel import simulate_clean_csi
from .constants import N_RX_ANTENNAS, subcarrier_frequencies
from .multipath import build_person_ray
from .scene import Scenario

__all__ = ["phase_difference_sensitivity", "sensitivity_map"]


def phase_difference_sensitivity(
    scenario: Scenario,
    position: tuple[float, float, float] | None = None,
    *,
    displacement_m: float = 1.0e-3,
    antenna_pair: tuple[int, int] = (0, 1),
) -> FloatArray:
    """Phase-difference response (rad) to a 1 mm chest displacement.

    Evaluates the scenario's static channel with the subject's chest at its
    nominal position and displaced by ``displacement_m``, and returns the
    per-subcarrier absolute change of the cross-antenna phase difference —
    the small-signal gain the breathing signal is multiplied by.

    Args:
        scenario: Deployment (its clutter and antennas are used as-is).
        position: Chest position to probe; defaults to the scenario's first
            person.
        displacement_m: Probe displacement (1 mm ≈ small-signal regime).
        antenna_pair: RX chains whose phase difference is probed.

    Returns:
        ``(n_subcarriers,)`` array of |Δ phase| in radians per probe step.
    """
    if displacement_m <= 0:
        raise ConfigurationError("displacement must be positive")
    if position is None:
        if not scenario.persons:
            raise ConfigurationError(
                "scenario has no persons; pass a probe position"
            )
        position = scenario.persons[0].position

    probe = Person(position=position, heartbeat=None)
    static_rays, _ = scenario.build_rays()
    ray = build_person_ray(
        probe,
        scenario.tx_position,
        scenario.rx_positions(),
        tx_antenna=scenario.tx_antenna(),
        walls=scenario.walls,
    )
    frequencies = subcarrier_frequencies(scenario.carrier_hz)
    times = np.zeros(2)
    displacements = np.array([0.0, displacement_m])
    csi = simulate_clean_csi(
        static_rays,
        [(ray, displacements)],
        times,
        frequencies,
        n_rx=N_RX_ANTENNAS,
    )
    a, b = antenna_pair
    diff = np.angle(csi[:, a, :] * np.conj(csi[:, b, :]))
    delta = np.angle(np.exp(1j * (diff[1] - diff[0])))  # wrap-safe
    return np.abs(delta)


def sensitivity_map(
    scenario: Scenario,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    *,
    resolution: int = 15,
    height_m: float = 1.0,
) -> tuple[FloatArray, FloatArray, FloatArray]:
    """Median phase-difference sensitivity over a grid of positions.

    Args:
        scenario: Deployment to map.
        x_range: (min, max) x of the grid.
        y_range: (min, max) y of the grid.
        resolution: Grid points per axis.
        height_m: Chest height used for every probe.

    Returns:
        ``(xs, ys, gain)`` — axis vectors and a ``(resolution, resolution)``
        array (indexed ``[iy, ix]``) of the median per-subcarrier
        sensitivity at each position, in radians per probe step.
    """
    if resolution < 2:
        raise ConfigurationError("resolution must be >= 2")
    xs = np.linspace(*x_range, resolution)
    ys = np.linspace(*y_range, resolution)
    gain = np.empty((resolution, resolution))
    for iy, y in enumerate(ys):
        for ix, x in enumerate(xs):
            sensitivity = phase_difference_sensitivity(
                scenario, (float(x), float(y), height_m)
            )
            gain[iy, ix] = float(np.median(sensitivity))
    return xs, ys, gain
