"""Scene geometry: positions, path lengths, and reflection paths.

All coordinates are meters in a right-handed (x, y, z) frame with z up.  The
only geometric quantities the channel model needs are path *lengths*: direct
TX→RX for the LOS ray, and TX→scatterer→RX for every reflected ray (the
chest of each person, and static clutter).
"""

from __future__ import annotations

import numpy as np

from typing import Sequence, Union

from ..contracts import FloatArray
from ..errors import ConfigurationError

__all__ = [
    "as_point",
    "distance",
    "reflection_path_length",
    "unit_vector",
    "rx_antenna_positions",
]

#: Anything accepted as an (x, y, z) point: a triple, list, or 3-vector.
PointLike = Union[Sequence[float], FloatArray]


def as_point(p: PointLike) -> FloatArray:
    """Coerce an (x, y, z) triple into a float ndarray, validating shape."""
    arr = np.asarray(p, dtype=float)
    if arr.shape != (3,):
        raise ConfigurationError(f"expected an (x, y, z) point, got {p!r}")
    return arr


def distance(a: PointLike, b: PointLike) -> float:
    """Euclidean distance between two points (meters)."""
    return float(np.linalg.norm(as_point(a) - as_point(b)))


def reflection_path_length(
    tx: PointLike, scatterer: PointLike, rx: PointLike
) -> float:
    """TX → scatterer → RX total path length (meters)."""
    return distance(tx, scatterer) + distance(scatterer, rx)


def unit_vector(src: PointLike, dst: PointLike) -> FloatArray:
    """Unit vector pointing from ``src`` toward ``dst``.

    Raises:
        ConfigurationError: If the points coincide (direction undefined).
    """
    delta = as_point(dst) - as_point(src)
    norm = np.linalg.norm(delta)
    if norm == 0.0:  # phaselint: disable=PL004 -- exact zero is the degenerate case
        raise ConfigurationError("direction between coincident points is undefined")
    return delta / norm


def rx_antenna_positions(
    center: PointLike,
    spacing_m: float,
    n_antennas: int,
    axis: PointLike = (1.0, 0.0, 0.0),
) -> FloatArray:
    """Positions of a uniform linear receive array.

    The array is centered on ``center`` with ``spacing_m`` between adjacent
    elements along ``axis``, matching the Intel 5300's 3-element row with
    d = 2.68 cm.

    Returns:
        ``(n_antennas, 3)`` array of element positions.
    """
    center = as_point(center)
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0.0:  # phaselint: disable=PL004 -- exact zero is the degenerate case
        raise ConfigurationError("array axis must be a nonzero vector")
    if spacing_m <= 0:
        raise ConfigurationError(
            f"antenna spacing must be positive, got {spacing_m}"
        )
    if n_antennas < 1:
        raise ConfigurationError(f"need at least one antenna, got {n_antennas}")
    axis = axis / norm
    offsets = (np.arange(n_antennas) - (n_antennas - 1) / 2.0) * spacing_m
    return center[None, :] + offsets[:, None] * axis[None, :]
