"""Physical and Intel-5300 constants for the 5 GHz OFDM CSI model.

The paper's receiver reports CSI on 30 of the 56 populated subcarriers of a
20 MHz 802.11n channel (the standard grouped set of the Intel 5300 CSI
tool), from 3 receive antennas spaced 2.68 cm apart — half a wavelength in
the 5 GHz band they used.
"""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray

__all__ = [
    "SPEED_OF_LIGHT",
    "DEFAULT_CARRIER_HZ",
    "SUBCARRIER_SPACING_HZ",
    "INTEL5300_SUBCARRIER_INDICES",
    "N_REPORTED_SUBCARRIERS",
    "N_RX_ANTENNAS",
    "ANTENNA_SPACING_M",
    "FFT_SIZE",
    "SYMBOL_DURATION_S",
    "GUARD_INTERVAL_S",
    "subcarrier_frequencies",
    "wavelength",
]

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Antenna spacing on the paper's receiver: d = 2.68 cm, stated to be half a
#: wavelength.  That fixes the carrier the reproduction uses:
#: f = c / (2 · 0.0268 m) ≈ 5.593 GHz (upper 5 GHz U-NII band).
ANTENNA_SPACING_M = 2.68e-2

#: Carrier frequency consistent with the λ/2 = 2.68 cm antenna spacing.
DEFAULT_CARRIER_HZ = SPEED_OF_LIGHT / (2.0 * ANTENNA_SPACING_M)

#: 802.11n subcarrier spacing for a 20 MHz channel.
SUBCARRIER_SPACING_HZ = 312_500.0

#: OFDM FFT size for a 20 MHz channel (Eq. 4's N).
FFT_SIZE = 64

#: Useful OFDM symbol duration T_u = 3.2 µs.
SYMBOL_DURATION_S = 3.2e-6

#: Guard interval 0.8 µs; T_s = T_u + GI = 4 µs (Eq. 4's T_s).
GUARD_INTERVAL_S = 0.8e-6

#: The 30 subcarrier indices m_i the Intel 5300 reports for a 20 MHz channel
#: (grouping Ng = 2, per the 802.11n CSI feedback spec used by the CSI tool).
INTEL5300_SUBCARRIER_INDICES = np.array(
    [-28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
     1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28],
    dtype=int,
)

#: Number of subcarriers in each CSI report.
N_REPORTED_SUBCARRIERS = int(INTEL5300_SUBCARRIER_INDICES.size)

#: Receive antennas on the Intel 5300.
N_RX_ANTENNAS = 3


def subcarrier_frequencies(carrier_hz: float = DEFAULT_CARRIER_HZ) -> FloatArray:
    """Absolute center frequency f_i of each reported subcarrier (Hz)."""
    return carrier_hz + INTEL5300_SUBCARRIER_INDICES * SUBCARRIER_SPACING_HZ


def wavelength(frequency_hz: float | FloatArray) -> FloatArray:
    """Wavelength λ = c / f in meters."""
    return SPEED_OF_LIGHT / np.asarray(frequency_hz, dtype=float)
