"""Deployment scenarios: the paper's three experimental setups.

Section IV-A describes (1) a 4.5 × 8.8 m computer laboratory crowded with
tables and PCs, (2) a through-wall setup with the person on the TX side of a
wall, and (3) a 20 m corridor with up to 11 m TX–RX separation.  A
:class:`Scenario` captures the geometry, clutter, wall set, antennas, and
subjects; builder functions produce the three canonical setups with
adjustable distances, which is what the Fig. 15/16 sweeps vary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError
from ..physio.motion import ActivityScript
from ..physio.person import Person
from .antennas import Antenna, DirectionalAntenna, OmniAntenna
from .constants import ANTENNA_SPACING_M, DEFAULT_CARRIER_HZ, N_RX_ANTENNAS
from .geometry import rx_antenna_positions
from .multipath import DynamicRay, StaticRay, Wall, build_person_ray, build_static_rays

__all__ = [
    "Scenario",
    "laboratory_scenario",
    "through_wall_scenario",
    "corridor_scenario",
]


@dataclass
class Scenario:
    """One deployment: geometry, clutter, antennas, walls, and subjects.

    Attributes:
        name: Scenario label (appears in trace metadata and reports).
        tx_position: Transmit antenna location (m).
        rx_center: Center of the 3-element receive array (m).
        persons: Monitored subjects.
        walls: Attenuating walls (empty outside the through-wall setup).
        n_clutter: Number of static scatterers.
        clutter_region: ((x_min, x_max), (y_min, y_max)) area for clutter.
        directional_tx: Aim a directional TX antenna at the first person
            (the paper's heart-rate configuration); omni otherwise.
        include_los: Whether a direct TX→RX path exists.
        carrier_hz: Carrier frequency.
        activity: Optional large-motion script applied to the first person.
        clutter_seed: Placement seed for static scatterers.
        rx_axis: Orientation of the receive array.
    """

    name: str
    tx_position: tuple[float, float, float]
    rx_center: tuple[float, float, float]
    persons: list[Person] = field(default_factory=list)
    walls: tuple[Wall, ...] = ()
    n_clutter: int = 6
    clutter_region: tuple[tuple[float, float], tuple[float, float]] = (
        (0.0, 4.5),
        (0.0, 8.8),
    )
    directional_tx: bool = False
    include_los: bool = True
    carrier_hz: float = DEFAULT_CARRIER_HZ
    activity: ActivityScript | None = None
    clutter_seed: int = 0
    rx_axis: tuple[float, float, float] = (1.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if self.carrier_hz <= 0:
            raise ConfigurationError("carrier frequency must be positive")
        if self.n_clutter < 0:
            raise ConfigurationError("n_clutter must be >= 0")
        if self.directional_tx and not self.persons:
            raise ConfigurationError(
                "a directional TX needs a person to aim at"
            )

    def tx_antenna(self) -> Antenna:
        """The TX gain pattern implied by the configuration."""
        if self.directional_tx:
            return DirectionalAntenna(
                position=self.tx_position,
                boresight=self.persons[0].position,
            )
        return OmniAntenna()

    def rx_positions(self) -> FloatArray:
        """Positions of the 3 receive elements (λ/2 spacing)."""
        return rx_antenna_positions(
            self.rx_center, ANTENNA_SPACING_M, N_RX_ANTENNAS, axis=self.rx_axis
        )

    def build_rays(self) -> tuple[list[StaticRay], list[DynamicRay]]:
        """Construct (static rays, one dynamic ray per person)."""
        rx = self.rx_positions()
        antenna = self.tx_antenna()
        static = build_static_rays(
            self.tx_position,
            rx,
            tx_antenna=antenna,
            walls=self.walls,
            n_clutter=self.n_clutter,
            clutter_region=self.clutter_region,
            include_los=self.include_los,
            seed=self.clutter_seed,
        )
        dynamic = [
            build_person_ray(
                person, self.tx_position, rx, tx_antenna=antenna, walls=self.walls
            )
            for person in self.persons
        ]
        return static, dynamic

    def with_persons(self, persons: list[Person]) -> "Scenario":
        """Copy of the scenario with a different subject list."""
        return replace(self, persons=list(persons))

    @property
    def tx_rx_distance_m(self) -> float:
        """TX–RX separation (the Fig. 15/16 sweep variable)."""
        return float(
            np.linalg.norm(
                np.asarray(self.tx_position) - np.asarray(self.rx_center)
            )
        )


def laboratory_scenario(
    persons: list[Person] | None = None,
    *,
    directional_tx: bool = False,
    clutter_seed: int = 0,
) -> Scenario:
    """The 4.5 × 8.8 m computer laboratory (dense clutter, short range).

    TX and RX sit ~3 m apart with the subject roughly between and beside
    them, mirroring the paper's Fig. 10 left panel.
    """
    if persons is None:
        persons = [Person(position=(2.2, 3.0, 1.0))]
    return Scenario(
        name="laboratory",
        tx_position=(1.0, 1.5, 1.2),
        rx_center=(3.5, 4.0, 1.2),
        persons=persons,
        n_clutter=8,
        clutter_region=((0.0, 4.5), (0.0, 8.8)),
        directional_tx=directional_tx,
        clutter_seed=clutter_seed,
    )


def through_wall_scenario(
    distance_m: float = 4.0,
    persons: list[Person] | None = None,
    *,
    wall_loss_db: float = 7.0,
    clutter_seed: int = 0,
) -> Scenario:
    """Person on the TX side, a wall between TX and RX (paper setup 2).

    The wall is the plane ``y = distance/2`` with the TX (and person) below
    it and the RX above; both the LOS path and the chest reflection cross it
    once, soaking up ``wall_loss_db`` each traversal.

    Args:
        distance_m: TX–RX separation (the Fig. 16 sweep, 2–7 m).
        persons: Subjects; default one person near the TX.
        wall_loss_db: One-way wall transmission loss.
        clutter_seed: Clutter placement seed.
    """
    if distance_m <= 0.5:
        raise ConfigurationError(
            f"through-wall distance must exceed 0.5 m, got {distance_m}"
        )
    if persons is None:
        persons = [Person(position=(2.5, 0.8, 1.0))]
    wall_y = distance_m / 2.0
    return Scenario(
        name="through_wall",
        tx_position=(2.0, 0.0, 1.2),
        rx_center=(2.0, distance_m, 1.2),
        persons=persons,
        walls=(Wall(point=(0.0, wall_y, 0.0), normal=(0.0, 1.0, 0.0), loss_db=wall_loss_db),),
        n_clutter=6,
        clutter_region=((0.0, 4.5), (0.0, max(distance_m, 2.0))),
        clutter_seed=clutter_seed,
    )


def corridor_scenario(
    distance_m: float = 11.0,
    persons: list[Person] | None = None,
    *,
    clutter_seed: int = 0,
) -> Scenario:
    """The 20 m corridor (long range, sparse clutter, paper setup 3).

    Args:
        distance_m: TX–RX separation (the Fig. 15 sweep, 1–11 m).
        persons: Subjects; default one person midway along the corridor.
        clutter_seed: Clutter placement seed.
    """
    if distance_m <= 0.5:
        raise ConfigurationError(
            f"corridor distance must exceed 0.5 m, got {distance_m}"
        )
    if persons is None:
        persons = [Person(position=(1.0, distance_m / 2.0, 1.0))]
    return Scenario(
        name="corridor",
        tx_position=(1.0, 0.0, 1.2),
        rx_center=(1.0, distance_m, 1.2),
        persons=persons,
        n_clutter=4,
        clutter_region=((0.0, 2.0), (0.0, 20.0)),
        clutter_seed=clutter_seed,
    )
