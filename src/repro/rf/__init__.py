"""RF substrate: the simulated commodity-WiFi CSI capture chain.

Implements the paper's channel model (Eq. 2 multipath frequency response),
the Intel-5300 measured-phase error model (Eqs. 3–4), scene geometry for the
three experimental setups, and the packet-rate CSI capture that produces
:class:`~repro.io_.trace.CSITrace` objects.
"""

from .antennas import Antenna, DirectionalAntenna, OmniAntenna
from .channel import simulate_clean_csi
from .constants import (
    ANTENNA_SPACING_M,
    DEFAULT_CARRIER_HZ,
    INTEL5300_SUBCARRIER_INDICES,
    N_REPORTED_SUBCARRIERS,
    N_RX_ANTENNAS,
    SPEED_OF_LIGHT,
    SUBCARRIER_SPACING_HZ,
    subcarrier_frequencies,
    wavelength,
)
from .geometry import distance, reflection_path_length, rx_antenna_positions
from .hardware import HardwareConfig, HardwareErrorModel
from .multipath import (
    DynamicRay,
    StaticRay,
    Wall,
    build_person_ray,
    build_static_rays,
)
from .diagnostics import phase_difference_sensitivity, sensitivity_map
from .impairments import (
    BernoulliLoss,
    ClippedPackets,
    ClockDrift,
    ClockGlitch,
    CorruptedTimestamps,
    DropoutGap,
    GilbertElliottLoss,
    Impairment,
    ImpulsiveCorruption,
    SubcarrierNulls,
    TimestampJitter,
    apply_impairments,
)
from .ofdm import OfdmPhy, OfdmPhyConfig, PhyCsiEstimate
from .receiver import capture_trace
from .scene import (
    Scenario,
    corridor_scenario,
    laboratory_scenario,
    through_wall_scenario,
)

__all__ = [
    "ANTENNA_SPACING_M",
    "Antenna",
    "DEFAULT_CARRIER_HZ",
    "DirectionalAntenna",
    "DynamicRay",
    "HardwareConfig",
    "HardwareErrorModel",
    "INTEL5300_SUBCARRIER_INDICES",
    "N_REPORTED_SUBCARRIERS",
    "N_RX_ANTENNAS",
    "OfdmPhy",
    "OfdmPhyConfig",
    "OmniAntenna",
    "PhyCsiEstimate",
    "SPEED_OF_LIGHT",
    "SUBCARRIER_SPACING_HZ",
    "Scenario",
    "StaticRay",
    "Wall",
    "BernoulliLoss",
    "ClippedPackets",
    "ClockDrift",
    "ClockGlitch",
    "CorruptedTimestamps",
    "DropoutGap",
    "GilbertElliottLoss",
    "Impairment",
    "ImpulsiveCorruption",
    "SubcarrierNulls",
    "TimestampJitter",
    "apply_impairments",
    "build_person_ray",
    "build_static_rays",
    "capture_trace",
    "corridor_scenario",
    "phase_difference_sensitivity",
    "sensitivity_map",
    "distance",
    "laboratory_scenario",
    "reflection_path_length",
    "rx_antenna_positions",
    "simulate_clean_csi",
    "subcarrier_frequencies",
    "through_wall_scenario",
    "wavelength",
]
