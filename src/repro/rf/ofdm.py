"""Symbol-level OFDM PHY: where the Eq. 3 error structure comes from.

The rest of the simulator *injects* the measured-phase error model of paper
Eqs. 3–4 (per-packet slopes from PBD/SFO/CFO) directly onto analytic CSI.
This module closes the loop by building a miniature 802.11-style baseband
PHY and showing those errors *emerge*:

* a packet = short training field (for detection) + a 56-subcarrier long
  training field (for channel estimation), IFFT-modulated with a cyclic
  prefix at 20 Msps;
* the channel applies the same multipath rays the analytic model uses
  (fractional delays via frequency-domain filtering), plus carrier
  frequency offset and a per-packet fractional sampling-time offset (the
  TX and RX converters are unsynchronized);
* the receiver detects the packet boundary by correlation — resolving time
  only to an integer sample — and least-squares estimates the channel from
  the LTF.

The estimated CSI then carries a phase slope proportional to the *residual
timing error* (the paper's λ_p with Δt = true boundary − detected boundary)
and a common rotation from CFO (λ_c), both identical across receive chains
— which is exactly the structure Theorem 1 exploits and
:class:`~repro.rf.hardware.HardwareErrorModel` injects.  A validation test
asserts the equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import ComplexArray
from ..errors import ConfigurationError, EstimationError
from .constants import INTEL5300_SUBCARRIER_INDICES
from .multipath import StaticRay

__all__ = ["OfdmPhyConfig", "OfdmPhy", "PhyCsiEstimate"]

#: FFT size and cyclic-prefix length of a 20 MHz 802.11 symbol.
_N_FFT = 64
_N_CP = 16
#: Baseband sample rate.
_SAMPLE_RATE = 20e6
#: Occupied subcarriers of the HT long training field: ±1…±28.
_USED = np.array(
    [k for k in range(-28, 29) if k != 0],
    dtype=int,
)


def _training_sequence(seed: int = 7) -> np.ndarray:
    """Deterministic BPSK training values on the 56 used subcarriers."""
    rng = np.random.default_rng(seed)
    return rng.choice(np.array([-1.0, 1.0]), size=_USED.size)


@dataclass(frozen=True)
class OfdmPhyConfig:
    """PHY impairment knobs.

    Attributes:
        cfo_hz: Carrier frequency offset between TX and RX oscillators.
        snr_db: Per-sample SNR of the received waveform.
        timing_jitter_samples: Each packet arrives with a uniform random
            fractional delay of up to ± this many samples (asynchronous
            converters); the integer part is what packet detection can
            recover, the residual becomes the per-packet phase slope.
        seed: Noise / jitter realization seed.
    """

    cfo_hz: float = 0.0
    snr_db: float = 30.0
    timing_jitter_samples: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.timing_jitter_samples < 0:
            raise ConfigurationError("timing jitter must be >= 0")


@dataclass(frozen=True)
class PhyCsiEstimate:
    """Output of one PHY-level channel estimation.

    Attributes:
        csi: Estimated channel response per RX antenna on the Intel 5300
            30-subcarrier map, shape ``(n_rx, 30)``.
        detected_start: Detected packet start per antenna (samples).
        true_start: The actual (fractional) packet start in samples.
    """

    csi: ComplexArray
    detected_start: int
    true_start: float

    @property
    def timing_error_samples(self) -> float:
        """Residual boundary error Δt the channel estimate absorbs."""
        return self.true_start - self.detected_start


class OfdmPhy:
    """Minimal OFDM transmitter / channel / receiver chain."""

    def __init__(self, config: OfdmPhyConfig | None = None):
        self.config = config if config is not None else OfdmPhyConfig()
        self._training = _training_sequence()
        self._ltf_time = self._modulate(self._training)
        # Short training field: four repeats of a 16-sample pseudo-noise
        # block — repetition gives the correlator a sharp, known shape.
        rng = np.random.default_rng(11)
        stf_block = (
            rng.normal(size=16) + 1j * rng.normal(size=16)
        ) / np.sqrt(2)
        self._stf_time = np.tile(stf_block, 4)

    # ------------------------------------------------------------------ TX

    def _modulate(self, symbols: np.ndarray) -> np.ndarray:
        """One OFDM symbol (with CP) from per-subcarrier values."""
        spectrum = np.zeros(_N_FFT, dtype=complex)
        spectrum[np.mod(_USED, _N_FFT)] = symbols
        time = np.fft.ifft(spectrum) * np.sqrt(_N_FFT)
        return np.concatenate([time[-_N_CP:], time])

    def build_packet(self) -> ComplexArray:
        """Baseband packet: STF (64 samples) + LTF symbol (80 samples)."""
        return np.concatenate([self._stf_time, self._ltf_time])

    # ------------------------------------------------------------- channel

    def transmit(
        self,
        rays: list[StaticRay],
        *,
        n_rx: int = 3,
        guard: int = 64,
        packet_index: int = 0,
    ) -> tuple[ComplexArray, float]:
        """Propagate one packet through the multipath channel.

        Args:
            rays: Static rays whose per-antenna delays/amplitudes shape the
                channel (delays are used modulo their common bulk delay, so
                the packet stays inside the simulation window).
            n_rx: Number of receive antennas.
            guard: Zero-padding before/after the packet (samples).
            packet_index: Distinguishes noise/jitter realizations.

        Returns:
            ``(waveforms, true_start)`` — received waveform per antenna of
            shape ``(n_rx, n_samples)``, and the true fractional packet
            start in samples.
        """
        cfg = self.config
        packet = self.build_packet()
        n_samples = packet.size + 2 * guard
        rng = np.random.default_rng(cfg.seed + 7919 * packet_index)

        # Per-packet fractional arrival offset (asynchronous converters).
        jitter = rng.uniform(
            -cfg.timing_jitter_samples, cfg.timing_jitter_samples
        )
        true_start = guard + jitter

        padded = np.zeros(n_samples, dtype=complex)
        padded[guard : guard + packet.size] = packet
        spectrum = np.fft.fft(padded)
        freqs = np.fft.fftfreq(n_samples, d=1.0 / _SAMPLE_RATE)

        # Remove the common bulk delay so relative multipath structure is
        # preserved without pushing the packet out of the window.
        bulk = min(float(np.min(ray.delays_s)) for ray in rays)

        out = np.empty((n_rx, n_samples), dtype=complex)
        for antenna in range(n_rx):
            response = np.zeros(n_samples, dtype=complex)
            for ray in rays:
                delay = ray.delays_s[antenna] - bulk + jitter / _SAMPLE_RATE
                response += ray.amplitudes[antenna] * np.exp(
                    -2j * np.pi * freqs * delay
                )
            received = np.fft.ifft(spectrum * response)
            if cfg.cfo_hz != 0.0:  # phaselint: disable=PL004 -- exact-zero 'no CFO' sentinel
                n = np.arange(n_samples)
                received = received * np.exp(
                    2j * np.pi * cfg.cfo_hz * n / _SAMPLE_RATE
                )
            if np.isfinite(cfg.snr_db):
                signal_power = np.mean(np.abs(packet) ** 2) * np.mean(
                    [np.sum(np.abs(r.amplitudes[antenna]) ** 2) for r in rays]
                )
                noise_power = signal_power / 10 ** (cfg.snr_db / 10.0)
                noise = np.sqrt(noise_power / 2) * (
                    rng.standard_normal(n_samples)
                    + 1j * rng.standard_normal(n_samples)
                )
                received = received + noise
            out[antenna] = received
        return out, true_start

    # ------------------------------------------------------------------ RX

    def detect_packet(self, waveform: ComplexArray) -> int:
        """Packet start (integer sample) via STF cross-correlation."""
        correlation = np.abs(
            np.correlate(waveform, self._stf_time, mode="valid")
        )
        return int(np.argmax(correlation))

    def estimate_csi(
        self, waveforms: ComplexArray, true_start: float
    ) -> PhyCsiEstimate:
        """Channel estimation from the LTF of a received packet.

        Detection runs on antenna 0 and the boundary is shared by all
        chains (one sampling clock — the Intel 5300 property Theorem 1
        rests on).

        Raises:
            EstimationError: If the detected boundary leaves no room for
                the LTF inside the waveform.
        """
        waveforms = np.atleast_2d(waveforms)
        start = self.detect_packet(waveforms[0])
        ltf_start = start + self._stf_time.size + _N_CP
        if ltf_start + _N_FFT > waveforms.shape[1]:
            raise EstimationError("detected boundary leaves no room for the LTF")

        csi = np.empty((waveforms.shape[0], _USED.size), dtype=complex)
        for antenna in range(waveforms.shape[0]):
            block = waveforms[antenna, ltf_start : ltf_start + _N_FFT]
            spectrum = np.fft.fft(block) / np.sqrt(_N_FFT)
            csi[antenna] = (
                spectrum[np.mod(_USED, _N_FFT)] / self._training
            )
        # Re-map the 56 estimated subcarriers onto the Intel 5300 30-entry
        # grouped report.
        columns = [int(np.where(_USED == m)[0][0]) for m in
                   INTEL5300_SUBCARRIER_INDICES]
        return PhyCsiEstimate(
            csi=csi[:, columns],
            detected_start=start,
            true_start=true_start,
        )

    def measure_packet(
        self, rays: list[StaticRay], *, n_rx: int = 3, packet_index: int = 0
    ) -> PhyCsiEstimate:
        """Convenience: transmit one packet and estimate its CSI."""
        waveforms, true_start = self.transmit(
            rays, n_rx=n_rx, packet_index=packet_index
        )
        return self.estimate_csi(waveforms, true_start)
