"""Composable, seeded channel/capture impairments for robustness testing.

The paper evaluates on clean 400 pkt/s Intel 5300 captures; every real
frame-capture deployment sees worse — CSMA backoff and interference drop
frames (independently and in bursts), NICs reset mid-capture leaving
second-long holes, timestamp counters jitter, drift, and occasionally glitch
backwards, AGC saturation clips packets, and individual subcarriers die.

Each impairment here is a small frozen dataclass: a deterministic (seeded)
transform ``CSITrace -> CSITrace`` that leaves the input untouched, returns
an impaired copy, and appends a record of what it did (parameters *and*
realized statistics, e.g. how many packets were dropped) to
``trace.meta["impairments"]``.  Impairments compose by chaining —
:func:`apply_impairments` runs a list under one master seed — so the
robustness benchmark can sweep, say, Bernoulli loss × dropout length with
full reproducibility.

Impaired traces are built with ``strict=False`` because some faults (clock
glitches) deliberately violate the invariants a healthy capture satisfies;
:meth:`CSITrace.validate` and the streaming quality gates are the layers
whose job it is to catch them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..errors import ConfigurationError
from ..io_.trace import CSITrace

__all__ = [
    "Impairment",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "DropoutGap",
    "TimestampJitter",
    "ClockDrift",
    "ClockGlitch",
    "CorruptedTimestamps",
    "ImpulsiveCorruption",
    "ClippedPackets",
    "SubcarrierNulls",
    "SegmentImpairment",
    "apply_impairments",
]


@dataclass(frozen=True)
class Impairment:
    """Base class: a seeded ``CSITrace -> CSITrace`` transform."""

    kind = "impairment"

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Return an impaired copy of ``trace`` using ``rng`` for randomness."""
        raise NotImplementedError

    def __call__(self, trace: CSITrace, *, seed: int = 0) -> CSITrace:
        """Apply with a fresh generator seeded by ``seed``."""
        return self.apply(trace, np.random.default_rng(seed))

    def _record(self, **realized) -> dict:
        """Metadata record: type tag + parameters + realized statistics."""
        return {"type": self.kind, **asdict(self), **realized}


def _rebuild(
    trace: CSITrace,
    record: dict,
    *,
    csi: np.ndarray | None = None,
    timestamps_s: np.ndarray | None = None,
) -> CSITrace:
    """A new trace with replaced arrays and the impairment recorded."""
    meta = dict(trace.meta)
    meta["impairments"] = list(meta.get("impairments", ())) + [record]
    return CSITrace(
        csi=trace.csi.copy() if csi is None else csi,
        timestamps_s=(
            trace.timestamps_s.copy() if timestamps_s is None else timestamps_s
        ),
        sample_rate_hz=trace.sample_rate_hz,
        subcarrier_indices=trace.subcarrier_indices,
        meta=meta,
        strict=False,
    )


def _drop(trace: CSITrace, keep: np.ndarray, record: dict) -> CSITrace:
    """Drop packets where ``keep`` is False, keeping at least two."""
    keep = np.asarray(keep, dtype=bool)
    if keep.sum() < 2:
        keep = keep.copy()
        keep[:2] = True
    record["n_dropped"] = int((~keep).sum())
    return _rebuild(
        trace, record, csi=trace.csi[keep], timestamps_s=trace.timestamps_s[keep]
    )


@dataclass(frozen=True)
class BernoulliLoss(Impairment):
    """Independent per-packet loss at probability ``loss_fraction``."""

    loss_fraction: float = 0.1

    kind = "bernoulli-loss"

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_fraction < 1.0:
            raise ConfigurationError(
                f"loss rate must be in [0, 1), got {self.loss_fraction}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Drop each packet independently with probability ``loss_fraction``."""
        keep = rng.random(trace.n_packets) >= self.loss_fraction
        return _drop(trace, keep, self._record())


@dataclass(frozen=True)
class GilbertElliottLoss(Impairment):
    """Bursty loss from the two-state Gilbert–Elliott channel model.

    A Markov chain alternates between a *good* state (loss probability
    ``loss_good``) and a *bad* state (``loss_bad``); ``p_enter_bad`` and
    ``p_exit_bad`` set the burst frequency and mean burst length
    (``1 / p_exit_bad`` packets).
    """

    p_enter_bad: float = 0.005
    p_exit_bad: float = 0.15
    loss_good: float = 0.0
    loss_bad: float = 0.9

    kind = "gilbert-elliott-loss"

    def __post_init__(self) -> None:
        for name in ("p_enter_bad", "p_exit_bad"):
            p = getattr(self, name)
            if not 0.0 < p <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {p}")
        for name in ("loss_good", "loss_bad"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Drop packets following the two-state burst-loss Markov chain."""
        n = trace.n_packets
        u_state = rng.random(n)
        u_loss = rng.random(n)
        keep = np.ones(n, dtype=bool)
        bad = False
        n_bursts = 0
        for k in range(n):
            if bad:
                if u_state[k] < self.p_exit_bad:
                    bad = False
            elif u_state[k] < self.p_enter_bad:
                bad = True
                n_bursts += 1
            p_loss = self.loss_bad if bad else self.loss_good
            keep[k] = u_loss[k] >= p_loss
        return _drop(trace, keep, self._record(n_bursts=n_bursts))


@dataclass(frozen=True)
class DropoutGap(Impairment):
    """A contiguous hole of ``duration_s`` (NIC reset / capture stall).

    ``start_s`` places the hole explicitly; ``None`` draws it uniformly
    from the middle 80% of the capture so sweeps do not always cut the
    same breathing cycle.
    """

    duration_s: float = 1.0
    start_s: float | None = None

    kind = "dropout-gap"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"gap duration must be positive, got {self.duration_s}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Cut a contiguous ``duration_s`` hole out of the capture."""
        t = trace.timestamps_s
        t0, t1 = float(t[0]), float(t[-1])
        span = t1 - t0
        if self.start_s is not None:
            start = t0 + self.start_s
        else:
            lo = t0 + 0.1 * span
            hi = max(lo, t1 - 0.1 * span - self.duration_s)
            start = float(rng.uniform(lo, hi))
        keep = ~((t >= start) & (t < start + self.duration_s))
        return _drop(trace, keep, self._record(realized_start_s=start - t0))


@dataclass(frozen=True)
class TimestampJitter(Impairment):
    """Gaussian capture-time jitter of standard deviation ``std_s``."""

    std_s: float = 0.5e-3

    kind = "timestamp-jitter"

    def __post_init__(self) -> None:
        if self.std_s <= 0:
            raise ConfigurationError(
                f"jitter std must be positive, got {self.std_s}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Add zero-mean Gaussian noise to every timestamp."""
        times = trace.timestamps_s + rng.normal(
            scale=self.std_s, size=trace.n_packets
        )
        return _rebuild(trace, self._record(), timestamps_s=times)


@dataclass(frozen=True)
class ClockDrift(Impairment):
    """Linear clock skew: timestamps stretched by ``drift_ppm`` parts/million."""

    drift_ppm: float = 50.0

    kind = "clock-drift"

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Stretch timestamps by the constant ppm clock-skew factor."""
        t = trace.timestamps_s
        times = t[0] + (t - t[0]) * (1.0 + self.drift_ppm * 1e-6)
        return _rebuild(trace, self._record(), timestamps_s=times)


@dataclass(frozen=True)
class ClockGlitch(Impairment):
    """A backward timestamp jump of ``jump_back_s`` (counter glitch/reset).

    Every packet from the glitch onward reports a time ``jump_back_s``
    earlier, so the stream re-covers wall-clock time it already reported —
    exactly the fault :func:`repro.dsp.resample.reclock` and the streaming
    monitor must survive.  ``at_s`` places the glitch (offset from the first
    packet); ``None`` draws it uniformly from the middle 80%.
    """

    jump_back_s: float = 0.5
    at_s: float | None = None

    kind = "clock-glitch"

    def __post_init__(self) -> None:
        if self.jump_back_s <= 0:
            raise ConfigurationError(
                f"backward jump must be positive, got {self.jump_back_s}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Inject a backwards timestamp step at the glitch point."""
        t = trace.timestamps_s
        span = float(t[-1] - t[0])
        at = (
            self.at_s
            if self.at_s is not None
            else float(rng.uniform(0.1 * span, 0.9 * span))
        )
        times = t.copy()
        glitched = t - t[0] >= at
        times[glitched] -= self.jump_back_s
        return _rebuild(
            trace,
            self._record(realized_at_s=at, n_glitched=int(glitched.sum())),
            timestamps_s=times,
        )


@dataclass(frozen=True)
class CorruptedTimestamps(Impairment):
    """Random timestamps replaced by NaN (corrupted capture log entries)."""

    corrupt_fraction: float = 0.01

    kind = "corrupted-timestamps"

    def __post_init__(self) -> None:
        if not 0.0 < self.corrupt_fraction <= 1.0:
            raise ConfigurationError(
                f"corruption rate must be in (0, 1], got {self.corrupt_fraction}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Replace a random subset of timestamps with NaN."""
        hit = rng.random(trace.n_packets) < self.corrupt_fraction
        times = trace.timestamps_s.copy()
        times[hit] = np.nan
        return _rebuild(
            trace, self._record(n_corrupted=int(hit.sum())), timestamps_s=times
        )


@dataclass(frozen=True)
class ImpulsiveCorruption(Impairment):
    """Impulsive interference: a fraction of packets get large CSI spikes.

    Affected packets receive complex impulses of ``magnitude`` × the median
    |CSI| on every antenna/subcarrier — the kind of single-packet garbage a
    co-channel burst produces.  Values stay finite; the Hampel stages and
    amplitude quality mask are what should absorb them.
    """

    hit_fraction: float = 0.01
    magnitude: float = 10.0

    kind = "impulsive-corruption"

    def __post_init__(self) -> None:
        if not 0.0 < self.hit_fraction <= 1.0:
            raise ConfigurationError(
                f"corruption rate must be in (0, 1], got {self.hit_fraction}"
            )
        if self.magnitude <= 0:
            raise ConfigurationError(
                f"magnitude must be positive, got {self.magnitude}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Replace a random subset of packets with interference-level garbage."""
        hit = rng.random(trace.n_packets) < self.hit_fraction
        csi = trace.csi.copy()
        n_hit = int(hit.sum())
        if n_hit:
            scale = self.magnitude * float(np.median(np.abs(csi)))
            shape = (n_hit,) + csi.shape[1:]
            csi[hit] += scale * (
                rng.normal(size=shape) + 1j * rng.normal(size=shape)
            )
        return _rebuild(trace, self._record(n_corrupted=n_hit), csi=csi)


@dataclass(frozen=True)
class ClippedPackets(Impairment):
    """AGC saturation: affected packets have |CSI| clipped, phase preserved.

    ``clip_quantile`` sets the saturation level as a quantile of the
    trace-wide amplitude distribution; amplitudes above it are flattened to
    it, destroying the amplitude information (and the mm-scale phase ride
    survives only partially).
    """

    clip_fraction: float = 0.05
    clip_quantile: float = 0.5

    kind = "clipped-packets"

    def __post_init__(self) -> None:
        if not 0.0 < self.clip_fraction <= 1.0:
            raise ConfigurationError(
                f"clip rate must be in (0, 1], got {self.clip_fraction}"
            )
        if not 0.0 < self.clip_quantile < 1.0:
            raise ConfigurationError(
                f"clip quantile must be in (0, 1), got {self.clip_quantile}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Clip the amplitude of a random subset of packets (AGC saturation)."""
        hit = rng.random(trace.n_packets) < self.clip_fraction
        csi = trace.csi.copy()
        n_hit = int(hit.sum())
        if n_hit:
            amp = np.abs(csi)
            level = float(np.quantile(amp, self.clip_quantile))
            sub = csi[hit]
            sub_amp = amp[hit]
            over = sub_amp > level
            sub[over] = sub[over] / sub_amp[over] * level
            csi[hit] = sub
        return _rebuild(trace, self._record(n_clipped=n_hit), csi=csi)


@dataclass(frozen=True)
class SubcarrierNulls(Impairment):
    """Dead subcarriers: ``n_nulls`` randomly chosen (or ``indices``) zeroed.

    A nulled subcarrier reports zero CSI on every packet and antenna — its
    phase is meaningless, which is exactly what the amplitude quality mask
    must bar from subcarrier selection.
    """

    n_nulls: int = 3
    indices: tuple[int, ...] | None = None

    kind = "subcarrier-nulls"

    def __post_init__(self) -> None:
        if self.indices is None and self.n_nulls < 1:
            raise ConfigurationError(
                f"need at least one null, got {self.n_nulls}"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Zero out the configured number of randomly chosen subcarriers."""
        if self.indices is not None:
            nulled = np.asarray(self.indices, dtype=int)
        else:
            n = min(self.n_nulls, trace.n_subcarriers - 1)
            nulled = rng.choice(trace.n_subcarriers, size=n, replace=False)
        if np.any((nulled < 0) | (nulled >= trace.n_subcarriers)):
            raise ConfigurationError(
                f"null indices {nulled} out of range for "
                f"{trace.n_subcarriers} subcarriers"
            )
        csi = trace.csi.copy()
        csi[:, :, nulled] = 0.0
        return _rebuild(
            trace,
            self._record(realized_indices=[int(i) for i in nulled]),
            csi=csi,
        )


@dataclass(frozen=True)
class SegmentImpairment(Impairment):
    """Confine another impairment to one time window of the capture.

    The fault model above is stationary: a loss process runs for the whole
    trace.  Real degradation is often a *burst* — a microwave oven runs for
    two minutes, a neighboring network backs up for thirty seconds.  This
    wrapper applies ``inner`` only to the packets captured in
    ``[start_s, end_s)`` (offsets from the first packet) and splices the
    result back, so the chaos harness can script "clean, then degraded,
    then clean again" timelines from the existing impairment vocabulary.
    """

    inner: Impairment = None  # type: ignore[assignment]
    start_s: float = 0.0
    end_s: float = 0.0

    kind = "segment"

    def __post_init__(self) -> None:
        if not isinstance(self.inner, Impairment):
            raise ConfigurationError(
                "SegmentImpairment needs an inner Impairment"
            )
        if self.end_s <= self.start_s:
            raise ConfigurationError(
                f"segment window [{self.start_s}, {self.end_s}) is empty"
            )

    def apply(self, trace: CSITrace, rng: np.random.Generator) -> CSITrace:
        """Apply ``inner`` to the window's packets only, splicing back."""
        t0 = float(trace.timestamps_s[0])
        offsets = trace.timestamps_s - t0
        in_window = (offsets >= self.start_s) & (offsets < self.end_s)
        record = self._record(n_segment_packets=int(in_window.sum()))
        if in_window.sum() < 2:
            record["inner_record"] = None
            return _rebuild(trace, record)
        segment = CSITrace(
            csi=trace.csi[in_window],
            timestamps_s=trace.timestamps_s[in_window],
            sample_rate_hz=trace.sample_rate_hz,
            subcarrier_indices=trace.subcarrier_indices,
            meta={},
            strict=False,
        )
        impaired = self.inner.apply(segment, rng)
        inner_records = impaired.meta.get("impairments", [])
        record["inner_record"] = inner_records[-1] if inner_records else None
        before = offsets < self.start_s
        after = offsets >= self.end_s
        csi = np.concatenate(
            [trace.csi[before], impaired.csi, trace.csi[after]]
        )
        times = np.concatenate(
            [
                trace.timestamps_s[before],
                impaired.timestamps_s,
                trace.timestamps_s[after],
            ]
        )
        return _rebuild(trace, record, csi=csi, timestamps_s=times)


def apply_impairments(
    trace: CSITrace,
    impairments: list[Impairment] | tuple[Impairment, ...],
    *,
    seed: int = 0,
) -> CSITrace:
    """Apply a chain of impairments under one master seed.

    Each impairment draws from an independent child generator spawned from
    ``seed``, so inserting or removing one link does not reshuffle the
    randomness of the others.

    Args:
        trace: The clean capture.
        impairments: Transforms applied left to right.
        seed: Master seed.

    Returns:
        The impaired trace (input is never mutated), with one record per
        impairment appended to ``meta["impairments"]``.
    """
    streams = np.random.default_rng(seed).spawn(len(impairments))
    out = trace
    for impairment, stream in zip(impairments, streams):
        out = impairment.apply(out, stream)
    return out
