"""Receiver-hardware phase-error model (paper Eqs. 3–4).

The measured phase of subcarrier i is

    ∠ĈSI_i = ∠CSI_i + (λ_p + λ_s + λ_c)·m_i + β + Z

with λ_p from packet-boundary-detection (PBD) delay, λ_s from sampling
frequency offset (SFO), λ_c from carrier frequency offset (CFO), β the PLL
initial phase, and Z measurement noise.  The PBD delay Δt and sampling time
offset n change per packet, which is why raw phase is useless (uniform on
the circle across packets, Fig. 1), while everything except β and Z is
*identical across the RX chains* — they share one clock and down-converter —
which is why the cross-antenna difference is stable (Theorem 1).

:class:`HardwareErrorModel` draws per-packet error terms once and applies
them to every antenna, adding a constant per-chain β and i.i.d. complex
noise — precisely the structure the paper's analysis relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import ComplexArray, FloatArray, IntArray
from ..errors import ConfigurationError
from .constants import FFT_SIZE, GUARD_INTERVAL_S, SYMBOL_DURATION_S

__all__ = ["HardwareConfig", "HardwareErrorModel"]


@dataclass(frozen=True)
class HardwareConfig:
    """Parameters of the Eq. 3–4 error model.

    Attributes:
        pbd_jitter_samples: Packet-boundary-detection delay Δt varies
            uniformly over ±this many FFT samples per packet.  Even a couple
            of samples swings the per-subcarrier-index slope enough to
            scramble raw phase across packets.
        sfo_ppm: Sampling-clock offset (T' − T)/T in parts per million.
        cfo_hz: Residual center-frequency difference Δf between TX and RX
            after coarse correction.
        pll_offsets_rad: Per-RX-chain initial PLL phase β (length = number
            of RX antennas).  Constant for a session, different per chain.
        noise_sigma: Standard deviation (per real/imag component) of the
            additive complex Gaussian CSI noise Z.  Interacts with ray
            amplitudes to set the effective phase noise.
        agc_jitter_sigma: Log-amplitude standard deviation of the per-packet
            receiver gain (AGC steps, TX power-control wobble).  The gain is
            *common to all chains and subcarriers of a packet*, so it
            cancels exactly in the cross-antenna phase difference but rides
            straight into CSI amplitude — the physical reason amplitude-
            based methods trail PhaseBeat (paper Fig. 11).
        seed: Seed for the per-packet error realizations.
    """

    pbd_jitter_samples: float = 2.0
    sfo_ppm: float = 20.0
    cfo_hz: float = 5_000.0
    pll_offsets_rad: tuple[float, ...] = (0.4, 3.5, 5.4)
    noise_sigma: float = 0.012
    agc_jitter_sigma: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pbd_jitter_samples < 0:
            raise ConfigurationError("pbd_jitter_samples must be >= 0")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be >= 0")
        if self.agc_jitter_sigma < 0:
            raise ConfigurationError("agc_jitter_sigma must be >= 0")
        if len(self.pll_offsets_rad) < 1:
            raise ConfigurationError("need at least one PLL offset")


class HardwareErrorModel:
    """Applies the measured-phase error model to clean CSI.

    The model is deliberately *structured*, not generic noise: the
    subcarrier-index-proportional terms are shared across antennas (so they
    cancel in the cross-antenna difference) while β and Z are per-chain (so
    the difference keeps a constant offset Δβ and doubled noise variance —
    the exact statement of Theorem 1).
    """

    def __init__(self, config: HardwareConfig | None = None):
        self.config = config if config is not None else HardwareConfig()

    def phase_errors(
        self,
        n_packets: int,
        packet_interval_s: float,
        subcarrier_indices: IntArray,
    ) -> FloatArray:
        """Common phase error e[k, i] = (λ_p + λ_s + λ_c)·m_i + λ_c0 per packet.

        Args:
            n_packets: Number of packets in the capture.
            packet_interval_s: Time between packets (1 / packet rate).
            subcarrier_indices: The m_i values (length 30 for Intel 5300).

        Returns:
            ``(n_packets, n_subcarriers)`` phase errors in radians, shared by
            all RX chains.
        """
        cfg = self.config
        if n_packets < 1:
            raise ConfigurationError(f"n_packets must be >= 1, got {n_packets}")
        if packet_interval_s <= 0:
            raise ConfigurationError(
                f"packet interval must be positive, got {packet_interval_s}"
            )
        rng = np.random.default_rng(cfg.seed)
        m = np.asarray(subcarrier_indices, dtype=float)

        # λ_p = 2π Δt / N, Δt drawn fresh for every packet.
        delta_t = rng.uniform(
            -cfg.pbd_jitter_samples, cfg.pbd_jitter_samples, size=n_packets
        )
        lambda_p = 2.0 * np.pi * delta_t / FFT_SIZE

        # Sampling time offset n grows with the packet index: the receiver's
        # sample counter keeps running between packets.
        symbol_s = SYMBOL_DURATION_S + GUARD_INTERVAL_S
        n_offset = np.arange(n_packets) * (packet_interval_s / symbol_s)

        # λ_s = 2π · (T'−T)/T · (T_s/T_u) · n
        lambda_s = (
            2.0
            * np.pi
            * (cfg.sfo_ppm * 1e-6)
            * (symbol_s / SYMBOL_DURATION_S)
            * n_offset
        )

        # λ_c = 2π Δf T_s n — a per-packet common rotation (no m_i factor in
        # its carrier part; the residual per-subcarrier part folds into the
        # slope the same way).
        lambda_c_common = 2.0 * np.pi * cfg.cfo_hz * symbol_s * n_offset

        slope = lambda_p + lambda_s  # multiplies the subcarrier index
        return slope[:, None] * m[None, :] + lambda_c_common[:, None]

    def apply(
        self,
        csi: ComplexArray,
        packet_interval_s: float,
        subcarrier_indices: IntArray,
    ) -> ComplexArray:
        """Turn true CSI into measured CSI.

        Args:
            csi: Clean complex CSI, shape ``(n_packets, n_rx, n_subcarriers)``.
            packet_interval_s: Time between packets.
            subcarrier_indices: The m_i values.

        Returns:
            Measured CSI of the same shape: common per-packet phase errors,
            per-chain constant β, and additive complex Gaussian noise.
        """
        csi = np.asarray(csi)
        if csi.ndim != 3:
            raise ConfigurationError(
                f"CSI must be (packets, antennas, subcarriers), got {csi.shape}"
            )
        n_packets, n_rx, n_sub = csi.shape
        cfg = self.config
        if n_rx > len(cfg.pll_offsets_rad):
            raise ConfigurationError(
                f"{n_rx} RX chains but only {len(cfg.pll_offsets_rad)} PLL "
                "offsets configured"
            )

        errors = self.phase_errors(n_packets, packet_interval_s, subcarrier_indices)
        beta = np.asarray(cfg.pll_offsets_rad[:n_rx], dtype=float)
        rotation = np.exp(1j * (errors[:, None, :] + beta[None, :, None]))

        measured = csi * rotation
        if cfg.agc_jitter_sigma > 0:
            rng = np.random.default_rng(cfg.seed + 2)
            gain = np.exp(rng.normal(scale=cfg.agc_jitter_sigma, size=n_packets))
            measured = measured * gain[:, None, None]
        if cfg.noise_sigma > 0:
            rng = np.random.default_rng(cfg.seed + 1)
            noise = cfg.noise_sigma * (
                rng.standard_normal(csi.shape) + 1j * rng.standard_normal(csi.shape)
            )
            measured = measured + noise
        return measured
