"""CSI capture: turn a scenario into the trace a commodity NIC would report.

:func:`capture_trace` is the simulator's top-level entry point.  It samples
the scenario's time-varying channel at the packet rate (the paper injects
400 packets/s), applies the Intel-5300 hardware error model of Eqs. 3–4, and
wraps the result in a :class:`~repro.io_.trace.CSITrace` whose metadata
carries the ground-truth rates for evaluation.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..io_.trace import CSITrace
from .channel import simulate_clean_csi
from .constants import (
    INTEL5300_SUBCARRIER_INDICES,
    N_RX_ANTENNAS,
    subcarrier_frequencies,
)
from .hardware import HardwareConfig, HardwareErrorModel
from .scene import Scenario

__all__ = ["capture_trace"]


def capture_trace(
    scenario: Scenario,
    *,
    duration_s: float = 60.0,
    sample_rate_hz: float = 400.0,
    hardware: HardwareConfig | None = None,
    seed: int = 0,
    timing_jitter: float = 0.0,
    t0_s: float = 0.0,
) -> CSITrace:
    """Simulate one CSI capture of ``scenario``.

    Args:
        scenario: The deployment to capture.
        duration_s: Capture length in seconds.
        sample_rate_hz: Packet injection rate (paper default 400 Hz).
        hardware: Hardware error parameters; a fresh default model seeded
            from ``seed`` when omitted, so different captures get different
            per-packet error realizations.
        seed: Master seed for hardware errors (clutter placement is seeded
            on the scenario itself; physiology on the person models).
        timing_jitter: Std-dev of packet-time jitter as a fraction of the
            packet interval (0 = ideal periodic injection).
        t0_s: Timestamp of the first packet.  Physiology is evaluated at the
            shifted times, so a capture started at ``t0_s`` continues the
            same scene a ``t0_s``-second earlier capture left off — which is
            what a restarted receiver process observes.

    Returns:
        A :class:`CSITrace` with ground truth in ``meta``.
    """
    if duration_s <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration_s}")
    if sample_rate_hz <= 0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz}"
        )
    n_packets = int(round(duration_s * sample_rate_hz))
    if n_packets < 2:
        raise ConfigurationError(
            f"capture of {duration_s}s at {sample_rate_hz}Hz has < 2 packets"
        )
    interval = 1.0 / sample_rate_hz
    times = np.arange(n_packets) * interval
    if timing_jitter > 0:
        rng = np.random.default_rng(seed + 7)
        times = times + rng.normal(scale=timing_jitter * interval, size=n_packets)
        times = np.sort(times - times[0])
    times = times + t0_s

    static_rays, person_rays = scenario.build_rays()
    dynamic = [
        (ray, ray.person.chest_displacement(times)) for ray in person_rays
    ]

    body = None
    presence = None
    if scenario.activity is not None:
        body = scenario.activity.body_displacement(times)
        presence = scenario.activity.person_present(times)

    frequencies = subcarrier_frequencies(scenario.carrier_hz)
    clean = simulate_clean_csi(
        static_rays,
        dynamic,
        times,
        frequencies,
        n_rx=N_RX_ANTENNAS,
        body_displacement_m=body,
        person_present=presence,
    )

    config = hardware if hardware is not None else HardwareConfig(seed=seed)
    measured = HardwareErrorModel(config).apply(
        clean, interval, INTEL5300_SUBCARRIER_INDICES
    )

    meta = {
        "scenario": scenario.name,
        "tx_rx_distance_m": scenario.tx_rx_distance_m,
        "directional_tx": scenario.directional_tx,
        "n_persons": len(scenario.persons),
        "breathing_rates_bpm": [p.breathing_rate_bpm for p in scenario.persons],
        "heart_rates_bpm": [p.heart_rate_bpm for p in scenario.persons],
        "person_names": [p.name for p in scenario.persons],
        "seed": seed,
        "has_activity_script": scenario.activity is not None,
    }
    return CSITrace(
        csi=measured,
        timestamps_s=times,
        sample_rate_hz=sample_rate_hz,
        subcarrier_indices=INTEL5300_SUBCARRIER_INDICES.copy(),
        meta=meta,
    )
