"""UbiBreathe-style RSS baseline (paper ref. [10]).

UbiBreathe estimates breathing from plain WiFi RSS — one coarse, quantized
power number per packet instead of 30 complex subcarrier responses.  The
paper cites it as the motivating contrast for fine-grained CSI: RSS needs
the subject on the LOS path and degrades quickly otherwise.

The model here derives RSS from the simulated CSI (total received power
summed over subcarriers and chains), quantizes it to the 1 dB granularity
real RSSI reports have, then runs a breathing-band FFT peak search on the
smoothed series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.breathing import BREATHING_SEARCH_BAND_HZ
from ..dsp.fft_utils import fundamental_frequency
from ..dsp.hampel import hampel_filter
from ..dsp.resample import decimate, downsampled_rate
from ..contracts import FloatArray
from ..errors import ConfigurationError
from ..io_.trace import CSITrace

__all__ = ["RSSMethodConfig", "RSSMethod", "rss_series_db"]


def rss_series_db(trace: CSITrace, quantization_db: float = 1.0) -> FloatArray:
    """Received signal strength per packet, quantized like a real RSSI.

    Args:
        trace: The CSI capture.
        quantization_db: Reporting granularity (1 dB on commodity NICs;
            0 disables quantization).

    Returns:
        ``(n_packets,)`` RSS values in dB (arbitrary reference).
    """
    power = np.sum(np.abs(trace.csi) ** 2, axis=(1, 2))
    rss = 10.0 * np.log10(np.maximum(power, 1e-30))
    if quantization_db > 0:
        rss = np.round(rss / quantization_db) * quantization_db
    return rss


@dataclass(frozen=True)
class RSSMethodConfig:
    """Parameters of the RSS baseline.

    Attributes:
        quantization_db: RSSI reporting granularity.
        smooth_window_s: Hampel smoothing window over the RSS series.
        target_rate_hz: Downsampled processing rate.
        band_hz: Breathing search band for the FFT peak.
    """

    quantization_db: float = 1.0
    smooth_window_s: float = 0.25
    target_rate_hz: float = 20.0
    band_hz: tuple[float, float] = BREATHING_SEARCH_BAND_HZ

    def __post_init__(self) -> None:
        if self.quantization_db < 0:
            raise ConfigurationError("quantization must be >= 0 dB")
        if self.smooth_window_s <= 0 or self.target_rate_hz <= 0:
            raise ConfigurationError("window and rate must be positive")


class RSSMethod:
    """Coarse RSS breathing estimator (the UbiBreathe-style contrast)."""

    def __init__(self, config: RSSMethodConfig | None = None):
        self.config = config if config is not None else RSSMethodConfig()

    def estimate_breathing_bpm(self, trace: CSITrace) -> float:
        """Breathing rate (bpm) from quantized RSS via FFT peak."""
        cfg = self.config
        rss = rss_series_db(trace, cfg.quantization_db)
        window = max(3, int(round(cfg.smooth_window_s * trace.sample_rate_hz)))
        smoothed = hampel_filter(rss, min(window, rss.size), 0.01)
        detrended = smoothed - hampel_filter(
            smoothed, min(rss.size, 8 * window), 0.01
        )
        factor = max(1, int(round(trace.sample_rate_hz / cfg.target_rate_hz)))
        series = decimate(detrended, factor)
        rate = downsampled_rate(trace.sample_rate_hz, factor)
        return 60.0 * fundamental_frequency(series, rate, band=cfg.band_hz)
