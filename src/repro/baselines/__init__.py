"""Comparison methods the paper evaluates against."""

from .amplitude import AmplitudeMethod, AmplitudeMethodConfig
from .rss import RSSMethod, RSSMethodConfig, rss_series_db

__all__ = [
    "AmplitudeMethod",
    "AmplitudeMethodConfig",
    "RSSMethod",
    "RSSMethodConfig",
    "rss_series_db",
]
