"""The CSI-amplitude baseline (Liu et al., MobiHoc 2015 — paper ref. [13]).

The benchmark PhaseBeat is compared against in Fig. 11: track vital signs
from the *amplitude* |CSI| of a single receive chain.  The processing chain
mirrors PhaseBeat's (same calibration, subcarrier selection, DWT, and peak
detection) so the comparison isolates the input representation — amplitude
versus cross-antenna phase difference — rather than differences in the
downstream machinery.

Amplitude is intrinsically noisier on commodity NICs: per-packet AGC and TX
power-control gain jitter multiplies every subcarrier of a packet by a
common random factor.  That factor cancels exactly in the cross-antenna
phase difference but lands directly on |CSI|, which is why the amplitude
method's error tail is heavier (the paper's observed 70% < 0.5 bpm vs
PhaseBeat's 90%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.breathing import PeakBreathingEstimator
from ..core.calibration import CalibrationConfig, calibrate
from ..core.dwt_stage import DWTConfig, decompose
from ..core.heart import FFTHeartEstimator
from ..core.subcarrier_selection import SelectionConfig, select_subcarrier
from ..errors import ConfigurationError
from ..io_.trace import CSITrace

__all__ = ["AmplitudeMethodConfig", "AmplitudeMethod"]


@dataclass(frozen=True)
class AmplitudeMethodConfig:
    """Parameters of the amplitude baseline.

    Attributes:
        antenna: Receive chain whose |CSI| is used.
        calibration: Detrend/denoise/downsample parameters (shared defaults
            with PhaseBeat).
        selection: Subcarrier-selection parameters.
        dwt: DWT parameters.
        peak_estimator: Breathing estimator.
        heart_estimator: Heart estimator (the original work monitors
            sleeping subjects; heart support is best-effort here).
    """

    antenna: int = 0
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    selection: SelectionConfig = field(default_factory=SelectionConfig)
    dwt: DWTConfig = field(default_factory=DWTConfig)
    peak_estimator: PeakBreathingEstimator = field(
        default_factory=PeakBreathingEstimator
    )
    heart_estimator: FFTHeartEstimator = field(default_factory=FFTHeartEstimator)

    def __post_init__(self) -> None:
        if self.antenna < 0:
            raise ConfigurationError(f"antenna must be >= 0, got {self.antenna}")


class AmplitudeMethod:
    """Amplitude-based vital-sign estimation (the Fig. 11 benchmark)."""

    def __init__(self, config: AmplitudeMethodConfig | None = None):
        self.config = config if config is not None else AmplitudeMethodConfig()

    def estimate_breathing_bpm(self, trace: CSITrace) -> float:
        """Single-person breathing rate from CSI amplitude."""
        bands, _ = self._band_split(trace)
        return self.config.peak_estimator.estimate_bpm(
            bands.breathing, bands.sample_rate_hz
        )

    def estimate_heart_bpm(self, trace: CSITrace) -> float:
        """Heart rate from the amplitude DWT detail band (best effort)."""
        bands, _ = self._band_split(trace)
        return self.config.heart_estimator.estimate_bpm(
            bands.heart, bands.sample_rate_hz
        )

    def _band_split(self, trace: CSITrace):
        cfg = self.config
        if cfg.antenna >= trace.n_rx:
            raise ConfigurationError(
                f"antenna {cfg.antenna} out of range for {trace.n_rx} chains"
            )
        amplitude = np.abs(trace.csi[:, cfg.antenna, :])
        calibrated = calibrate(amplitude, trace.sample_rate_hz, cfg.calibration)
        selection = select_subcarrier(calibrated.series, cfg.selection)
        series = calibrated.series[:, selection.selected]
        bands = decompose(series, calibrated.sample_rate_hz, cfg.dwt)
        return bands, selection
