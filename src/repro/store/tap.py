"""Recording tap: write-through capture at the fleet front door.

:class:`RecordingTap` wraps any :class:`~repro.service.sources.PacketSource`
and appends every delivered packet to a :class:`~repro.store.writer.TraceWriter`
before passing it on — the service sees exactly the same stream it would
have seen untapped.  The fleet gateway wraps admitted sessions' upstream
factories with taps so every ingested packet leaves durable evidence.

The tap also carries the chaos hooks for the *recorder* fault domain:
:meth:`crash` models the recording process dying (optionally tearing the
last bytes it had in flight), and :meth:`resume` models the supervisor
restarting it — a fresh writer continues in the next segment, leaving
the torn one for salvage.  :func:`store_digest` summarizes the store's
bytes (per-segment SHA-256) plus its salvage outcome, which is what the
fleet chaos report records and the run-twice sanitizer byte-compares.
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..errors import TraceStoreError
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..service.sources import Packet, PacketSource
from .backend import StorageBackend
from .format import segment_name
from .reader import TraceReader
from .writer import DEFAULT_ROTATE_BYTES, TraceWriter

__all__ = ["RecordingTap", "store_digest"]


def store_digest(
    backend: StorageBackend,
    stem: str,
    *,
    instrumentation: Instrumentation | None = None,
) -> dict[str, Any]:
    """Deterministic summary of a store: per-segment SHA-256 + salvage.

    The returned dict is JSON-safe and fully determined by the stored
    bytes, so two byte-identical recording runs produce byte-identical
    digests — the property the fleet sanitizer checks.
    """
    reader = TraceReader(backend, stem, instrumentation=instrumentation)
    segments = []
    for name in reader.segment_names():
        data = backend.read_bytes(name)
        segments.append(
            {
                "name": name,
                "n_bytes": len(data),
                "sha256": hashlib.sha256(data).hexdigest(),
            }
        )
    _, report = reader.scan()
    return {
        "stem": stem,
        "segments": segments,
        "salvage": report.to_jsonable(),
    }


class RecordingTap:
    """Pass packets through while appending them to a trace store.

    The writer is created lazily on the first packet, because the stream
    geometry (antennas × subcarriers) is only known once a packet shows
    its shape.  Everything else about the store — backend, stem, rate,
    metadata — is fixed at construction.

    Args:
        inner: The source being recorded.
        backend: Storage to record into.
        stem: Store name.
        sample_rate_hz: Nominal packet rate stamped into segment headers.
        session_id: Recording-session name for segment headers.
        subcarrier_indices: The m_i index of each reported subcarrier;
            defaults to ``0..n_subcarriers-1`` when omitted.
        csi_dtype: Stored CSI dtype.
        meta: Free-form JSON-safe metadata for segment headers.
        rotate_bytes: Segment byte budget.
        flush_every_records: Take a durability boundary every N appended
            records (0 disables periodic flushing; rotation and close
            still flush).
        instrumentation: Optional :class:`repro.obs.Instrumentation`
            shared with the writer.
    """

    def __init__(
        self,
        inner: PacketSource,
        backend: StorageBackend,
        stem: str,
        *,
        sample_rate_hz: float,
        session_id: str = "",
        subcarrier_indices: tuple[int, ...] | list[int] | None = None,
        csi_dtype: str = "complex64",
        meta: dict[str, Any] | None = None,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        flush_every_records: int = 0,
        instrumentation: Instrumentation | None = None,
    ):
        if flush_every_records < 0:
            raise TraceStoreError(
                f"flush_every_records must be >= 0, got {flush_every_records}"
            )
        self._inner = inner
        self._backend = backend
        self._stem = str(stem)
        self._sample_rate_hz = float(sample_rate_hz)
        self._session_id = str(session_id)
        self._subcarrier_indices = (
            tuple(int(i) for i in subcarrier_indices)
            if subcarrier_indices is not None
            else None
        )
        self._csi_dtype = str(csi_dtype)
        self._meta = dict(meta) if meta is not None else {}
        self._rotate_bytes = int(rotate_bytes)
        self._flush_every = int(flush_every_records)
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._writer: TraceWriter | None = None
        self._recording = True
        self._since_flush = 0
        self.n_recorded = 0
        self.n_crashes = 0

    @property
    def stem(self) -> str:
        """The store name this tap records into."""
        return self._stem

    @property
    def backend(self) -> StorageBackend:
        """The storage backend this tap records into."""
        return self._backend

    @property
    def recording(self) -> bool:
        """Whether packets are currently being persisted."""
        return self._recording

    @property
    def exhausted(self) -> bool:
        """Pass-through of the inner source's exhaustion state."""
        return self._inner.exhausted

    def _ensure_writer(self, packet: Packet) -> TraceWriter:
        if self._writer is None:
            n_rx, n_subcarriers = packet.csi.shape
            indices = self._subcarrier_indices
            if indices is None:
                indices = tuple(range(int(n_subcarriers)))
                self._subcarrier_indices = indices
            resume = self._backend.exists(segment_name(self._stem, 0))
            self._writer = TraceWriter(
                self._backend,
                self._stem,
                session_id=self._session_id,
                n_rx=int(n_rx),
                n_subcarriers=int(n_subcarriers),
                sample_rate_hz=self._sample_rate_hz,
                subcarrier_indices=indices,
                csi_dtype=self._csi_dtype,
                meta=self._meta,
                rotate_bytes=self._rotate_bytes,
                resume=resume,
                instrumentation=self._obs,
            )
        return self._writer

    def next_packet(self) -> Packet | None:
        """Deliver the inner source's next packet, recording it first."""
        packet = self._inner.next_packet()
        if packet is None or not self._recording:
            return packet
        writer = self._ensure_writer(packet)
        writer.append(packet.csi, packet.timestamp_s)
        self.n_recorded += 1
        self._since_flush += 1
        if self._flush_every and self._since_flush >= self._flush_every:
            writer.flush()
            self._since_flush = 0
        return packet

    def crash(self, *, torn_tail_bytes: int = 0) -> None:
        """Kill the recorder as a process crash would.

        The writer is abandoned without a final flush; optionally the
        last ``torn_tail_bytes`` bytes of the current segment are torn
        off, modelling a write that never fully reached the medium.
        Packets keep flowing to the consumer — only recording stops.
        """
        if torn_tail_bytes < 0:
            raise TraceStoreError(
                f"torn_tail_bytes must be >= 0, got {torn_tail_bytes}"
            )
        self._recording = False
        self.n_crashes += 1
        writer, self._writer = self._writer, None
        if writer is None:
            return
        current = segment_name(self._stem, writer.segment_index)
        writer.abandon()
        if torn_tail_bytes and self._backend.exists(current):
            data = self._backend.read_bytes(current)
            keep = max(0, len(data) - int(torn_tail_bytes))
            self._backend.replace_bytes(current, data[:keep])

    def resume(self) -> None:
        """Restart recording after a crash, in a fresh segment.

        The torn segment is left untouched for salvage; a new writer is
        created lazily on the next packet and continues numbering after
        the highest existing segment.
        """
        self._recording = True
        self._since_flush = 0

    def crash_and_resume(self, *, torn_tail_bytes: int = 0) -> None:
        """Crash the recorder and immediately restart it (one fault)."""
        self.crash(torn_tail_bytes=torn_tail_bytes)
        self.resume()

    def close(self) -> None:
        """Finalize the recording (flush + index)."""
        writer, self._writer = self._writer, None
        self._recording = False
        if writer is not None:
            writer.close()

    def digest(self) -> dict[str, Any]:
        """The store's deterministic digest (see :func:`store_digest`)."""
        return store_digest(self._backend, self._stem)
