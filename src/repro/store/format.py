"""The ``.cst`` segment format: CRC-framed, append-only, salvageable.

A segment is one append-only file::

    +----------------------+
    | SEGMENT_MAGIC (8 B)  |  b"CSTSEG01" — name + on-disk version
    +----------------------+
    | header frame         |  kind=1, canonical-JSON stream header
    +----------------------+
    | packet frame         |  kind=2, one CSI packet
    | packet frame         |
    | ...                  |
    +----------------------+

Every frame is independently checksummed::

    SYNC (2 B) | kind (u8) | payload_len (u32 LE) | crc32 (u32 LE) | payload

so a reader can decide per record whether it is intact.  The format is
designed for the failure model of a capture box losing power mid-write:

* **append-only** — no record is ever rewritten, so a crash can only
  produce a *torn tail* (a partial final frame), never a hole;
* **per-frame CRC** — a bit flip anywhere invalidates exactly the frames
  it touches;
* **sync marker** — after a corrupt frame the reader rescans for the next
  :data:`FRAME_SYNC` and realigns, so one bad record does not take the
  rest of the segment with it.

The header payload carries the stream geometry (antennas, subcarriers,
dtype), the nominal rate, the subcarrier indices, and free-form metadata;
packet payloads are a little-endian ``float64`` capture timestamp
followed by the packet's CSI matrix in C order.

Only parsing primitives live here; policy (rotation, durability, salvage
accounting) lives in :mod:`~repro.store.writer` and
:mod:`~repro.store.reader`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..contracts import ComplexArray
from ..errors import TraceFormatError, TraceStoreError

__all__ = [
    "SEGMENT_MAGIC",
    "FRAME_SYNC",
    "FRAME_HEADER_BYTES",
    "KIND_HEADER",
    "KIND_PACKET",
    "MAX_PAYLOAD_BYTES",
    "SegmentHeader",
    "encode_frame",
    "encode_header",
    "encode_packet",
    "decode_header_payload",
    "decode_packet_payload",
    "segment_name",
    "index_name",
]

# Magic prefix of every segment file.  The trailing two digits are the
# on-disk format version: a reader seeing b"CSTSEG" with other digits
# refuses loudly (TraceFormatError) instead of guessing at frame layout.
SEGMENT_MAGIC = b"CSTSEG01"
_MAGIC_STEM = b"CSTSEG"

# Two-byte frame sync marker.  Chosen with no repeated byte so a
# self-overlapping scan cannot lock onto a half-marker.
FRAME_SYNC = b"\xc5\x7e"

# SYNC(2) + kind(1) + payload_len(4) + crc32(4).
FRAME_HEADER_BYTES = 11
_FRAME_HEADER_STRUCT = struct.Struct("<BII")

KIND_HEADER = 1
KIND_PACKET = 2

# Upper bound on a single frame payload; anything larger in a length
# field is treated as corruption, which caps how far a flipped length
# byte can drag the parser off the rails.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024

_TIMESTAMP_STRUCT = struct.Struct("<d")

# CSI dtypes a header may declare.  complex64 is the storage default
# (the Intel 5300 reports far fewer than 24 significant bits anyway);
# complex128 round-trips simulator output bit-exactly.
_ALLOWED_DTYPES = ("complex64", "complex128")


@dataclass(frozen=True)
class SegmentHeader:
    """Decoded stream header of one segment.

    Attributes:
        session_id: Recording-session name (``""`` for anonymous stores).
        segment_index: Zero-based position of this segment in the store.
        n_rx: Receive antennas per packet.
        n_subcarriers: Subcarriers per packet.
        csi_dtype: Stored CSI dtype, ``"complex64"`` or ``"complex128"``.
        sample_rate_hz: Nominal packet rate of the recorded stream.
        subcarrier_indices: The m_i index of each reported subcarrier.
        meta: Free-form JSON-safe metadata copied from the recorded
            stream (ground-truth rates, scenario name, seeds).
    """

    session_id: str
    segment_index: int
    n_rx: int
    n_subcarriers: int
    csi_dtype: str
    sample_rate_hz: float
    subcarrier_indices: tuple[int, ...]
    meta: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_rx < 1 or self.n_subcarriers < 1:
            raise TraceStoreError(
                f"segment header needs positive geometry, got "
                f"{self.n_rx} rx x {self.n_subcarriers} subcarriers"
            )
        if self.csi_dtype not in _ALLOWED_DTYPES:
            raise TraceStoreError(
                f"unsupported CSI dtype {self.csi_dtype!r}; "
                f"allowed: {_ALLOWED_DTYPES}"
            )
        if self.sample_rate_hz <= 0:
            raise TraceStoreError("sample_rate_hz must be positive")

    @property
    def packet_payload_bytes(self) -> int:
        """Exact payload size of every packet frame under this header."""
        itemsize = np.dtype(self.csi_dtype).itemsize
        return _TIMESTAMP_STRUCT.size + self.n_rx * self.n_subcarriers * itemsize


def encode_frame(kind: int, payload: bytes) -> bytes:
    """Frame ``payload`` with sync marker, kind, length, and CRC32."""
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise TraceStoreError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame cap"
        )
    header = _FRAME_HEADER_STRUCT.pack(
        kind, len(payload), zlib.crc32(payload)
    )
    return FRAME_SYNC + header + payload


def encode_header(header: SegmentHeader) -> bytes:
    """The canonical-JSON payload of a ``kind=1`` header frame."""
    payload = {
        "session_id": header.session_id,
        "segment_index": header.segment_index,
        "n_rx": header.n_rx,
        "n_subcarriers": header.n_subcarriers,
        "csi_dtype": header.csi_dtype,
        "sample_rate_hz": header.sample_rate_hz,
        "subcarrier_indices": list(header.subcarrier_indices),
        "meta": header.meta,
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode_header_payload(payload: bytes) -> SegmentHeader:
    """Parse a header-frame payload back into a :class:`SegmentHeader`.

    Raises:
        TraceStoreError: The payload is not the expected JSON object (a
            CRC-valid frame of the wrong shape — a format bug, not
            corruption, so it is not silently salvaged away).
    """
    try:
        data = json.loads(payload.decode("utf-8"))
        return SegmentHeader(
            session_id=str(data["session_id"]),
            segment_index=int(data["segment_index"]),
            n_rx=int(data["n_rx"]),
            n_subcarriers=int(data["n_subcarriers"]),
            csi_dtype=str(data["csi_dtype"]),
            sample_rate_hz=float(data["sample_rate_hz"]),
            subcarrier_indices=tuple(
                int(i) for i in data["subcarrier_indices"]
            ),
            meta=dict(data.get("meta", {})),
        )
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError,
            ValueError) as exc:
        raise TraceStoreError(
            f"malformed segment header payload: {exc}"
        ) from exc


def encode_packet(
    csi: ComplexArray, timestamp_s: float, header: SegmentHeader
) -> bytes:
    """The payload of a ``kind=2`` packet frame.

    Args:
        csi: The packet's CSI, shape ``(n_rx, n_subcarriers)``.
        timestamp_s: Capture time of the packet.
        header: The segment header fixing geometry and dtype.

    Raises:
        TraceStoreError: The packet's shape disagrees with the header.
    """
    matrix = np.asarray(csi)
    if matrix.shape != (header.n_rx, header.n_subcarriers):
        raise TraceStoreError(
            f"packet shape {matrix.shape} does not match the segment "
            f"header ({header.n_rx}, {header.n_subcarriers})"
        )
    return _TIMESTAMP_STRUCT.pack(float(timestamp_s)) + np.ascontiguousarray(
        matrix, dtype=np.dtype(header.csi_dtype)
    ).tobytes()


def decode_packet_payload(
    payload: bytes, header: SegmentHeader
) -> tuple[float, ComplexArray]:
    """Parse a packet-frame payload into ``(timestamp_s, csi)``.

    Raises:
        TraceStoreError: The payload size disagrees with the header
            geometry (the salvaging reader catches this and records a
            skip instead of propagating).
    """
    if len(payload) != header.packet_payload_bytes:
        raise TraceStoreError(
            f"packet payload is {len(payload)} bytes; header geometry "
            f"requires exactly {header.packet_payload_bytes}"
        )
    (timestamp_s,) = _TIMESTAMP_STRUCT.unpack_from(payload, 0)
    csi = np.frombuffer(
        payload, dtype=np.dtype(header.csi_dtype), offset=_TIMESTAMP_STRUCT.size
    ).reshape(header.n_rx, header.n_subcarriers)
    return float(timestamp_s), csi


def check_segment_magic(prefix: bytes) -> None:
    """Validate the first bytes of a segment file.

    Args:
        prefix: Up to the first ``len(SEGMENT_MAGIC)`` bytes of the file.

    Raises:
        TraceFormatError: The file *is* a CST segment but from an
            unsupported on-disk version — the one corruption-adjacent
            condition that must fail loudly, because guessing at an
            unknown frame layout would fabricate records.
        TraceStoreError: The bytes are not a CST segment at all (the
            salvaging reader converts this into a ``bad-magic`` issue).
    """
    if prefix == SEGMENT_MAGIC:
        return
    if len(prefix) >= len(SEGMENT_MAGIC) and prefix.startswith(_MAGIC_STEM):
        found = prefix[len(_MAGIC_STEM):len(SEGMENT_MAGIC)].decode(
            "ascii", errors="replace"
        )
        supported = SEGMENT_MAGIC[len(_MAGIC_STEM):].decode("ascii")
        raise TraceFormatError(
            f"unsupported segment format version {found!r} "
            f"(supported: {supported!r})"
        )
    raise TraceStoreError(
        f"not a CST segment (magic {prefix[:len(SEGMENT_MAGIC)]!r})"
    )


def unpack_frame_header(chunk: bytes) -> tuple[int, int, int]:
    """Unpack ``(kind, payload_len, crc32)`` from the 9 bytes after SYNC."""
    kind, length, crc = _FRAME_HEADER_STRUCT.unpack_from(chunk, 0)
    return int(kind), int(length), int(crc)


def payload_crc(payload: bytes) -> int:
    """CRC32 of a frame payload (the value stored in the frame header)."""
    return zlib.crc32(payload)


def segment_name(stem: str, index: int) -> str:
    """Canonical file name of segment ``index`` of store ``stem``."""
    if index < 0:
        raise TraceStoreError(f"segment index must be >= 0, got {index}")
    return f"{stem}-{index:05d}.cst"


def index_name(stem: str) -> str:
    """Canonical file name of the store's index sidecar."""
    return f"{stem}.cidx"
