"""Content-keyed memoization of calibration over recorded stores.

Offline consumers (replay backtests, learned-track training and eval)
repeatedly run the same expensive front half — phase difference, Hampel
calibration, subcarrier selection — over the same immutable ``.cst``
segments.  :class:`StoreCalibrationMemo` caches those results keyed by a
SHA-256 digest of the store's segment *bytes* (plus the configuration), so
a hit is only possible when the recorded data and the processing
parameters are literally identical — a crash-salvaged or appended store
re-computes.

The memo is deliberately instance-based: ``repro.store`` is inside the
fleet's shared-state patrol (phaselint PL010), so there is no module-level
cache — each consumer owns its memo and its hit-rate, and shares it
explicitly when sharing is wanted.  Hits and misses are counted through
``repro.obs`` (``store_memo_cache_hits_count`` /
``store_memo_cache_misses_count``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any

from ..contracts import BoolArray, FloatArray
from ..core.calibration import CalibrationConfig
from ..core.pipeline import prepare_calibrated_matrix
from ..core.subcarrier_selection import (
    SelectionConfig,
    SelectionResult,
    select_subcarrier,
)
from ..errors import ConfigurationError
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .backend import StorageBackend
from .reader import TraceReader

__all__ = ["StoreCalibrationMemo", "store_digest"]


def store_digest(backend: StorageBackend, stem: str) -> str:
    """SHA-256 digest over a store's segment names and bytes.

    The digest covers every segment of ``stem`` in name order, each
    prefixed by its name, so renames, truncations, appends, and bit flips
    all change the key.

    Args:
        backend: The storage backend holding the segments.
        stem: The store stem (as passed to
            :class:`~repro.store.reader.TraceReader`).

    Returns:
        The hex digest.
    """
    names = TraceReader(backend, stem).segment_names()
    if not names:
        raise ConfigurationError(f"no segments found for stem {stem!r}")
    digest = hashlib.sha256()
    for name in names:
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(backend.read_bytes(name))
    return digest.hexdigest()


class StoreCalibrationMemo:
    """Memoize calibrated matrices and subcarrier selections per store.

    Args:
        max_entries: LRU capacity (distinct ``(store, config)`` results).
        instrumentation: Optional metrics sink for hit/miss counters.
    """

    def __init__(
        self,
        *,
        max_entries: int = 32,
        instrumentation: Instrumentation | None = None,
    ):
        if max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        self._entries: OrderedDict[tuple[Any, ...], Any] = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        """Cache hits served so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Cache misses (fresh computations) so far."""
        return self._misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self._hits + self._misses
        if total == 0:
            return 0.0
        return self._hits / total

    def _lookup(self, key: tuple[Any, ...], operation: str) -> Any | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._hits += 1
            self._obs.count(
                "store_memo_cache_hits_count",
                labels={"op": operation},
                help_text="Calibration/selection results served from the "
                "store memo.",
            )
            return entry
        self._misses += 1
        self._obs.count(
            "store_memo_cache_misses_count",
            labels={"op": operation},
            help_text="Calibration/selection results computed fresh.",
        )
        return None

    def _insert(self, key: tuple[Any, ...], value: Any) -> None:
        self._entries[key] = value
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def calibrated_matrix(
        self,
        backend: StorageBackend,
        stem: str,
        *,
        calibration: CalibrationConfig | None = None,
    ) -> tuple[FloatArray, BoolArray, float]:
        """Calibrated phase-difference matrix for a whole store.

        Reads the store through :class:`~repro.store.reader.TraceReader`
        (salvage semantics included) and runs
        :func:`repro.core.pipeline.prepare_calibrated_matrix`, memoized by
        segment digest + calibration parameters.

        Args:
            backend: The storage backend holding the segments.
            stem: The store stem.
            calibration: Calibration parameters (part of the cache key).

        Returns:
            ``(matrix, quality, sample_rate_hz)`` exactly as
            :func:`prepare_calibrated_matrix` returns them.  Treat the
            arrays as read-only — they are shared across callers.
        """
        key = (
            "calibrated",
            store_digest(backend, stem),
            repr(calibration),
        )
        cached = self._lookup(key, "calibrated")
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        reader = TraceReader(backend, stem)
        trace, _ = reader.read_trace()
        matrix, quality, rate_hz = prepare_calibrated_matrix(
            trace, calibration=calibration
        )
        matrix.setflags(write=False)
        quality.setflags(write=False)
        value = (matrix, quality, float(rate_hz))
        self._insert(key, value)
        return value

    def selection(
        self,
        backend: StorageBackend,
        stem: str,
        *,
        selection: SelectionConfig | None = None,
        calibration: CalibrationConfig | None = None,
    ) -> SelectionResult:
        """Memoized subcarrier selection over a store's calibrated matrix.

        Args:
            backend: The storage backend holding the segments.
            stem: The store stem.
            selection: Selection parameters (part of the cache key).
            calibration: Calibration parameters (part of the cache key).

        Returns:
            The :class:`~repro.core.subcarrier_selection.SelectionResult`.
        """
        key = (
            "selection",
            store_digest(backend, stem),
            repr(selection),
            repr(calibration),
        )
        cached = self._lookup(key, "selection")
        if cached is not None:
            return cached  # type: ignore[no-any-return]
        matrix, quality, _ = self.calibrated_matrix(
            backend, stem, calibration=calibration
        )
        result = select_subcarrier(matrix, selection, mask=quality)
        self._insert(key, result)
        return result
