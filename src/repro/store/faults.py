"""Seeded storage fault injection — the disk analogue of ``FlakySourceAdapter``.

Wraps a :class:`~repro.store.backend.StorageBackend` (or a single append
handle) and injects the failure modes real storage exhibits:

* **torn writes** — the process "crashes" partway through a ``write``
  call, persisting only a prefix of the requested bytes
  (:class:`TornWriteFile`, raising
  :class:`~repro.errors.TornWriteError`);
* **bit flips** — stored bytes silently corrupted at seeded offsets;
* **short reads / premature EOF** — reads return fewer bytes than the
  file holds, modelling a file cut off mid-copy.

Everything is driven by a seeded ``numpy`` Generator or by explicit
byte offsets, so every fault sequence is reproducible — the same
requirement the chaos harness imposes on source faults.
"""

from __future__ import annotations

import numpy as np

from ..errors import TornWriteError, TraceStoreError
from .backend import AppendHandle, StorageBackend

__all__ = [
    "TornWriteFile",
    "FaultyFile",
    "FaultyBackend",
    "flip_bit",
    "truncate_at",
]


def flip_bit(data: bytes, offset: int, bit: int = 0) -> bytes:
    """Return ``data`` with one bit flipped at ``offset``.

    Args:
        data: Original bytes (not modified).
        offset: Byte offset to corrupt; must be in range.
        bit: Which bit (0–7) to flip within that byte.

    Raises:
        TraceStoreError: ``offset`` or ``bit`` is out of range.
    """
    if not 0 <= offset < len(data):
        raise TraceStoreError(
            f"flip offset {offset} outside buffer of {len(data)} bytes"
        )
    if not 0 <= bit <= 7:
        raise TraceStoreError(f"bit index must be 0..7, got {bit}")
    corrupted = bytearray(data)
    corrupted[offset] ^= 1 << bit
    return bytes(corrupted)


def truncate_at(data: bytes, length: int) -> bytes:
    """Return the first ``length`` bytes of ``data`` (premature EOF)."""
    return data[: max(0, int(length))]


class TornWriteFile:
    """Append handle that dies partway through the N-th write call.

    Models the crash-mid-``write`` failure: the call that crosses the
    configured byte budget persists only the bytes up to the budget,
    then raises :class:`~repro.errors.TornWriteError`.  Every later
    call fails the same way with zero bytes persisted, like writing to
    a dead process's descriptor.

    Args:
        inner: The real handle to tear.
        crash_after_bytes: Total bytes allowed through before the crash.
            The write that would exceed this budget is torn.
    """

    def __init__(self, inner: AppendHandle, crash_after_bytes: int):
        if crash_after_bytes < 0:
            raise TraceStoreError(
                f"crash_after_bytes must be >= 0, got {crash_after_bytes}"
            )
        self._inner = inner
        self._budget = int(crash_after_bytes)
        self._written = 0
        self._crashed = False

    @property
    def crashed(self) -> bool:
        """Whether the simulated crash has fired."""
        return self._crashed

    @property
    def n_bytes_written(self) -> int:
        """Total bytes that actually reached the inner handle."""
        return self._written

    def write(self, data: bytes) -> int:
        """Append, tearing the call that crosses the crash budget."""
        if self._crashed:
            raise TornWriteError(0)
        remaining = self._budget - self._written
        if len(data) <= remaining:
            n = self._inner.write(data)
            self._written += n
            return n
        self._crashed = True
        persisted = 0
        if remaining > 0:
            persisted = self._inner.write(data[:remaining])
            self._written += persisted
        # The torn bytes are on "disk": a real crash leaves whatever the
        # kernel already accepted, with no fsync and no cleanup.
        self._inner.flush()
        raise TornWriteError(persisted)

    def flush(self) -> None:
        """Flush the inner handle; fails if already crashed."""
        if self._crashed:
            raise TornWriteError(0)
        self._inner.flush()

    def close(self) -> None:
        """Close the inner handle (always allowed, even post-crash)."""
        self._inner.close()


class FaultyFile:
    """Append handle with seeded per-call fault probabilities.

    Args:
        inner: The real handle.
        rng: Seeded generator driving every fault decision.
        torn_write_probability: Chance a given ``write`` call is torn at
            a uniform random prefix length.
        bit_flip_probability: Chance a given ``write`` call has one bit
            of its payload flipped (silent corruption — the call
            "succeeds").
    """

    def __init__(
        self,
        inner: AppendHandle,
        rng: np.random.Generator,
        torn_write_probability: float = 0.0,
        bit_flip_probability: float = 0.0,
    ):
        for name, p in (
            ("torn_write_probability", torn_write_probability),
            ("bit_flip_probability", bit_flip_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise TraceStoreError(f"{name} must be in [0, 1], got {p}")
        self._inner = inner
        self._rng = rng
        self._p_torn = float(torn_write_probability)
        self._p_flip = float(bit_flip_probability)
        self._crashed = False

    def write(self, data: bytes) -> int:
        """Append with seeded chances of silent bit flip or torn write."""
        if self._crashed:
            raise TornWriteError(0)
        if data and self._p_flip > 0 and self._rng.random() < self._p_flip:
            offset = int(self._rng.integers(0, len(data)))
            bit = int(self._rng.integers(0, 8))
            data = flip_bit(data, offset, bit)
        if data and self._p_torn > 0 and self._rng.random() < self._p_torn:
            self._crashed = True
            keep = int(self._rng.integers(0, len(data)))
            persisted = self._inner.write(data[:keep]) if keep else 0
            self._inner.flush()
            raise TornWriteError(persisted)
        return self._inner.write(data)

    def flush(self) -> None:
        """Flush the inner handle; fails if a torn write already fired."""
        if self._crashed:
            raise TornWriteError(0)
        self._inner.flush()

    def close(self) -> None:
        """Close the inner handle."""
        self._inner.close()


class FaultyBackend:
    """Backend wrapper injecting storage faults on append and read paths.

    Write-side faults are delegated to :class:`FaultyFile` per opened
    handle.  Read-side faults model a damaged medium: seeded bit flips
    in returned content and short reads (premature EOF).  The underlying
    stored bytes are never modified by read faults — re-reading after
    the fault budget is exhausted returns pristine data, like retrying
    a flaky bus.

    Args:
        inner: The real backend.
        rng: Seeded generator driving all fault decisions.
        torn_write_probability: Per-``write`` tear chance.
        bit_flip_probability: Per-``write`` silent-corruption chance.
        read_flip_probability: Per-``read_bytes`` chance of one flipped
            bit in the returned copy.
        short_read_probability: Per-``read_bytes`` chance the returned
            copy is cut at a uniform random length.
    """

    def __init__(
        self,
        inner: StorageBackend,
        rng: np.random.Generator,
        torn_write_probability: float = 0.0,
        bit_flip_probability: float = 0.0,
        read_flip_probability: float = 0.0,
        short_read_probability: float = 0.0,
    ):
        for name, p in (
            ("read_flip_probability", read_flip_probability),
            ("short_read_probability", short_read_probability),
        ):
            if not 0.0 <= p <= 1.0:
                raise TraceStoreError(f"{name} must be in [0, 1], got {p}")
        self._inner = inner
        self._rng = rng
        self._p_torn = float(torn_write_probability)
        self._p_flip = float(bit_flip_probability)
        self._p_read_flip = float(read_flip_probability)
        self._p_short = float(short_read_probability)

    def open_append(self, name: str) -> AppendHandle:
        """Open for append through a :class:`FaultyFile` wrapper."""
        return FaultyFile(
            self._inner.open_append(name),
            self._rng,
            torn_write_probability=self._p_torn,
            bit_flip_probability=self._p_flip,
        )

    def read_bytes(self, name: str) -> bytes:
        """Read with seeded chances of a flipped bit or a short read."""
        data = self._inner.read_bytes(name)
        if data and self._p_read_flip > 0 and self._rng.random() < self._p_read_flip:
            offset = int(self._rng.integers(0, len(data)))
            bit = int(self._rng.integers(0, 8))
            data = flip_bit(data, offset, bit)
        if data and self._p_short > 0 and self._rng.random() < self._p_short:
            data = truncate_at(data, int(self._rng.integers(0, len(data))))
        return data

    def replace_bytes(self, name: str, data: bytes) -> None:
        """Pass through — index replaces are atomic by contract."""
        self._inner.replace_bytes(name, data)

    def exists(self, name: str) -> bool:
        """Pass through."""
        return self._inner.exists(name)

    def list_names(self) -> list[str]:
        """Pass through (already sorted by the inner backend)."""
        return self._inner.list_names()
