"""Salvaging trace reading: recover everything intact, report the rest.

:class:`TraceReader` reads a store's ``.cst`` segments back into packets
(or a whole :class:`~repro.io_.trace.CSITrace`) under one hard rule:
**corrupt content never raises**.  Torn tails, flipped bits, truncated
copies, even a damaged magic — all of it is normal input after a crash,
and all of it is reported through a typed :class:`SalvageReport` while
every frame whose CRC still verifies is recovered.

Salvage policy
--------------

* A frame is recovered iff it is completely present and its CRC32
  matches.  There is no partial-record recovery — half a packet is
  fabricated data.
* After a bad frame the reader scans forward for the next
  :data:`~repro.store.format.FRAME_SYNC` marker and realigns, so one
  corrupt record costs only itself (plus any record whose sync bytes
  were themselves hit).
* A cut-off at end of file is classified ``torn-tail`` (the expected
  crash signature); corruption with more data after it is classified by
  what tripped the parser (``desync``, ``crc-mismatch``, ``bad-length``,
  ``bad-kind``).
* A damaged segment magic — including version digits, which one bit
  flip can forge — becomes a ``bad-magic``/``version-mismatch`` issue
  and salvage proceeds on frame CRCs; a flipped byte in an 8-byte
  preamble must not cost the other 99.99 % of the segment.

The ``.cidx`` index sidecar is never trusted for content: segments are
enumerated from the backend and every byte re-verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..contracts import ComplexArray
from ..errors import TraceFormatError, TraceStoreError
from ..io_.trace import CSITrace
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .backend import StorageBackend
from .format import (
    FRAME_HEADER_BYTES,
    FRAME_SYNC,
    KIND_HEADER,
    KIND_PACKET,
    MAX_PAYLOAD_BYTES,
    SEGMENT_MAGIC,
    SegmentHeader,
    check_segment_magic,
    decode_header_payload,
    decode_packet_payload,
    payload_crc,
    unpack_frame_header,
)

__all__ = [
    "SalvageIssue",
    "SalvageReport",
    "SegmentScan",
    "scan_segment",
    "TraceReader",
]

_ISSUE_KINDS = (
    "torn-tail",
    "desync",
    "crc-mismatch",
    "bad-length",
    "bad-kind",
    "bad-magic",
    "version-mismatch",
    "bad-header",
    "missing-header",
    "bad-payload",
    "short-file",
)


@dataclass(frozen=True)
class SalvageIssue:
    """One region of a segment the salvage scan could not recover.

    Attributes:
        kind: Machine-readable classification, one of
            ``torn-tail`` (file ends inside a frame — the crash
            signature), ``desync`` (expected a sync marker, found other
            bytes), ``crc-mismatch``, ``bad-length`` (length field
            implausible), ``bad-kind`` (unknown frame kind),
            ``bad-magic`` / ``version-mismatch`` (damaged preamble),
            ``bad-header`` (CRC-valid header frame that fails to parse),
            ``missing-header`` (packet frames with no usable header to
            decode them against), ``bad-payload`` (CRC-valid packet of
            the wrong size for the header), ``short-file`` (file shorter
            than a magic).
        segment: Segment file name.
        offset: Byte offset where the bad region starts.
        n_bytes_skipped: Bytes given up on before the scan realigned.
        n_records_lost: CRC-valid records skipped inside the region
            (non-zero only for decode-stage issues).
        detail: Human-readable specifics.
    """

    kind: str
    segment: str
    offset: int
    n_bytes_skipped: int
    n_records_lost: int = 0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _ISSUE_KINDS:
            raise TraceStoreError(
                f"unknown salvage issue kind {self.kind!r}; "
                f"expected one of {_ISSUE_KINDS}"
            )

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-safe form for reports and the sanitizer byte-diff."""
        return {
            "kind": self.kind,
            "segment": self.segment,
            "offset": self.offset,
            "n_bytes_skipped": self.n_bytes_skipped,
            "n_records_lost": self.n_records_lost,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SalvageReport:
    """What a salvage pass recovered and what it had to give up.

    Attributes:
        n_segments_scanned: Segment files examined.
        n_records_recovered: CRC-verified packet records returned.
        n_records_lost: CRC-valid records that could not be decoded
            (wrong geometry, no header) — distinct from regions so
            corrupt they hold no countable records.
        n_bytes_scanned: Total bytes examined.
        n_bytes_skipped: Bytes inside unrecoverable regions.
        issues: Every unrecoverable region, in scan order.
    """

    n_segments_scanned: int
    n_records_recovered: int
    n_records_lost: int
    n_bytes_scanned: int
    n_bytes_skipped: int
    issues: tuple[SalvageIssue, ...]

    @property
    def clean(self) -> bool:
        """True when every byte of every segment verified."""
        return not self.issues

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-safe form for reports and the sanitizer byte-diff."""
        return {
            "n_segments_scanned": self.n_segments_scanned,
            "n_records_recovered": self.n_records_recovered,
            "n_records_lost": self.n_records_lost,
            "n_bytes_scanned": self.n_bytes_scanned,
            "n_bytes_skipped": self.n_bytes_skipped,
            "clean": self.clean,
            "issues": [issue.to_jsonable() for issue in self.issues],
        }


@dataclass
class SegmentScan:
    """Salvage result of one segment file.

    Attributes:
        name: Segment file name.
        header: Decoded stream header, or ``None`` if no usable header
            frame survived.
        packets: Recovered ``(timestamp_s, csi)`` records in file order.
        issues: Unrecoverable regions found in this segment.
        n_bytes: Size of the scanned file.
        n_bytes_skipped: Bytes inside unrecoverable regions.
        n_records_lost: CRC-valid records that failed decoding.
    """

    name: str
    header: SegmentHeader | None
    packets: list[tuple[float, ComplexArray]] = field(default_factory=list)
    issues: list[SalvageIssue] = field(default_factory=list)
    n_bytes: int = 0
    n_bytes_skipped: int = 0
    n_records_lost: int = 0


def _scan_magic(data: bytes, name: str, scan: SegmentScan) -> int:
    """Validate the preamble; return the offset frame scanning starts at."""
    if len(data) < len(SEGMENT_MAGIC):
        kind = "torn-tail" if SEGMENT_MAGIC.startswith(data) else "short-file"
        scan.issues.append(
            SalvageIssue(
                kind=kind,
                segment=name,
                offset=0,
                n_bytes_skipped=len(data),
                detail=f"file is only {len(data)} bytes, shorter than a magic",
            )
        )
        scan.n_bytes_skipped += len(data)
        return len(data)
    prefix = data[: len(SEGMENT_MAGIC)]
    try:
        check_segment_magic(prefix)
        return len(SEGMENT_MAGIC)
    except TraceFormatError as exc:
        # One flipped bit can forge a "future version"; salvage decides
        # by frame CRCs, not by 2 unprotected preamble bytes.
        scan.issues.append(
            SalvageIssue(
                kind="version-mismatch",
                segment=name,
                offset=0,
                n_bytes_skipped=len(SEGMENT_MAGIC),
                detail=str(exc),
            )
        )
    except TraceStoreError as exc:
        scan.issues.append(
            SalvageIssue(
                kind="bad-magic",
                segment=name,
                offset=0,
                n_bytes_skipped=len(SEGMENT_MAGIC),
                detail=str(exc),
            )
        )
    scan.n_bytes_skipped += len(SEGMENT_MAGIC)
    return len(SEGMENT_MAGIC)


def scan_segment(
    data: bytes,
    name: str = "",
    *,
    header: SegmentHeader | None = None,
) -> SegmentScan:
    """Salvage every intact record from one segment's bytes.

    Never raises on corrupt content: all damage lands in
    ``SegmentScan.issues``.  (Programming errors — e.g. a non-bytes
    argument — still raise normally.)

    Args:
        data: The full segment file content, however torn.
        name: File name used in issue records.
        header: Fallback stream header from a sibling segment, used to
            decode packets when this segment's own header frame was
            destroyed.
    """
    scan = SegmentScan(name=name, header=None, n_bytes=len(data))
    pos = _scan_magic(data, name, scan)
    fallback_header = header
    while pos < len(data):
        # Realign on the sync marker if the expected frame start is gone.
        if data[pos: pos + len(FRAME_SYNC)] != FRAME_SYNC:
            next_sync = data.find(FRAME_SYNC, pos + 1)
            skipped = (next_sync if next_sync != -1 else len(data)) - pos
            at_eof = next_sync == -1
            scan.issues.append(
                SalvageIssue(
                    kind="torn-tail" if at_eof else "desync",
                    segment=name,
                    offset=pos,
                    n_bytes_skipped=skipped,
                    detail="no sync marker at expected frame boundary",
                )
            )
            scan.n_bytes_skipped += skipped
            if at_eof:
                break
            pos = next_sync
            continue
        if pos + FRAME_HEADER_BYTES > len(data):
            skipped = len(data) - pos
            scan.issues.append(
                SalvageIssue(
                    kind="torn-tail",
                    segment=name,
                    offset=pos,
                    n_bytes_skipped=skipped,
                    detail="file ends inside a frame header",
                )
            )
            scan.n_bytes_skipped += skipped
            break
        kind, length, crc = unpack_frame_header(
            data[pos + len(FRAME_SYNC): pos + FRAME_HEADER_BYTES]
        )
        if length > MAX_PAYLOAD_BYTES or kind not in (KIND_HEADER, KIND_PACKET):
            issue_kind = "bad-length" if length > MAX_PAYLOAD_BYTES else "bad-kind"
            pos = _resync(data, name, scan, pos, issue_kind,
                          f"kind={kind} length={length}")
            continue
        frame_end = pos + FRAME_HEADER_BYTES + length
        if frame_end > len(data):
            # Either the crash cut the final frame, or a flipped length
            # byte points past EOF; more data after the next sync means
            # the latter.
            if data.find(FRAME_SYNC, pos + len(FRAME_SYNC)) == -1:
                skipped = len(data) - pos
                scan.issues.append(
                    SalvageIssue(
                        kind="torn-tail",
                        segment=name,
                        offset=pos,
                        n_bytes_skipped=skipped,
                        detail=(
                            f"frame needs {frame_end - len(data)} more "
                            "byte(s) than the file holds"
                        ),
                    )
                )
                scan.n_bytes_skipped += skipped
                break
            pos = _resync(data, name, scan, pos, "bad-length",
                          f"length {length} overshoots end of file")
            continue
        payload = data[pos + FRAME_HEADER_BYTES: frame_end]
        if payload_crc(payload) != crc:
            pos = _resync(data, name, scan, pos, "crc-mismatch",
                          f"{length}-byte payload failed its CRC")
            continue
        # Frame verified; decode it.
        if kind == KIND_HEADER:
            try:
                scan.header = decode_header_payload(payload)
            except TraceStoreError as exc:
                scan.issues.append(
                    SalvageIssue(
                        kind="bad-header",
                        segment=name,
                        offset=pos,
                        n_bytes_skipped=FRAME_HEADER_BYTES + length,
                        detail=str(exc),
                    )
                )
                scan.n_bytes_skipped += FRAME_HEADER_BYTES + length
        else:
            decode_with = scan.header if scan.header is not None else fallback_header
            if decode_with is None:
                scan.issues.append(
                    SalvageIssue(
                        kind="missing-header",
                        segment=name,
                        offset=pos,
                        n_bytes_skipped=FRAME_HEADER_BYTES + length,
                        n_records_lost=1,
                        detail="intact packet record but no header to decode it",
                    )
                )
                scan.n_bytes_skipped += FRAME_HEADER_BYTES + length
                scan.n_records_lost += 1
            else:
                try:
                    scan.packets.append(
                        decode_packet_payload(payload, decode_with)
                    )
                except TraceStoreError as exc:
                    scan.issues.append(
                        SalvageIssue(
                            kind="bad-payload",
                            segment=name,
                            offset=pos,
                            n_bytes_skipped=FRAME_HEADER_BYTES + length,
                            n_records_lost=1,
                            detail=str(exc),
                        )
                    )
                    scan.n_bytes_skipped += FRAME_HEADER_BYTES + length
                    scan.n_records_lost += 1
        pos = frame_end
    return scan


def _resync(
    data: bytes,
    name: str,
    scan: SegmentScan,
    pos: int,
    issue_kind: str,
    detail: str,
) -> int:
    """Record a corrupt region and return the next plausible frame start."""
    next_sync = data.find(FRAME_SYNC, pos + len(FRAME_SYNC))
    end = next_sync if next_sync != -1 else len(data)
    scan.issues.append(
        SalvageIssue(
            kind=issue_kind,
            segment=name,
            offset=pos,
            n_bytes_skipped=end - pos,
            detail=detail,
        )
    )
    scan.n_bytes_skipped += end - pos
    return end


class TraceReader:
    """Read a store's segments back, salvaging around any damage.

    Args:
        backend: Storage the segments live in.
        stem: Store name (segments ``{stem}-*.cst``).
        instrumentation: Optional :class:`repro.obs.Instrumentation`;
            records ``store_records_salvaged_total``,
            ``store_records_skipped_total`` and
            ``store_bytes_skipped_total``.
    """

    def __init__(
        self,
        backend: StorageBackend,
        stem: str,
        *,
        instrumentation: Instrumentation | None = None,
    ):
        if not stem:
            raise TraceStoreError("store stem must be non-empty")
        self._backend = backend
        self._stem = str(stem)
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )

    def segment_names(self) -> list[str]:
        """The store's segment files, in segment order.

        Enumerated from the backend, not the index sidecar — a stale
        index after a crash must not hide the torn segment.
        """
        prefix = f"{self._stem}-"
        return [
            name
            for name in self._backend.list_names()
            if name.startswith(prefix) and name.endswith(".cst")
        ]

    def scan(self) -> tuple[list[SegmentScan], SalvageReport]:
        """Salvage every segment; return per-segment scans + the report.

        Raises:
            TraceStoreError: The store has no segments at all (a missing
                store is a caller error, not salvageable damage).
        """
        names = self.segment_names()
        if not names:
            raise TraceStoreError(
                f"store {self._stem!r} has no segments in this backend"
            )
        scans: list[SegmentScan] = []
        carry_header: SegmentHeader | None = None
        for name in names:
            data = self._backend.read_bytes(name)
            scan = scan_segment(data, name, header=carry_header)
            if scan.header is not None:
                carry_header = scan.header
            scans.append(scan)
        report = SalvageReport(
            n_segments_scanned=len(scans),
            n_records_recovered=sum(len(s.packets) for s in scans),
            n_records_lost=sum(s.n_records_lost for s in scans),
            n_bytes_scanned=sum(s.n_bytes for s in scans),
            n_bytes_skipped=sum(s.n_bytes_skipped for s in scans),
            issues=tuple(
                issue for s in scans for issue in s.issues
            ),
        )
        self._obs.count(
            "store_records_salvaged_total",
            amount=report.n_records_recovered,
            labels={"stem": self._stem},
            help_text="Packet records recovered by salvage scans.",
        )
        self._obs.count(
            "store_records_skipped_total",
            amount=report.n_records_lost,
            labels={"stem": self._stem},
            help_text="Intact records that could not be decoded.",
        )
        self._obs.count(
            "store_bytes_skipped_total",
            amount=report.n_bytes_skipped,
            labels={"stem": self._stem},
            help_text="Bytes inside unrecoverable segment regions.",
        )
        return scans, report

    def read_packets(
        self,
    ) -> tuple[list[tuple[float, ComplexArray]], SegmentHeader | None,
               SalvageReport]:
        """All recovered packets across segments, in store order."""
        scans, report = self.scan()
        packets = [pkt for scan in scans for pkt in scan.packets]
        header = next(
            (scan.header for scan in scans if scan.header is not None), None
        )
        return packets, header, report

    def iter_packets(self) -> Iterator[tuple[float, ComplexArray]]:
        """Iterate recovered packets lazily, one segment at a time."""
        carry_header: SegmentHeader | None = None
        for name in self.segment_names():
            scan = scan_segment(
                self._backend.read_bytes(name), name, header=carry_header
            )
            if scan.header is not None:
                carry_header = scan.header
            yield from scan.packets

    def read_trace(self, *, strict: bool = False) -> tuple[CSITrace, SalvageReport]:
        """Assemble every recovered record into one :class:`CSITrace`.

        Args:
            strict: Passed through to the trace constructor; the default
                ``False`` accepts salvaged streams whose surviving
                timestamps may straddle a hole.

        Raises:
            TraceStoreError: Nothing recoverable — no usable header or
                zero intact records (the report is attached as
                ``exc.report``).
        """
        packets, header, report = self.read_packets()
        if header is None or not packets:
            exc = TraceStoreError(
                f"store {self._stem!r} yielded no recoverable records "
                f"({len(report.issues)} issue(s) found)"
            )
            exc.report = report  # type: ignore[attr-defined]
            raise exc
        csi = np.stack([pkt[1] for pkt in packets])
        timestamps_s = np.asarray([pkt[0] for pkt in packets], dtype=float)
        meta = dict(header.meta)
        meta["salvage"] = report.to_jsonable()
        trace = CSITrace(
            csi=csi,
            timestamps_s=timestamps_s,
            sample_rate_hz=header.sample_rate_hz,
            subcarrier_indices=np.asarray(header.subcarrier_indices, dtype=int),
            meta=meta,
            strict=strict,
        )
        return trace, report
