"""Replay a recorded store as a live packet source.

:class:`ReplayPacketSource` implements the service's
:class:`~repro.service.sources.PacketSource` protocol over a salvaged
store, so anything that consumes live capture — a bare
:class:`~repro.core.streaming.StreamingMonitor`, a supervised subject,
the fleet gateway — can be driven from a recording instead.  Delivery
advances the shared :class:`~repro.service.clock.SimulatedClock` to each
packet's original capture time, exactly like
:class:`~repro.service.sources.TracePacketSource`; since nothing in the
service waits on wall time, a recorded hour replays as fast as the CPU
can push packets, which is what makes backtesting faster than real time
(the ``replay_speedup_ratio`` gauge is the recorded duration divided by
the wall seconds the replay took, measured by the caller with a
:class:`~repro.obs.clock.WallClock`).

The source reads through :class:`~repro.store.reader.TraceReader`, so a
torn or corrupted store replays its recoverable prefix and the
:attr:`salvage_report` says what was lost — a crashed recording is still
a usable backtest input.
"""

from __future__ import annotations

import numpy as np

from ..contracts import ComplexArray
from ..errors import TraceStoreError
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from ..service.clock import SimulatedClock
from ..service.sources import Packet
from .backend import StorageBackend
from .format import SegmentHeader
from .reader import SalvageReport, TraceReader

__all__ = ["ReplayPacketSource"]


class ReplayPacketSource:
    """Replay a recorded store through the ``PacketSource`` protocol.

    Packets are salvaged eagerly at construction (a replay wants the
    whole recoverable stream up front, and the salvage report before the
    first packet), then delivered one per :meth:`next_packet` call with
    the clock advanced to each packet's capture time.

    Args:
        backend: Storage the recording lives in.
        stem: Store name.
        clock: The service clock to advance.
        start_at_s: Skip records captured before this time — how a
            source rebuilt after a crash resumes "live".
        instrumentation: Optional :class:`repro.obs.Instrumentation`;
            records ``replay_records_total`` as packets are delivered
            (plus the reader's salvage counters at construction).

    Raises:
        TraceStoreError: The store has no segments, or salvage recovered
            nothing at all.
    """

    def __init__(
        self,
        backend: StorageBackend,
        stem: str,
        clock: SimulatedClock,
        *,
        start_at_s: float | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        self._clock = clock
        self._stem = str(stem)
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        reader = TraceReader(backend, stem, instrumentation=instrumentation)
        packets, header, report = reader.read_packets()
        if header is None or not packets:
            exc = TraceStoreError(
                f"store {stem!r} has no replayable records "
                f"({len(report.issues)} salvage issue(s))"
            )
            exc.report = report  # type: ignore[attr-defined]
            raise exc
        self._header = header
        self._report = report
        self._packets = packets
        self._index = 0
        if start_at_s is not None:
            timestamps = np.asarray([p[0] for p in packets], dtype=float)
            self._index = int(
                np.searchsorted(timestamps, float(start_at_s), side="left")
            )

    @property
    def header(self) -> SegmentHeader:
        """The recorded stream's header (geometry, rate, metadata)."""
        return self._header

    @property
    def salvage_report(self) -> SalvageReport:
        """What the salvage pass found while loading this store."""
        return self._report

    @property
    def sample_rate_hz(self) -> float:
        """Nominal packet rate of the recorded stream."""
        return self._header.sample_rate_hz

    @property
    def n_packets_total(self) -> int:
        """Recoverable packets in the store (before ``start_at_s``
        filtering)."""
        return len(self._packets)

    @property
    def duration_s(self) -> float:
        """Recorded time span of the replayable packets."""
        if len(self._packets) < 2:
            return 0.0
        return float(self._packets[-1][0] - self._packets[0][0])

    @property
    def exhausted(self) -> bool:
        """True once every recovered packet has been delivered."""
        return self._index >= len(self._packets)

    def next_packet(self) -> Packet | None:
        """Deliver the next recorded packet at its original timestamp."""
        if self.exhausted:
            return None
        timestamp_s, csi = self._packets[self._index]
        self._index += 1
        self._clock.advance_to(timestamp_s)
        self._obs.count(
            "replay_records_total",
            labels={"stem": self._stem},
            help_text="Recorded packets delivered by replay sources.",
        )
        return Packet(csi=csi, timestamp_s=timestamp_s)

    def rewind(self, *, start_at_s: float | None = None) -> None:
        """Reset delivery to the start (or to ``start_at_s``).

        The clock is *not* moved backward — it cannot be; rewinding is
        for replaying the same store into a fresh clock/session.
        """
        if start_at_s is None:
            self._index = 0
            return
        timestamps = np.asarray([p[0] for p in self._packets], dtype=float)
        self._index = int(
            np.searchsorted(timestamps, float(start_at_s), side="left")
        )

    def csi_matrix(self) -> ComplexArray:
        """All recovered CSI stacked ``(n_packets, n_rx, n_subcarriers)``."""
        return np.stack([csi for _, csi in self._packets])
