"""Crash-safe CSI trace store: append-only segments, salvage, replay.

The storage layer the service records through and backtests from:

* :mod:`~repro.store.format` — the CRC-framed ``.cst`` segment format;
* :mod:`~repro.store.backend` — directory / in-memory storage backends;
* :mod:`~repro.store.writer` — crash-safe :class:`TraceWriter` with
  segment rotation and explicit durability boundaries;
* :mod:`~repro.store.reader` — salvaging :class:`TraceReader` that
  recovers every intact record from torn files and reports the rest;
* :mod:`~repro.store.faults` — seeded storage fault injection (torn
  writes, bit flips, short reads);
* :mod:`~repro.store.replay` — :class:`ReplayPacketSource` driving the
  service at N× real time from a recorded store;
* :mod:`~repro.store.tap` — :class:`RecordingTap` wrapping any packet
  source with a write-through recorder;
* :mod:`~repro.store.backtest` — replay a committed scenario corpus and
  diff accuracy/health against baselines;
* :mod:`~repro.store.memo` — content-keyed memoization of calibration
  and subcarrier selection over recorded stores.
"""

from .backend import DirectoryBackend, MemoryBackend, StorageBackend
from .faults import FaultyBackend, FaultyFile, TornWriteFile
from .format import SegmentHeader
from .memo import StoreCalibrationMemo, store_digest
from .reader import SalvageIssue, SalvageReport, TraceReader, scan_segment
from .replay import ReplayPacketSource
from .tap import RecordingTap
from .writer import TraceWriter

__all__ = [
    "StorageBackend",
    "DirectoryBackend",
    "MemoryBackend",
    "SegmentHeader",
    "TraceWriter",
    "TraceReader",
    "SalvageIssue",
    "SalvageReport",
    "scan_segment",
    "TornWriteFile",
    "FaultyFile",
    "FaultyBackend",
    "ReplayPacketSource",
    "RecordingTap",
    "StoreCalibrationMemo",
    "store_digest",
]
