"""Crash-safe, append-only trace writing with segment rotation.

:class:`TraceWriter` appends CSI packets to ``.cst`` segment files
through a :class:`~repro.store.backend.StorageBackend`, rotating to a
new segment when the current one reaches its byte budget, and keeping a
``.cidx`` JSON index sidecar that maps the store at a glance.

Durability model
----------------

The writer has exactly one durability boundary: :meth:`flush`.  Records
appended since the last flush may be lost — or half-written (*torn*) —
if the process dies.  ``flush`` pushes bytes to the backing store
durably (``fsync`` on the directory backend) and then atomically
rewrites the index sidecar, so the index never claims records that are
not safely on disk.  The index is advisory: the salvaging reader
enumerates segments from the backend and trusts only per-frame CRCs, so
a stale or missing index costs nothing but a convenience.

Crash → restart → resume
------------------------

After a crash, a restarted process calls :func:`TraceWriter.resume`
(or passes ``resume=True``): the writer finds the highest existing
segment of the stem and starts a **new** segment after it.  It never
reopens or truncates the torn segment — append-only means the crash
evidence is preserved byte-for-byte for the salvage reader, and the
resumed stream continues cleanly in the next segment.
"""

from __future__ import annotations

import json
from typing import Any

from ..contracts import ComplexArray
from ..errors import TraceStoreError
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .backend import AppendHandle, StorageBackend
from .format import (
    KIND_HEADER,
    KIND_PACKET,
    SEGMENT_MAGIC,
    SegmentHeader,
    encode_frame,
    encode_header,
    encode_packet,
    index_name,
    segment_name,
)

__all__ = ["TraceWriter", "DEFAULT_ROTATE_BYTES"]

# Default segment byte budget.  Small enough that a lab-length recording
# rotates a few times (exercising the multi-segment read path), large
# enough that frame overhead stays negligible.
DEFAULT_ROTATE_BYTES = 1 * 1024 * 1024

_INDEX_FORMAT_VERSION = 1


class TraceWriter:
    """Append CSI packets to CRC-framed ``.cst`` segments.

    Args:
        backend: Storage to write through.
        stem: Store name; segments are ``{stem}-00000.cst`` etc. and the
            index sidecar is ``{stem}.cidx``.
        session_id: Recording-session name stamped into every header.
        n_rx: Receive antennas per packet.
        n_subcarriers: Subcarriers per packet.
        sample_rate_hz: Nominal packet rate of the recorded stream.
        subcarrier_indices: The m_i index of each reported subcarrier.
        csi_dtype: Stored CSI dtype (``"complex64"`` default).
        meta: Free-form JSON-safe metadata stamped into every header.
        rotate_bytes: Byte budget per segment; the packet that would
            cross it goes into a fresh segment instead.
        resume: Continue an existing store — start a new segment after
            the highest one present instead of failing on collision.
        instrumentation: Optional :class:`repro.obs.Instrumentation` for
            ``store_*`` counters.
    """

    def __init__(
        self,
        backend: StorageBackend,
        stem: str,
        *,
        session_id: str = "",
        n_rx: int,
        n_subcarriers: int,
        sample_rate_hz: float,
        subcarrier_indices: tuple[int, ...] | list[int],
        csi_dtype: str = "complex64",
        meta: dict[str, Any] | None = None,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        resume: bool = False,
        instrumentation: Instrumentation | None = None,
    ):
        if not stem:
            raise TraceStoreError("store stem must be non-empty")
        if rotate_bytes < 4096:
            raise TraceStoreError(
                f"rotate_bytes must be >= 4096, got {rotate_bytes}"
            )
        self._backend = backend
        self._stem = str(stem)
        self._session_id = str(session_id)
        self._n_rx = int(n_rx)
        self._n_subcarriers = int(n_subcarriers)
        self._sample_rate_hz = float(sample_rate_hz)
        self._subcarrier_indices = tuple(int(i) for i in subcarrier_indices)
        self._csi_dtype = str(csi_dtype)
        self._meta = dict(meta) if meta is not None else {}
        self._rotate_bytes = int(rotate_bytes)
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )

        self._closed = False
        self._handle: AppendHandle | None = None
        self._segment_index = -1
        # Per-segment accounting of what we have *attempted* to append;
        # durable truth is whatever survives on the backend.
        self._segment_bytes = 0
        self._segment_records = 0
        self._segment_first_ts: float | None = None
        self._segment_last_ts: float | None = None
        # Completed segments' index rows (only flushed state goes in).
        self._index_rows: list[dict[str, Any]] = []
        self._records_total = 0

        first_index = 0
        if resume:
            first_index = self._next_free_segment_index()
            self._index_rows = self._load_prior_index_rows(first_index)
        elif backend.exists(segment_name(self._stem, 0)):
            raise TraceStoreError(
                f"store {self._stem!r} already has segments; pass resume=True "
                "to continue it after a crash or restart"
            )
        self._open_segment(first_index)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def resume(
        cls,
        backend: StorageBackend,
        stem: str,
        *,
        session_id: str = "",
        n_rx: int,
        n_subcarriers: int,
        sample_rate_hz: float,
        subcarrier_indices: tuple[int, ...] | list[int],
        csi_dtype: str = "complex64",
        meta: dict[str, Any] | None = None,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        instrumentation: Instrumentation | None = None,
    ) -> "TraceWriter":
        """Reopen an existing store after a crash and keep recording.

        Equivalent to the constructor with ``resume=True``; reads the
        highest existing segment index and starts the next one.  The
        torn segment, if any, is left untouched for salvage.
        """
        return cls(
            backend,
            stem,
            session_id=session_id,
            n_rx=n_rx,
            n_subcarriers=n_subcarriers,
            sample_rate_hz=sample_rate_hz,
            subcarrier_indices=subcarrier_indices,
            csi_dtype=csi_dtype,
            meta=meta,
            rotate_bytes=rotate_bytes,
            resume=True,
            instrumentation=instrumentation,
        )

    def _next_free_segment_index(self) -> int:
        prefix = f"{self._stem}-"
        highest = -1
        for name in self._backend.list_names():
            if not (name.startswith(prefix) and name.endswith(".cst")):
                continue
            digits = name[len(prefix):-len(".cst")]
            if digits.isdigit():
                highest = max(highest, int(digits))
        return highest + 1

    def _load_prior_index_rows(self, first_index: int) -> list[dict[str, Any]]:
        """Carry forward index rows for segments that predate this writer."""
        sidecar = index_name(self._stem)
        if not self._backend.exists(sidecar):
            return []
        try:
            data = json.loads(self._backend.read_bytes(sidecar).decode("utf-8"))
            rows = [
                dict(row)
                for row in data.get("segments", [])
                if int(row.get("segment_index", -1)) < first_index
            ]
            return rows
        except (UnicodeDecodeError, json.JSONDecodeError, TypeError,
                ValueError):
            # A torn index after a crash is expected; segments remain the
            # source of truth, so resume with an empty prior index.
            return []

    # -- segment lifecycle ----------------------------------------------------

    def _open_segment(self, index: int) -> None:
        header = SegmentHeader(
            session_id=self._session_id,
            segment_index=index,
            n_rx=self._n_rx,
            n_subcarriers=self._n_subcarriers,
            csi_dtype=self._csi_dtype,
            sample_rate_hz=self._sample_rate_hz,
            subcarrier_indices=self._subcarrier_indices,
            meta=self._meta,
        )
        self._header = header
        name = segment_name(self._stem, index)
        handle = self._backend.open_append(name)
        preamble = SEGMENT_MAGIC + encode_frame(KIND_HEADER, encode_header(header))
        handle.write(preamble)
        self._handle = handle
        self._segment_index = index
        self._segment_bytes = len(preamble)
        self._segment_records = 0
        self._segment_first_ts = None
        self._segment_last_ts = None

    def _rotate(self) -> None:
        assert self._handle is not None
        self._handle.flush()
        self._finish_current_segment_row()
        self._handle.close()
        self._write_index()
        self._open_segment(self._segment_index + 1)
        self._obs.count(
            "store_segments_rotated_total",
            labels={"stem": self._stem},
            help_text="Segment files closed because they hit the byte budget.",
        )

    def _finish_current_segment_row(self) -> None:
        self._index_rows.append(
            {
                "segment_index": self._segment_index,
                "name": segment_name(self._stem, self._segment_index),
                "n_records": self._segment_records,
                "n_bytes": self._segment_bytes,
                "first_timestamp_s": self._segment_first_ts,
                "last_timestamp_s": self._segment_last_ts,
            }
        )

    def _write_index(self) -> None:
        """Atomically rewrite the ``.cidx`` sidecar from flushed state."""
        payload = {
            "index_format_version": _INDEX_FORMAT_VERSION,
            "stem": self._stem,
            "session_id": self._session_id,
            "n_rx": self._n_rx,
            "n_subcarriers": self._n_subcarriers,
            "csi_dtype": self._csi_dtype,
            "sample_rate_hz": self._sample_rate_hz,
            "segments": self._index_rows,
        }
        self._backend.replace_bytes(
            index_name(self._stem),
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            ),
        )

    # -- public surface -------------------------------------------------------

    @property
    def stem(self) -> str:
        """The store name this writer appends to."""
        return self._stem

    @property
    def segment_index(self) -> int:
        """Index of the segment currently being appended to."""
        return self._segment_index

    @property
    def n_records_written(self) -> int:
        """Records appended across all segments by this writer instance."""
        return self._records_total

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed."""
        return self._closed

    def append(self, csi: ComplexArray, timestamp_s: float) -> None:
        """Append one packet; rotates first if it would cross the budget.

        The record is *not* durable until the next :meth:`flush` (or
        rotation/close, which flush implicitly).

        Raises:
            TraceStoreError: The writer is closed, or the packet's
                geometry disagrees with the store's.
            TornWriteError: Propagated unchanged from a fault-injecting
                backend — the simulated crash point.
        """
        if self._closed or self._handle is None:
            raise TraceStoreError("append to a closed TraceWriter")
        frame = encode_frame(
            KIND_PACKET, encode_packet(csi, timestamp_s, self._header)
        )
        if self._segment_bytes + len(frame) > self._rotate_bytes and (
            self._segment_records > 0
        ):
            self._rotate()
        self._handle.write(frame)
        self._segment_bytes += len(frame)
        self._segment_records += 1
        self._records_total += 1
        ts = float(timestamp_s)
        if self._segment_first_ts is None:
            self._segment_first_ts = ts
        self._segment_last_ts = ts
        self._obs.count(
            "store_records_written_total",
            labels={"stem": self._stem},
            help_text="Packet records appended to trace segments.",
        )

    def flush(self) -> None:
        """Durability boundary: persist pending bytes, then the index.

        After ``flush`` returns, every record appended so far survives a
        crash intact (on the directory backend this is ``fsync``).
        """
        if self._closed or self._handle is None:
            raise TraceStoreError("flush on a closed TraceWriter")
        self._handle.flush()
        # The current segment's row is provisional: rewrite it in place
        # so the index reflects flushed reality.
        rows = list(self._index_rows)
        self._finish_current_segment_row()
        try:
            self._write_index()
        finally:
            self._index_rows = rows
        self._obs.count(
            "store_flushes_total",
            labels={"stem": self._stem},
            help_text="Explicit durability boundaries taken by writers.",
        )

    def close(self) -> None:
        """Flush, finalize the index, and release the segment handle."""
        if self._closed:
            return
        assert self._handle is not None
        self._handle.flush()
        self._finish_current_segment_row()
        self._handle.close()
        self._handle = None
        self._closed = True
        self._write_index()

    def abandon(self) -> None:
        """Release the handle without flushing — the crash path.

        Used by fault-injection tests and the chaos recorder to model a
        process death: whatever the backend already accepted stays,
        nothing else is written, and the index is left stale.
        """
        if self._closed:
            return
        self._closed = True
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except TraceStoreError:
                # A torn handle may refuse even close(); the bytes that
                # reached the backend are all that matters here.
                pass

    def __enter__(self) -> "TraceWriter":
        """Context-manager support: ``with TraceWriter(...) as w:``."""
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        """Close on clean exit; abandon if an exception is in flight."""
        if exc_type is None:
            self.close()
        else:
            self.abandon()
