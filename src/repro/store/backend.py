"""Storage backends for the trace store.

The writer and reader never touch the filesystem directly; they go
through a :class:`StorageBackend`, a minimal append/read/replace surface
with two implementations:

* :class:`DirectoryBackend` — real files in one directory, with
  ``fsync`` durability on flush and atomic replace for the index
  sidecar.  This is what production recording uses.
* :class:`MemoryBackend` — a ``dict`` of named byte arrays.  Chaos and
  sanitize runs record through this backend so a seeded scenario is
  byte-reproducible and leaves nothing on disk.

The fault-injection layer (:mod:`repro.store.faults`) wraps whichever
backend sits underneath, so torn writes and bit flips can be injected
against either one.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

from ..errors import TraceStoreError

__all__ = [
    "AppendHandle",
    "StorageBackend",
    "DirectoryBackend",
    "MemoryBackend",
]


@runtime_checkable
class AppendHandle(Protocol):
    """An open, append-only destination for one segment file."""

    def write(self, data: bytes) -> int:
        """Append ``data``; return the number of bytes written."""
        ...

    def flush(self) -> None:
        """Push buffered bytes to the backing store durably."""
        ...

    def close(self) -> None:
        """Flush and release the handle."""
        ...


class StorageBackend(Protocol):
    """The surface the trace store needs from its storage.

    Deliberately tiny: open-for-append, read-whole-file, atomic replace
    (for the index sidecar), existence check, and listing.  No seek, no
    partial reads — the salvaging reader always wants the whole
    segment, and the writer only ever appends.
    """

    def open_append(self, name: str) -> AppendHandle:
        """Open ``name`` for appending, creating it if absent."""
        ...

    def read_bytes(self, name: str) -> bytes:
        """Return the full current content of ``name``.

        Raises:
            TraceStoreError: ``name`` does not exist.
        """
        ...

    def replace_bytes(self, name: str, data: bytes) -> None:
        """Atomically replace ``name`` with ``data`` (whole-file swap)."""
        ...

    def exists(self, name: str) -> bool:
        """Whether ``name`` currently exists."""
        ...

    def list_names(self) -> list[str]:
        """All names in the store, sorted."""
        ...


class _FileAppendHandle:
    """Append handle over a real file descriptor with fsync durability."""

    def __init__(self, path: str):
        self._fh = open(path, "ab")
        self._closed = False

    def write(self, data: bytes) -> int:
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        finally:
            self._fh.close()


class DirectoryBackend:
    """Real files under one directory.

    Args:
        root: Directory holding the store's files; created if absent.
    """

    def __init__(self, root: str):
        self._root = str(root)
        os.makedirs(self._root, exist_ok=True)

    @property
    def root(self) -> str:
        """The directory this backend stores files under."""
        return self._root

    def _path(self, name: str) -> str:
        if os.sep in name or name in ("", ".", ".."):
            raise TraceStoreError(f"invalid store file name {name!r}")
        return os.path.join(self._root, name)

    def open_append(self, name: str) -> AppendHandle:
        """Open ``name`` for appending with fsync-on-flush durability."""
        return _FileAppendHandle(self._path(name))

    def read_bytes(self, name: str) -> bytes:
        """Read the whole file, tolerating nothing but absence."""
        path = self._path(name)
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except FileNotFoundError as exc:
            raise TraceStoreError(f"no such store file: {name}") from exc

    def replace_bytes(self, name: str, data: bytes) -> None:
        """Write-to-temp + fsync + rename, so readers never see a torn index."""
        path = self._path(name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def exists(self, name: str) -> bool:
        """Whether the file currently exists on disk."""
        return os.path.exists(self._path(name))

    def list_names(self) -> list[str]:
        """Sorted file names in the store directory."""
        return sorted(
            entry
            for entry in os.listdir(self._root)
            if os.path.isfile(os.path.join(self._root, entry))
        )


class _MemoryAppendHandle:
    """Append handle over a shared in-memory byte array."""

    def __init__(self, buffer: bytearray):
        self._buffer = buffer
        self._closed = False

    def write(self, data: bytes) -> int:
        if self._closed:
            raise TraceStoreError("write to a closed append handle")
        self._buffer.extend(data)
        return len(data)

    def flush(self) -> None:
        return None

    def close(self) -> None:
        self._closed = True


class MemoryBackend:
    """In-memory backend: a dict of named byte arrays.

    Used by chaos scenarios and the sanitizer so seeded recording runs
    are byte-reproducible and hermetic.  Also the natural target for
    fault-injection tests that need to corrupt stored bytes directly.
    """

    def __init__(self) -> None:
        self._files: dict[str, bytearray] = {}

    def open_append(self, name: str) -> AppendHandle:
        """Open ``name`` for appending, creating the buffer if absent."""
        buffer = self._files.setdefault(name, bytearray())
        return _MemoryAppendHandle(buffer)

    def read_bytes(self, name: str) -> bytes:
        """Snapshot the current content of ``name``."""
        try:
            return bytes(self._files[name])
        except KeyError as exc:
            raise TraceStoreError(f"no such store file: {name}") from exc

    def replace_bytes(self, name: str, data: bytes) -> None:
        """Atomically swap the whole buffer."""
        self._files[name] = bytearray(data)

    def exists(self, name: str) -> bool:
        """Whether a buffer with this name exists."""
        return name in self._files

    def list_names(self) -> list[str]:
        """Sorted buffer names."""
        return sorted(self._files)

    def corrupt(self, name: str, offset: int, new_byte: int) -> None:
        """Overwrite one stored byte — test hook for targeted bit flips.

        Raises:
            TraceStoreError: ``name`` is absent or ``offset`` out of range.
        """
        if name not in self._files:
            raise TraceStoreError(f"no such store file: {name}")
        buffer = self._files[name]
        if not 0 <= offset < len(buffer):
            raise TraceStoreError(
                f"corrupt offset {offset} outside file of {len(buffer)} bytes"
            )
        buffer[offset] = new_byte & 0xFF

    def truncate(self, name: str, length: int) -> None:
        """Cut ``name`` to ``length`` bytes — test hook for torn tails."""
        if name not in self._files:
            raise TraceStoreError(f"no such store file: {name}")
        del self._files[name][max(0, int(length)):]
