"""Replay-backtesting: run a committed corpus through the pipeline.

A *corpus* is a directory of recorded stores plus a ``manifest.json``
naming each scenario's expected vital-sign baseline::

    corpus/
      manifest.json
      lab-still/            one store: trace-00000.cst ... + trace.cidx
      lab-two-person/       ...

:func:`run_backtest` replays every scenario through the supervised
monitoring service (:class:`~repro.service.supervisor.MonitorSupervisor`
fed by :class:`~repro.store.replay.ReplayPacketSource` on a
:class:`~repro.service.clock.SimulatedClock`), compares the median
estimate against the manifest baseline, and reports pass/fail per
scenario — the regression gate ``repro-phasebeat backtest`` exposes.

Because replay time is simulated, a backtest runs as fast as the CPU
allows; the report includes the measured wall-time speedup
(recorded seconds per wall second, also exported as the
``replay_speedup_ratio`` gauge).

This module deliberately does not import the fleet layer: a backtest is
a solo-session evaluation harness, and keeping it fleet-free keeps the
import graph acyclic (``repro.service.fleet`` imports the store for its
recording chaos scenario).
"""

from __future__ import annotations

import json
import math
import os
import statistics
from dataclasses import dataclass, field
from typing import Any

from ..core.breathing import PeakBreathingEstimator
from ..core.dwt_stage import decompose
from ..core.streaming import StreamingConfig
from ..errors import ReproError, TraceStoreError
from ..obs import Instrumentation, NULL_INSTRUMENTATION
from ..obs.clock import Clock, WallClock
from ..service.clock import SimulatedClock
from ..service.sources import PacketSource
from ..service.supervisor import MonitorSupervisor, SupervisorConfig
from .backend import DirectoryBackend
from .memo import StoreCalibrationMemo
from .reader import TraceReader
from .replay import ReplayPacketSource

__all__ = [
    "ScenarioBaseline",
    "ScenarioResult",
    "BacktestReport",
    "load_manifest",
    "run_backtest",
    "DEFAULT_BACKTEST_STREAMING",
]

MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT_VERSION = 1

# Corpus traces are short lab captures; the service defaults (30 s
# windows) would yield no estimates, so backtests use the fleet-style
# short-window configuration unless the caller overrides it.
DEFAULT_BACKTEST_STREAMING = StreamingConfig(window_s=8.0, hop_s=4.0)


@dataclass(frozen=True)
class ScenarioBaseline:
    """Expected outcome of replaying one corpus scenario.

    Attributes:
        name: Scenario (and store directory) name.
        expected_breathing_bpm: Ground-truth breathing rate the median
            estimate is compared against.
        tolerance_bpm: Maximum |median − expected| before the scenario
            fails with ``rate-regression``.
        min_estimates: Minimum usable (fresh, non-NaN) estimates the
            replay must produce.
    """

    name: str
    expected_breathing_bpm: float
    tolerance_bpm: float = 0.5
    min_estimates: int = 1

    def __post_init__(self) -> None:
        if self.expected_breathing_bpm <= 0:
            raise TraceStoreError(
                f"scenario {self.name!r}: expected_breathing_bpm must be "
                f"positive, got {self.expected_breathing_bpm}"
            )
        if self.tolerance_bpm <= 0:
            raise TraceStoreError(
                f"scenario {self.name!r}: tolerance_bpm must be positive"
            )
        if self.min_estimates < 1:
            raise TraceStoreError(
                f"scenario {self.name!r}: min_estimates must be >= 1"
            )

    @classmethod
    def from_dict(cls, name: str, data: dict[str, Any]) -> "ScenarioBaseline":
        """Build from one ``manifest.json`` scenario entry."""
        known = {
            "expected_breathing_bpm",
            "tolerance_bpm",
            "min_estimates",
        }
        unknown = set(data) - known
        if unknown:
            raise TraceStoreError(
                f"scenario {name!r}: unknown manifest keys {sorted(unknown)}"
            )
        try:
            return cls(
                name=name,
                expected_breathing_bpm=float(data["expected_breathing_bpm"]),
                tolerance_bpm=float(data.get("tolerance_bpm", 0.5)),
                min_estimates=int(data.get("min_estimates", 1)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceStoreError(
                f"scenario {name!r}: malformed manifest entry: {exc}"
            ) from exc


@dataclass
class ScenarioResult:
    """Outcome of replaying one scenario against its baseline.

    Attributes:
        name: Scenario name.
        n_records: Packets replayed (after salvage).
        recorded_duration_s: Time span of the recording.
        n_estimates: Usable (fresh, non-NaN) estimates emitted.
        median_bpm: Median usable breathing estimate (NaN when none).
        error_bpm: |median − expected| (NaN when no estimates).
        wall_s: Wall seconds the replay took.
        speedup_ratio: ``recorded_duration_s / wall_s``.
        salvage_clean: The store read back without salvage issues.
        n_salvage_issues: Issue count from the salvage pass.
        health: Final subject health string.
        failures: Machine-readable failure reasons (empty = passed).
        offline_bpm: Whole-store offline estimate computed through the
            calibration memo (``None`` when no memo was passed or the
            offline path could not estimate).
    """

    name: str
    n_records: int
    recorded_duration_s: float
    n_estimates: int
    median_bpm: float
    error_bpm: float
    wall_s: float
    speedup_ratio: float
    salvage_clean: bool
    n_salvage_issues: int
    health: str
    failures: list[str] = field(default_factory=list)
    offline_bpm: float | None = None

    @property
    def passed(self) -> bool:
        """Whether the scenario met its baseline."""
        return not self.failures

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-safe representation (NaN rates serialize as ``None``)."""
        return {
            "name": self.name,
            "n_records": self.n_records,
            "recorded_duration_s": self.recorded_duration_s,
            "n_estimates": self.n_estimates,
            "median_bpm": None if math.isnan(self.median_bpm) else self.median_bpm,
            "error_bpm": None if math.isnan(self.error_bpm) else self.error_bpm,
            "wall_s": self.wall_s,
            "speedup_ratio": self.speedup_ratio,
            "salvage_clean": self.salvage_clean,
            "n_salvage_issues": self.n_salvage_issues,
            "health": self.health,
            "failures": list(self.failures),
            "passed": self.passed,
            "offline_bpm": self.offline_bpm,
        }


@dataclass
class BacktestReport:
    """All scenario results of one backtest run.

    Attributes:
        corpus_dir: The corpus that was replayed.
        results: Per-scenario outcomes, in manifest order.
    """

    corpus_dir: str
    results: list[ScenarioResult]

    @property
    def passed(self) -> bool:
        """Whether every scenario met its baseline."""
        return all(result.passed for result in self.results)

    @property
    def overall_speedup_ratio(self) -> float:
        """Total recorded seconds per total wall second across scenarios."""
        wall = sum(result.wall_s for result in self.results)
        recorded = sum(result.recorded_duration_s for result in self.results)
        return recorded / wall if wall > 0 else float("inf")

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-safe representation of the whole report."""
        return {
            "corpus_dir": self.corpus_dir,
            "passed": self.passed,
            "overall_speedup_ratio": (
                None
                if math.isinf(self.overall_speedup_ratio)
                else self.overall_speedup_ratio
            ),
            "results": [result.to_jsonable() for result in self.results],
        }

    def format_text(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"backtest: {len(self.results)} scenario(s) in {self.corpus_dir}"]
        for r in self.results:
            status = "PASS" if r.passed else "FAIL " + ",".join(r.failures)
            median = "nan" if math.isnan(r.median_bpm) else f"{r.median_bpm:.2f}"
            error = "nan" if math.isnan(r.error_bpm) else f"{r.error_bpm:.3f}"
            lines.append(
                f"  {r.name:<24s} {status:<28s} median={median} bpm "
                f"err={error} est={r.n_estimates} "
                f"records={r.n_records} speedup={r.speedup_ratio:.1f}x"
                + ("" if r.salvage_clean else
                   f" [salvaged, {r.n_salvage_issues} issue(s)]")
            )
        lines.append(
            f"  overall: {'PASS' if self.passed else 'FAIL'}, "
            f"{self.overall_speedup_ratio:.1f}x real time"
        )
        return "\n".join(lines)


def load_manifest(
    corpus_dir: str,
) -> tuple[str, list[ScenarioBaseline]]:
    """Parse ``manifest.json``; returns ``(stem, baselines)``.

    Raises:
        TraceStoreError: The manifest is missing, unreadable, of an
            unknown format version, or has malformed entries.
    """
    path = os.path.join(corpus_dir, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise TraceStoreError(
            f"cannot read corpus manifest {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise TraceStoreError(
            f"corpus manifest {path!r} is not valid JSON: {exc}"
        ) from exc
    version = data.get("corpus_format_version")
    if version != _MANIFEST_FORMAT_VERSION:
        raise TraceStoreError(
            f"unsupported corpus manifest version {version!r} "
            f"(supported: {_MANIFEST_FORMAT_VERSION})"
        )
    stem = str(data.get("stem", "trace"))
    scenarios = data.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        raise TraceStoreError(
            f"corpus manifest {path!r} declares no scenarios"
        )
    baselines = [
        ScenarioBaseline.from_dict(name, dict(entry))
        for name, entry in scenarios.items()
    ]
    return stem, baselines


def _replay_scenario(
    corpus_dir: str,
    stem: str,
    baseline: ScenarioBaseline,
    *,
    streaming_config: StreamingConfig,
    supervisor_config: SupervisorConfig | None,
    seed: int,
    inject_bias_bpm: float,
    wall_clock: Clock,
    instrumentation: Instrumentation,
    memo: StoreCalibrationMemo | None,
) -> ScenarioResult:
    store_dir = os.path.join(corpus_dir, baseline.name)
    if not os.path.isdir(store_dir):
        raise TraceStoreError(
            f"scenario {baseline.name!r}: store directory {store_dir!r} "
            "does not exist"
        )
    backend = DirectoryBackend(store_dir)
    # Pre-scan (un-instrumented) for record counts and salvage status, so
    # the per-delivery metrics below count each record exactly once.
    _, salvage = TraceReader(backend, stem).scan()

    wall_start = wall_clock.now_s
    clock = SimulatedClock()

    def factory(start_at_s: float) -> PacketSource:
        return ReplayPacketSource(
            backend,
            stem,
            clock,
            start_at_s=start_at_s if start_at_s > 0 else None,
            instrumentation=instrumentation,
        )

    probe = ReplayPacketSource(backend, stem, clock)
    supervisor = MonitorSupervisor(
        clock=clock,
        config=supervisor_config,
        streaming_config=streaming_config,
        seed=seed,
        instrumentation=instrumentation,
    )
    supervisor.add_subject(baseline.name, factory, probe.sample_rate_hz)
    estimates = supervisor.run()[baseline.name]
    wall_s = max(wall_clock.now_s - wall_start, 1e-9)

    usable = [
        e.rate_bpm + inject_bias_bpm
        for e in estimates
        if e.fresh and e.ok
    ]
    median_bpm = statistics.median(usable) if usable else float("nan")
    error_bpm = (
        abs(median_bpm - baseline.expected_breathing_bpm)
        if usable
        else float("nan")
    )
    duration_s = probe.duration_s
    speedup = duration_s / wall_s
    instrumentation.gauge_set(
        "replay_speedup_ratio",
        speedup,
        labels={"scenario": baseline.name},
        help_text="Recorded seconds replayed per wall-clock second.",
    )
    health = supervisor.health_summary()[baseline.name]["health"]

    offline_bpm: float | None = None
    if memo is not None:
        # Offline cross-check through the content-keyed memo: repeated
        # backtests of the same (unchanged) store hit the cache instead of
        # re-running calibration + selection.
        try:
            matrix, _, rate_hz = memo.calibrated_matrix(backend, stem)
            selection = memo.selection(backend, stem)
            bands = decompose(matrix[:, selection.selected], rate_hz)
            offline_bpm = float(
                PeakBreathingEstimator().estimate_bpm(
                    bands.breathing, rate_hz
                )
            )
        except ReproError:
            offline_bpm = None

    failures: list[str] = []
    if len(usable) < baseline.min_estimates:
        failures.append("too-few-estimates")
    if usable and error_bpm > baseline.tolerance_bpm:
        failures.append("rate-regression")
    if health == "failed":
        failures.append("subject-failed")

    return ScenarioResult(
        name=baseline.name,
        n_records=probe.n_packets_total,
        recorded_duration_s=duration_s,
        n_estimates=len(usable),
        median_bpm=median_bpm,
        error_bpm=error_bpm,
        wall_s=wall_s,
        speedup_ratio=speedup,
        salvage_clean=salvage.clean,
        n_salvage_issues=len(salvage.issues),
        health=str(health),
        failures=failures,
        offline_bpm=offline_bpm,
    )


def run_backtest(
    corpus_dir: str,
    *,
    scenarios: list[str] | None = None,
    streaming_config: StreamingConfig | None = None,
    supervisor_config: SupervisorConfig | None = None,
    seed: int = 0,
    inject_bias_bpm: float = 0.0,
    wall_clock: Clock | None = None,
    instrumentation: Instrumentation | None = None,
    memo: StoreCalibrationMemo | None = None,
) -> BacktestReport:
    """Replay a corpus through the pipeline and diff against baselines.

    Args:
        corpus_dir: Corpus directory holding ``manifest.json`` + stores.
        scenarios: Subset of scenario names to run (default: all, in
            manifest order).
        streaming_config: Monitor window parameters; defaults to
            :data:`DEFAULT_BACKTEST_STREAMING` (8 s windows, 4 s hop).
        supervisor_config: Supervision parameters (service defaults).
        seed: Seed for the supervisor's retry jitter.
        inject_bias_bpm: Deliberate estimate bias — a gate self-test
            knob: a non-zero bias models an estimator regression and
            must make the backtest fail.
        wall_clock: Clock used to measure replay wall time (a
            :class:`~repro.obs.clock.WallClock` by default; tests inject
            a simulated one for determinism).
        instrumentation: Optional :class:`repro.obs.Instrumentation`
            (``replay_records_total``, ``replay_speedup_ratio`` and the
            supervisor's series).
        memo: Optional :class:`~repro.store.memo.StoreCalibrationMemo`;
            when given, each scenario also computes an offline
            whole-store estimate (``offline_bpm``) through the memo, so
            repeated backtests of an unchanged corpus reuse calibration
            and selection results (``store_memo_cache_hits_count``).

    Raises:
        TraceStoreError: Bad manifest, unknown scenario selection, or a
            scenario store that is missing entirely.
    """
    stem, baselines = load_manifest(corpus_dir)
    if scenarios is not None:
        known = {b.name for b in baselines}
        unknown = [name for name in scenarios if name not in known]
        if unknown:
            raise TraceStoreError(
                f"unknown scenario(s) {unknown}; corpus has {sorted(known)}"
            )
        baselines = [b for b in baselines if b.name in set(scenarios)]
    wall = wall_clock if wall_clock is not None else WallClock()
    obs = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    results = [
        _replay_scenario(
            corpus_dir,
            stem,
            baseline,
            streaming_config=(
                streaming_config
                if streaming_config is not None
                else DEFAULT_BACKTEST_STREAMING
            ),
            supervisor_config=supervisor_config,
            seed=seed,
            inject_bias_bpm=inject_bias_bpm,
            wall_clock=wall,
            instrumentation=obs,
            memo=memo,
        )
        for baseline in baselines
    ]
    return BacktestReport(corpus_dir=str(corpus_dir), results=results)
