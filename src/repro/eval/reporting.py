"""ASCII reporting: print experiment results as the paper's rows/series."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["format_table", "format_series", "format_cdf_summary"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render a fixed-width ASCII table.

    Floats are shown with 4 significant digits; everything else via str().
    """
    def _cell(value: object) -> str:
        if isinstance(value, float) or isinstance(value, np.floating):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in text_rows)) if text_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    y: Sequence[float],
    *,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render an (x, y) series as two table columns."""
    return format_table(
        [x_label, y_label], list(zip(x, y)), title=title
    )


def format_cdf_summary(label: str, summary: dict) -> str:
    """One-line CDF digest: median / p90 / max / fraction under 0.5 bpm."""
    parts = [f"{label}: median={summary['median']:.3g} bpm"]
    if "p90" in summary:
        parts.append(f"p90={summary['p90']:.3g}")
    if "p80" in summary:
        parts.append(f"p80={summary['p80']:.3g}")
    parts.append(f"max={summary['max']:.3g}")
    if "frac_under_half_bpm" in summary:
        parts.append(f"P(err<=0.5)={summary['frac_under_half_bpm']:.2f}")
    return "  ".join(parts)
