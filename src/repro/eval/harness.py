"""Trial runner: repeat scenario → capture → estimate → error.

Every figure of the evaluation section boils down to a loop over randomized
trials (different subjects, clutter realizations, hardware seeds) of some
scenario family, collecting per-trial estimation errors.  The harness owns
that loop; :mod:`repro.eval.experiments` parameterizes it per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..baselines.amplitude import AmplitudeMethod
from ..core.pipeline import PhaseBeat, PhaseBeatConfig
from ..contracts import FloatArray
from ..errors import EstimationError, NotStationaryError, ReproError
from ..io_.trace import CSITrace
from ..physio.breathing import SinusoidalBreathing
from ..physio.heartbeat import SinusoidalHeartbeat
from ..physio.person import Person
from ..rf.impairments import Impairment, apply_impairments
from ..rf.receiver import capture_trace
from ..rf.scene import Scenario
from .metrics import absolute_error_bpm, accuracy

__all__ = ["TrialOutcome", "run_breathing_trials", "default_subject"]


@dataclass(frozen=True)
class TrialOutcome:
    """The result of one trial under one method.

    Attributes:
        method: Estimator label.
        truth_bpm: Ground-truth rate.
        estimate_bpm: Estimated rate, ``nan`` when estimation failed.
        error_bpm: |estimate − truth| (``nan`` on failure).
        accuracy: The paper's accuracy metric (0 on failure).
        failed: Whether the estimator raised.
    """

    method: str
    truth_bpm: float
    estimate_bpm: float
    error_bpm: float
    accuracy: float
    failed: bool = False


@dataclass
class BreathingTrialResults:
    """Collected outcomes of a trial batch, grouped by method."""

    outcomes: dict[str, list[TrialOutcome]] = field(default_factory=dict)

    def errors(self, method: str, *, drop_failures: bool = True) -> FloatArray:
        """Per-trial errors for a method (failures dropped or kept as nan)."""
        rows = self.outcomes.get(method, [])
        values = [
            o.error_bpm for o in rows if not (drop_failures and o.failed)
        ]
        return np.asarray(values, dtype=float)

    def accuracies(self, method: str) -> FloatArray:
        """Per-trial paper-accuracy values (failures score 0)."""
        rows = self.outcomes.get(method, [])
        return np.asarray([o.accuracy for o in rows], dtype=float)

    def failure_rate(self, method: str) -> float:
        """Fraction of trials where the method raised."""
        rows = self.outcomes.get(method, [])
        if not rows:
            return 0.0
        return float(np.mean([o.failed for o in rows]))

    def add(self, outcome: TrialOutcome) -> None:
        """Record one outcome."""
        self.outcomes.setdefault(outcome.method, []).append(outcome)


def default_subject(
    rng: np.random.Generator,
    position: tuple[float, float, float] = (2.2, 3.0, 1.0),
    *,
    with_heartbeat: bool = True,
    breathing_band_hz: tuple[float, float] = (0.18, 0.42),
    heart_band_hz: tuple[float, float] = (0.9, 1.8),
    breathing_amplitude_range_m: tuple[float, float] = (4.0e-3, 6.0e-3),
) -> Person:
    """A randomized single subject for repeated trials.

    Breathing rate uniform in ``breathing_band_hz`` (default ≈ 11–25 bpm),
    heart rate in ``heart_band_hz`` (default 54–108 bpm), small position
    scatter.  Heart-rate experiments restrict breathing to the resting
    0.18–0.30 Hz range and to quiet-breathing chest amplitudes (2.5–3.5 mm)
    — the paper's subjects sat still for these runs.  Slow quiet breathing
    keeps the second harmonic below the 0.8 Hz heart search band and the
    chest modulation index in the regime where the heart carrier exceeds
    its mixing sidebands.
    """
    jitter = rng.uniform(-0.3, 0.3, size=3)
    jitter[2] = 0.0
    pos = tuple(float(v) for v in np.asarray(position) + jitter)
    return Person(
        position=pos,
        breathing=SinusoidalBreathing(
            frequency_hz=float(rng.uniform(*breathing_band_hz)),
            amplitude_m=float(rng.uniform(*breathing_amplitude_range_m)),
            phase=float(rng.uniform(0, 2 * np.pi)),
        ),
        heartbeat=SinusoidalHeartbeat(
            frequency_hz=float(rng.uniform(*heart_band_hz)),
            phase=float(rng.uniform(0, 2 * np.pi)),
        )
        if with_heartbeat
        else None,
    )


def run_breathing_trials(
    scenario_factory: Callable[[int, np.random.Generator], Scenario],
    n_trials: int,
    *,
    duration_s: float = 30.0,
    sample_rate_hz: float = 400.0,
    methods: tuple[str, ...] = ("phasebeat",),
    pipeline_config: PhaseBeatConfig | None = None,
    base_seed: int = 0,
    learned: Any | None = None,
    impairments_factory: (
        Callable[[int, np.random.Generator], list[Impairment]] | None
    ) = None,
) -> BreathingTrialResults:
    """Run a batch of single-person breathing trials.

    Args:
        scenario_factory: Maps ``(trial index, rng)`` to a fully-populated
            scenario (one person; its breathing model is the ground truth).
        n_trials: Number of trials.
        duration_s: Capture length per trial.
        sample_rate_hz: Packet rate.
        methods: Any of ``"phasebeat"``, ``"amplitude"``, ``"rss"``,
            ``"learned"`` (the last needs ``learned``).
        pipeline_config: PhaseBeat parameters (sweeps disable stationarity
            enforcement by default — the harness controls the scene).
        base_seed: Base RNG seed; trial k uses ``base_seed + k``.
        learned: A trained estimator (typically
            :class:`~repro.learn.LearnedEstimator`) backing the
            ``"learned"`` method; every method in a trial sees the same
            trace, so classical/learned comparisons are paired.
        impairments_factory: Optional ``(trial index, rng) -> impairments``
            hook; when given, each trial's capture is degraded through
            :func:`repro.rf.impairments.apply_impairments` before any
            method sees it (heavy-impairment head-to-heads).

    Returns:
        :class:`BreathingTrialResults` keyed by method label.
    """
    if n_trials < 1:
        raise ReproError(f"n_trials must be >= 1, got {n_trials}")
    if "learned" in methods and learned is None:
        raise ReproError(
            "methods includes 'learned' but no learned estimator was given"
        )
    if pipeline_config is None:
        pipeline_config = PhaseBeatConfig(enforce_stationarity=False)
    pipeline = PhaseBeat(pipeline_config)
    amplitude = AmplitudeMethod()
    results = BreathingTrialResults()

    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        scenario = scenario_factory(k, rng)
        truth = scenario.persons[0].breathing_rate_bpm
        trace = capture_trace(
            scenario,
            duration_s=duration_s,
            sample_rate_hz=sample_rate_hz,
            seed=seed,
        )
        if impairments_factory is not None:
            impairments = impairments_factory(k, rng)
            if impairments:
                trace = apply_impairments(trace, impairments, seed=seed + 1)
        for method in methods:
            results.add(
                _run_method(
                    method, pipeline, amplitude, trace, truth,
                    learned=learned,
                )
            )
    return results


def _run_method(
    method: str,
    pipeline: PhaseBeat,
    amplitude: AmplitudeMethod,
    trace: CSITrace,
    truth: float,
    *,
    learned: Any | None = None,
) -> TrialOutcome:
    try:
        if method == "phasebeat":
            result = pipeline.process(trace, estimate_heart=False)
            estimate = result.breathing_rates_bpm[0]
        elif method == "amplitude":
            estimate = amplitude.estimate_breathing_bpm(trace)
        elif method == "rss":
            from ..baselines.rss import RSSMethod

            estimate = RSSMethod().estimate_breathing_bpm(trace)
        elif method == "learned":
            assert learned is not None  # validated by run_breathing_trials
            estimate = learned.estimate_breathing_bpm(trace)
        else:
            raise ReproError(f"unknown method {method!r}")
    except (EstimationError, NotStationaryError):
        return TrialOutcome(
            method=method,
            truth_bpm=truth,
            estimate_bpm=float("nan"),
            error_bpm=float("nan"),
            accuracy=0.0,
            failed=True,
        )
    return TrialOutcome(
        method=method,
        truth_bpm=truth,
        estimate_bpm=float(estimate),
        error_bpm=absolute_error_bpm(estimate, truth),
        accuracy=accuracy(estimate, truth),
    )
