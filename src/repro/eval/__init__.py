"""Evaluation harness: metrics, trial runner, and per-figure experiments."""

from .harness import (
    BreathingTrialResults,
    TrialOutcome,
    default_subject,
    run_breathing_trials,
)
from .metrics import (
    absolute_error_bpm,
    accuracy,
    empirical_cdf,
    match_rates,
    multi_person_errors,
    percentile_error,
)
from .reporting import format_cdf_summary, format_series, format_table

__all__ = [
    "BreathingTrialResults",
    "TrialOutcome",
    "absolute_error_bpm",
    "accuracy",
    "default_subject",
    "empirical_cdf",
    "format_cdf_summary",
    "format_series",
    "format_table",
    "match_rates",
    "multi_person_errors",
    "percentile_error",
    "run_breathing_trials",
]
