"""Error metrics used in the paper's evaluation section.

The paper reports three kinds of numbers: absolute estimation error in bpm
(Figs. 11, 12, 15, 16 — median, percentile, and maximum read off CDFs),
*accuracy* defined relative to the true rate (Figs. 13, 14), and CDF curves
themselves.  For multi-person experiments, estimated and true rate sets are
matched greedily by closeness before computing per-person errors.
"""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError

__all__ = [
    "absolute_error_bpm",
    "accuracy",
    "match_rates",
    "multi_person_errors",
    "empirical_cdf",
    "percentile_error",
]


def absolute_error_bpm(estimate_bpm: float, truth_bpm: float) -> float:
    """|estimate − truth| in beats (breaths) per minute."""
    return float(abs(estimate_bpm - truth_bpm))


def accuracy(estimate_bpm: float, truth_bpm: float) -> float:
    """The paper's accuracy: ``1 − |error| / truth`` (clipped at 0).

    An exact estimate scores 1.0; being wrong by the whole true rate (or
    more) scores 0.
    """
    if truth_bpm <= 0:
        raise ConfigurationError(f"truth must be positive, got {truth_bpm}")
    return float(max(0.0, 1.0 - abs(estimate_bpm - truth_bpm) / truth_bpm))


def match_rates(estimates: FloatArray, truths: FloatArray) -> list[tuple[float, float]]:
    """Greedy closest-pair matching of estimated to true rates.

    Each truth is matched to the nearest unused estimate (smallest gaps
    first).  Unmatched truths — an estimator that returned fewer rates than
    persons — are paired with ``nan`` so the caller can score the miss.

    Returns:
        List of ``(estimate, truth)`` pairs, one per truth; missing
        estimates appear as ``nan``.
    """
    estimates = np.sort(np.asarray(estimates, dtype=float))
    truths = np.sort(np.asarray(truths, dtype=float))
    pairs: list[tuple[float, float]] = []
    gaps = [
        (abs(e - t), i, j)
        for i, e in enumerate(estimates)
        for j, t in enumerate(truths)
    ]
    gaps.sort()
    used_e: set[int] = set()
    used_t: set[int] = set()
    matched: dict[int, float] = {}
    for _, i, j in gaps:
        if i in used_e or j in used_t:
            continue
        used_e.add(i)
        used_t.add(j)
        matched[j] = float(estimates[i])
    for j, t in enumerate(truths):
        pairs.append((matched.get(j, float("nan")), float(t)))
    return pairs


def multi_person_errors(
    estimates: FloatArray, truths: FloatArray, *, miss_penalty_bpm: float | None = None
) -> FloatArray:
    """Per-person absolute errors after closest-pair matching.

    Args:
        estimates: Estimated rates (bpm), any length.
        truths: True rates (bpm), one per person.
        miss_penalty_bpm: Error charged for an unmatched truth; ``None``
            charges the truth itself (accuracy 0 under the paper's metric).

    Returns:
        One error per truth.
    """
    errors = []
    for estimate, truth in match_rates(estimates, truths):
        if np.isnan(estimate):
            errors.append(truth if miss_penalty_bpm is None else miss_penalty_bpm)
        else:
            errors.append(abs(estimate - truth))
    return np.asarray(errors, dtype=float)


def empirical_cdf(errors: FloatArray) -> tuple[FloatArray, FloatArray]:
    """Empirical CDF points ``(sorted errors, cumulative probability)``."""
    errors = np.sort(np.asarray(errors, dtype=float))
    if errors.size == 0:
        raise ConfigurationError("cannot build a CDF from zero samples")
    prob = np.arange(1, errors.size + 1) / errors.size
    return errors, prob


def percentile_error(errors: FloatArray, q: float) -> float:
    """The q-th percentile of the error sample (q in [0, 100])."""
    errors = np.asarray(errors, dtype=float)
    if errors.size == 0:
        raise ConfigurationError("cannot take a percentile of zero samples")
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(errors, q))
