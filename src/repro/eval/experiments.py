"""One function per paper figure: the experiments of Section IV.

Every public function regenerates the data behind one figure of the paper's
evaluation (the paper has no numbered tables).  Functions return plain
dictionaries of arrays/scalars so the benchmark harness can both print the
same rows/series the paper reports and assert the qualitative shape (who
wins, by what rough factor, where crossovers fall).

Trial counts default to values that keep a full run in minutes; every
function takes ``n_trials`` / duration knobs for heavier runs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..contracts import FloatArray

from ..core.breathing import FFTBreathingEstimator, MusicBreathingEstimator
from ..core.calibration import calibrate
from ..core.dwt_stage import decompose
from ..core.environment import EnvironmentConfig, classify_windows, windowed_v
from ..core.phase_difference import phase_difference, raw_phase
from ..core.pipeline import PhaseBeat, PhaseBeatConfig
from ..core.subcarrier_selection import select_subcarrier
from ..dsp.fft_utils import magnitude_spectrum
from ..dsp.stats import (
    angular_sector_width,
    circular_resultant_length,
    mean_absolute_deviation,
)
from ..errors import EstimationError, NotStationaryError
from ..eval.harness import default_subject, run_breathing_trials
from ..eval.metrics import accuracy, empirical_cdf, multi_person_errors, percentile_error
from ..physio.breathing import SinusoidalBreathing
from ..physio.heartbeat import SinusoidalHeartbeat
from ..physio.motion import ActivityScript
from ..physio.person import Person, random_cohort
from ..rf.receiver import capture_trace
from ..io_.trace import CSITrace
from ..rf.scene import (
    Scenario,
    corridor_scenario,
    laboratory_scenario,
    through_wall_scenario,
)

__all__ = [
    "fig01_phase_stability",
    "fig03_environment_detection",
    "fig04_calibration",
    "fig05_subcarrier_patterns",
    "fig06_dwt_decomposition",
    "fig07_subcarrier_mad",
    "fig08_multiperson_fft_vs_music",
    "fig09_heart_fft",
    "fig11_breathing_cdf",
    "fig12_heart_cdf",
    "fig13_sampling_rate",
    "fig14_num_persons",
    "fig15_distance_corridor",
    "fig16_distance_through_wall",
    "robustness_impairments",
]

_SWEEP_CONFIG = PhaseBeatConfig(enforce_stationarity=False)


def _lab_trace(seed: int = 0, duration_s: float = 30.0, **capture_kwargs):
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
        heartbeat=SinusoidalHeartbeat(frequency_hz=1.07),
    )
    scenario = laboratory_scenario([person], clutter_seed=seed)
    return capture_trace(
        scenario, duration_s=duration_s, seed=seed, **capture_kwargs
    ), person


def fig01_phase_stability(
    n_packets: int = 600, subcarrier: int = 4, seed: int = 1
) -> dict:
    """Fig. 1: raw phase is uniform on the circle; phase difference is not.

    Reports circular resultant length R (≈0 uniform, ≈1 concentrated) and
    the sector width containing 99% of samples, for the raw phase of one
    antenna versus the cross-antenna phase difference of the same
    subcarrier over ``n_packets`` consecutive packets.
    """
    trace, _ = _lab_trace(seed=seed, duration_s=max(2.0, n_packets / 400.0))
    trace = trace.slice_packets(0, n_packets)
    raw = raw_phase(trace)[:, subcarrier]
    diff = phase_difference(trace, unwrap=False)[:, subcarrier]
    return {
        "subcarrier": subcarrier,
        "n_packets": n_packets,
        "raw_resultant_length": circular_resultant_length(raw),
        "diff_resultant_length": circular_resultant_length(diff),
        "raw_sector_deg": float(np.degrees(angular_sector_width(raw, 0.99))),
        "diff_sector_deg": float(np.degrees(angular_sector_width(diff, 0.99))),
    }


def fig03_environment_detection(seed: int = 1) -> dict:
    """Fig. 3: the V statistic across sitting / empty / standing / walking.

    Runs the paper's one-minute timeline (sitting → no person → standing up
    → walking) and reports the mean windowed V per segment plus the
    classified states.
    """
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
    )
    script = ActivityScript.figure3_script(seed=seed)
    scenario = dataclasses.replace(
        laboratory_scenario([person], clutter_seed=seed), activity=script
    )
    trace = capture_trace(scenario, duration_s=60.0, seed=seed)
    diff = phase_difference(trace)
    config = EnvironmentConfig()
    centers, v = windowed_v(diff, trace.sample_rate_hz, config)
    states = classify_windows(v, config)

    segment_v = {}
    for event in script.events:
        mask = (centers >= event.start_s) & (centers < event.end_s)
        if mask.any():
            segment_v[event.state.value] = float(np.mean(v[mask]))
    return {
        "window_centers_s": centers,
        "v": v,
        "states": [s.value for s in states],
        "segment_mean_v": segment_v,
        "stationary_band": config.stationary_band,
    }


def fig04_calibration(seed: int = 1) -> dict:
    """Fig. 4: calibration removes the DC offset and high-frequency noise.

    Compares the raw 10 000-packet phase-difference series with the
    calibrated 500-sample series: mean absolute DC level, high-frequency
    (>2 Hz) energy fraction, and sample counts.
    """
    trace, person = _lab_trace(seed=seed, duration_s=25.0)
    diff = phase_difference(trace)
    calibrated = calibrate(diff, trace.sample_rate_hz)

    def _hf_fraction(series: FloatArray, rate_hz: float) -> float:
        freqs, mag = magnitude_spectrum(series, rate_hz)
        power = mag**2
        total = float(power[1:].sum())
        if total == 0:
            return 0.0
        return float(power[freqs > 2.0].sum() / total)

    raw_col = diff[:, 15]
    cal_col = calibrated.series[:, 15]
    return {
        "n_raw_packets": diff.shape[0],
        "n_calibrated_samples": calibrated.n_samples,
        "raw_dc_abs": float(abs(raw_col.mean())),
        "calibrated_dc_abs": float(abs(cal_col.mean())),
        "raw_hf_fraction": _hf_fraction(raw_col - raw_col.mean(), trace.sample_rate_hz),
        "calibrated_hf_fraction": _hf_fraction(cal_col, calibrated.sample_rate_hz),
        "calibrated_rate_hz": calibrated.sample_rate_hz,
        "truth_bpm": person.breathing_rate_bpm,
    }


def fig05_subcarrier_patterns(seed: int = 3) -> dict:
    """Fig. 5: the calibrated per-subcarrier series show a sensitivity
    pattern — neighbouring subcarriers have correlated, smoothly varying
    oscillation strength."""
    trace, _ = _lab_trace(seed=seed, duration_s=25.0)
    calibrated = calibrate(phase_difference(trace), trace.sample_rate_hz)
    mads = mean_absolute_deviation(calibrated.series, axis=0)
    # Smoothness: correlation between neighbouring subcarriers' series.
    series = calibrated.series
    neighbour_corr = [
        float(np.corrcoef(series[:, i], series[:, i + 1])[0, 1])
        for i in range(series.shape[1] - 1)
    ]
    return {
        "series": series,
        "sample_rate_hz": calibrated.sample_rate_hz,
        "mads": mads,
        "mean_neighbour_correlation": float(np.mean(neighbour_corr)),
    }


def fig06_dwt_decomposition(seed: int = 1) -> dict:
    """Fig. 6: level-4 DWT splits breathing (α₄) from heart band (β₃+β₄).

    Reports the energy of the true breathing frequency captured in the
    breathing reconstruction and of the heart frequency in the heart-band
    reconstruction, plus the nominal band edges.
    """
    trace, person = _lab_trace(seed=seed, duration_s=30.0)
    calibrated = calibrate(phase_difference(trace), trace.sample_rate_hz)
    selection = select_subcarrier(calibrated.series)
    series = calibrated.series[:, selection.selected]
    bands = decompose(series, calibrated.sample_rate_hz)

    def _tone_power(signal: FloatArray, rate_hz: float, f0: float) -> float:
        freqs, mag = magnitude_spectrum(signal, rate_hz)
        window = (freqs > f0 - 0.05) & (freqs < f0 + 0.05)
        return float((mag[window] ** 2).sum())

    f_b = person.breathing.frequency_hz
    breathing_in_breath_band = _tone_power(bands.breathing, bands.sample_rate_hz, f_b)
    breathing_in_heart_band = _tone_power(bands.heart, bands.sample_rate_hz, f_b)
    return {
        "breathing_band_hz": bands.breathing_band_hz,
        "heart_band_hz": bands.heart_band_hz,
        "breathing_tone_in_breathing_band": breathing_in_breath_band,
        "breathing_tone_in_heart_band": breathing_in_heart_band,
        "band_separation_ratio": breathing_in_breath_band
        / max(breathing_in_heart_band, 1e-12),
        "level": 4,
        "wavelet": "db4",
    }


def fig07_subcarrier_mad(seed: int = 3, k: int = 3) -> dict:
    """Fig. 7: per-subcarrier MAD profile and the top-k/median selection."""
    trace, _ = _lab_trace(seed=seed, duration_s=25.0)
    calibrated = calibrate(phase_difference(trace), trace.sample_rate_hz)
    selection = select_subcarrier(calibrated.series)
    return {
        "mads": selection.sensitivities,
        "candidates": selection.candidates,
        "selected": selection.selected,
        "max_subcarrier": int(np.argmax(selection.sensitivities)),
    }


def fig08_multiperson_fft_vs_music(
    duration_s: float = 60.0, seed: int = 1
) -> dict:
    """Fig. 8: FFT resolves two persons but fails for three close rates;
    root-MUSIC recovers all three.

    Uses the paper's rates: two persons at 0.20 / 0.30 Hz, three persons at
    0.1467 / 0.2233 / 0.2483 Hz (the latter two only 0.025 Hz apart).
    """
    out: dict = {}
    for label, rates in (
        ("two_persons", (0.20, 0.30)),
        ("three_persons", (0.1467, 0.2233, 0.2483)),
    ):
        # Subjects sit a few meters off the link and modulate the channel
        # gently: the superposition model behind Theorem 2 is a small-signal
        # linearization, and keeping each chest modulation small keeps the
        # harmonics/intermodulation products of the nonlinear phase-of-sum
        # mixing below the weakest fundamental, as in the paper's room.
        positions = ((0.8, 5.5, 1.0), (2.2, 6.2, 1.0), (3.8, 5.8, 1.0))
        persons = [
            Person(
                position=positions[i],
                breathing=SinusoidalBreathing(
                    frequency_hz=f, amplitude_m=3.0e-3, phase=float(0.7 * i)
                ),
                heartbeat=None,
                name=f"subject-{i + 1}",
            )
            for i, f in enumerate(rates)
        ]
        scenario = laboratory_scenario(persons, clutter_seed=seed)
        trace = capture_trace(scenario, duration_s=duration_s, seed=seed)
        calibrated = calibrate(phase_difference(trace), trace.sample_rate_hz)

        fft_est = FFTBreathingEstimator()
        music_est = MusicBreathingEstimator()
        n = len(rates)
        truth_bpm = 60.0 * np.asarray(rates)
        try:
            fft_bpm = fft_est.estimate_bpm(
                calibrated.series, calibrated.sample_rate_hz, n
            )
        except EstimationError:
            fft_bpm = np.empty(0)
        music_bpm = music_est.estimate_bpm(
            calibrated.series, calibrated.sample_rate_hz, n
        )
        out[label] = {
            "truth_bpm": truth_bpm,
            "fft_bpm": np.asarray(fft_bpm),
            "music_bpm": np.asarray(music_bpm),
            "fft_errors": multi_person_errors(fft_bpm, truth_bpm),
            "music_errors": multi_person_errors(music_bpm, truth_bpm),
        }
    return out


def fig09_heart_fft(seed: int = 3, duration_s: float = 60.0) -> dict:
    """Fig. 9: single-subject heart rate via FFT + 3-bin refinement.

    The paper's subject: estimated 1.07 Hz against a pulse-sensor reading
    of 1.06 Hz (0.6 bpm error).  Uses the directional-TX lab setup.
    """
    person = Person(
        position=(2.2, 3.0, 1.0),
        breathing=SinusoidalBreathing(frequency_hz=0.25),
        heartbeat=SinusoidalHeartbeat(frequency_hz=1.07),
    )
    scenario = laboratory_scenario(
        [person], directional_tx=True, clutter_seed=seed
    )
    trace = capture_trace(scenario, duration_s=duration_s, seed=seed)
    result = PhaseBeat(_SWEEP_CONFIG).process(trace)
    truth = person.heart_rate_bpm
    return {
        "truth_bpm": truth,
        "estimate_bpm": result.heart_rate_bpm,
        "error_bpm": abs(result.heart_rate_bpm - truth),
        "truth_hz": truth / 60.0,
        "estimate_hz": result.heart_rate_bpm / 60.0,
    }


def fig11_breathing_cdf(n_trials: int = 30, base_seed: int = 100) -> dict:
    """Fig. 11: breathing-error CDF, PhaseBeat vs the amplitude baseline.

    Paper shape: similar medians (~0.25 bpm); PhaseBeat reaches 90% < 0.5
    bpm where the amplitude method reaches only ~70%, with maxima ~0.85 vs
    ~1.7 bpm.
    """
    def factory(k: int, rng: np.random.Generator) -> Scenario:
        return laboratory_scenario(
            [default_subject(rng, with_heartbeat=False)], clutter_seed=base_seed + k
        )

    # Environment detection stays on: the paper estimates only on segments
    # the detector accepts, so trials it rejects are discarded, not scored.
    results = run_breathing_trials(
        factory,
        n_trials,
        methods=("phasebeat", "amplitude"),
        pipeline_config=PhaseBeatConfig(),
        base_seed=base_seed,
    )
    out: dict = {}
    for method in ("phasebeat", "amplitude"):
        errors = results.errors(method)
        x, p = empirical_cdf(errors)
        out[method] = {
            "errors": errors,
            "cdf_x": x,
            "cdf_p": p,
            "median": percentile_error(errors, 50),
            "p90": percentile_error(errors, 90),
            "max": float(errors.max()),
            "frac_under_half_bpm": float(np.mean(errors <= 0.5)),
            "failure_rate": results.failure_rate(method),
        }
    return out


def fig12_heart_cdf(n_trials: int = 25, base_seed: int = 200) -> dict:
    """Fig. 12: heart-error CDF with the directional-TX lab setup.

    Paper shape: median ≈ 1 bpm, 80% < 2.5 bpm, max ≈ 10 bpm — an order of
    magnitude worse than breathing, because the heart signal is weak.
    """
    pipeline = PhaseBeat(_SWEEP_CONFIG)
    errors = []
    for k in range(n_trials):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        person = default_subject(
                rng,
                breathing_band_hz=(0.18, 0.30),
                breathing_amplitude_range_m=(2.5e-3, 3.5e-3),
            )
        scenario = laboratory_scenario(
            [person], directional_tx=True, clutter_seed=seed
        )
        trace = capture_trace(scenario, duration_s=60.0, seed=seed)
        try:
            result = pipeline.process(trace)
        except (EstimationError, NotStationaryError):
            continue
        if result.heart_rate_bpm is not None:
            errors.append(abs(result.heart_rate_bpm - person.heart_rate_bpm))
    errors = np.asarray(errors)
    x, p = empirical_cdf(errors)
    return {
        "errors": errors,
        "cdf_x": x,
        "cdf_p": p,
        "median": percentile_error(errors, 50),
        "p80": percentile_error(errors, 80),
        "max": float(errors.max()),
        "n_successful": int(errors.size),
        "n_trials": n_trials,
    }


def fig13_sampling_rate(
    rates_hz: tuple[float, ...] = (20.0, 200.0, 400.0, 600.0),
    n_trials: int = 10,
    base_seed: int = 300,
) -> dict:
    """Fig. 13: estimation accuracy vs packet sampling rate.

    Paper shape: breathing accuracy ≈ 98% and flat across 20–600 Hz; heart
    accuracy ≈ 88% at 20 Hz rising to ≈ 95% at 400 Hz.

    Alongside the paper's accuracy metric this also reports the median
    *heart-tone SNR* per rate — the physical mechanism behind the paper's
    curve: a higher packet rate lets the Hampel/decimation chain average
    more noise out of each 20 Hz output sample, raising the heart peak
    above the spectral floor.  (In the simulator the accuracy mean is also
    perturbed by rate-independent sideband confusions, so the SNR series is
    the cleaner signature; see EXPERIMENTS.md.)
    """
    from ..dsp.fft_utils import band_mask, magnitude_spectrum

    pipeline = PhaseBeat(_SWEEP_CONFIG)
    out: dict = {
        "rates_hz": list(rates_hz),
        "breathing": [],
        "heart": [],
        "heart_tone_snr": [],
    }
    for rate in rates_hz:
        acc_b, acc_h, snrs = [], [], []
        for k in range(n_trials):
            seed = base_seed + k
            rng = np.random.default_rng(seed)
            person = default_subject(
                rng,
                breathing_band_hz=(0.18, 0.30),
                breathing_amplitude_range_m=(2.5e-3, 3.5e-3),
            )
            scenario = laboratory_scenario(
                [person], directional_tx=True, clutter_seed=seed
            )
            trace = capture_trace(
                scenario, duration_s=60.0, sample_rate_hz=rate, seed=seed
            )
            try:
                result = pipeline.process(trace)
            except (EstimationError, NotStationaryError):
                acc_b.append(0.0)
                acc_h.append(0.0)
                continue
            acc_b.append(
                accuracy(result.breathing_rates_bpm[0], person.breathing_rate_bpm)
            )
            if result.heart_rate_bpm is None:
                acc_h.append(0.0)
            else:
                acc_h.append(accuracy(result.heart_rate_bpm, person.heart_rate_bpm))
            freqs, mag = magnitude_spectrum(result.heart_signal, 20.0)
            in_band = band_mask(freqs, (0.8, 2.0))
            tone = mag[np.argmin(np.abs(freqs - person.heartbeat.frequency_hz))]
            snrs.append(float(tone / max(np.median(mag[in_band]), 1e-12)))
        out["breathing"].append(float(np.mean(acc_b)))
        out["heart"].append(float(np.mean(acc_h)))
        out["heart_tone_snr"].append(float(np.median(snrs)) if snrs else 0.0)
    return out


def fig14_num_persons(
    person_counts: tuple[int, ...] = (2, 3, 4),
    n_trials: int = 8,
    base_seed: int = 400,
    duration_s: float = 120.0,
) -> dict:
    """Fig. 14: multi-person breathing accuracy by estimator.

    Paper shape: all methods > 90% at two persons; accuracy falls with the
    count; root-MUSIC over 30 subcarriers degrades slowest and wins at four
    persons, followed by single-subcarrier root-MUSIC, then FFT.
    """
    methods = {
        "music_30sc": "music",
        "music_1sc": "music-single",
        "fft": "fft",
    }
    pipeline = PhaseBeat(_SWEEP_CONFIG)
    out: dict = {"person_counts": list(person_counts)}
    accum = {label: [] for label in methods}
    for count in person_counts:
        per_method = {label: [] for label in methods}
        for k in range(n_trials):
            seed = base_seed + 50 * count + k
            cohort = random_cohort(
                count,
                seed=seed,
                realistic=False,
                with_heartbeat=False,
                min_rate_separation_hz=0.025,
                breathing_amplitude_m=(2.5e-3, 3.5e-3),
            )
            scenario = laboratory_scenario(cohort, clutter_seed=seed)
            trace = capture_trace(scenario, duration_s=duration_s, seed=seed)
            truth = 60.0 * np.asarray(
                [p.breathing.frequency_hz for p in cohort]
            )
            for label, method in methods.items():  # phaselint: insertion-order -- methods dict is the declared presentation order
                try:
                    result = pipeline.process(
                        trace,
                        n_persons=count,
                        estimate_heart=False,
                        breathing_method=method,
                    )
                    estimates = np.asarray(result.breathing_rates_bpm)
                except (EstimationError, NotStationaryError):
                    estimates = np.empty(0)
                errors = multi_person_errors(estimates, truth)
                per_method[label].append(
                    float(np.mean([max(0.0, 1.0 - e / t) for e, t in zip(errors, truth)]))
                )
        for label in methods:
            accum[label].append(float(np.mean(per_method[label])))
    out.update(accum)
    return out


def _distance_sweep(
    scenario_builder,
    distances_m: tuple[float, ...],
    n_trials: int,
    base_seed: int,
    person_y=None,
) -> dict:
    """Shared Fig. 15/16 sweep loop.

    ``person_y`` maps the TX–RX distance to the subject's y coordinate; by
    default the subject sits near the middle of the link (the through-wall
    sweep overrides it to keep the subject firmly on the TX side of the
    wall, as in the paper's setup 2).
    """
    if person_y is None:
        def person_y(d: float) -> float:
            return max(0.8, d / 2.0)
    pipeline = PhaseBeat(_SWEEP_CONFIG)
    mean_errors = []
    for distance in distances_m:
        errors = []
        for k in range(n_trials):
            seed = base_seed + k
            rng = np.random.default_rng(seed + int(distance * 13))
            person = default_subject(
                rng,
                position=(1.5, person_y(distance), 1.0),
                with_heartbeat=False,
            )
            scenario = scenario_builder(distance, [person], seed)
            trace = capture_trace(scenario, duration_s=30.0, seed=seed)
            try:
                result = pipeline.process(trace, estimate_heart=False)
                errors.append(
                    abs(result.breathing_rates_bpm[0] - person.breathing_rate_bpm)
                )
            except (EstimationError, NotStationaryError):
                errors.append(person.breathing_rate_bpm * 0.1)
        mean_errors.append(float(np.mean(errors)))
    return {"distances_m": list(distances_m), "mean_error_bpm": mean_errors}


def fig15_distance_corridor(
    distances_m: tuple[float, ...] = (1.0, 3.0, 5.0, 7.0, 9.0, 11.0),
    n_trials: int = 8,
    base_seed: int = 500,
) -> dict:
    """Fig. 15: mean breathing error vs TX–RX distance in the corridor.

    Paper shape: error grows with distance (weaker reflected signal),
    reaching ≈ 0.3 bpm at 7 m and ≈ 0.55 bpm at 11 m.
    """
    def builder(distance: float, persons: list, seed: int) -> Scenario:
        return corridor_scenario(distance, persons, clutter_seed=seed)

    return _distance_sweep(builder, distances_m, n_trials, base_seed)


def fig16_distance_through_wall(
    distances_m: tuple[float, ...] = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0),
    n_trials: int = 8,
    base_seed: int = 600,
) -> dict:
    """Fig. 16: mean breathing error vs distance, through-wall.

    Paper shape: same rising trend as the corridor but uniformly worse at
    equal distance (≈ 0.52 vs ≈ 0.3 bpm at 7 m) because the wall attenuates
    the signal.
    """
    def builder(distance: float, persons: list, seed: int) -> Scenario:
        return through_wall_scenario(distance, persons, clutter_seed=seed)

    def tx_side_y(distance: float) -> float:
        # Firmly on the TX side of the wall (the wall sits at y = d/2).
        return max(0.4, distance / 2.0 - 0.8)

    return _distance_sweep(
        builder, distances_m, n_trials, base_seed, person_y=tx_side_y
    )


def robustness_impairments(
    loss_fractions: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3),
    gap_lengths_s: tuple[float, ...] = (0.5, 1.0, 2.0),
    n_trials: int = 5,
    duration_s: float = 40.0,
    base_seed: int = 700,
) -> dict:
    """Robustness: breathing error vs injected capture impairments.

    Not a paper figure — the paper evaluates clean 400 pkt/s captures only.
    This experiment asks what a deployed PhaseBeat sees: Bernoulli packet
    loss at increasing rates, and NIC-reset dropout gaps of increasing
    length *on top of* 10% loss, all injected via
    :mod:`repro.rf.impairments` with full seeding.  The hardened pipeline
    (reclock onto a uniform grid when timestamps are non-uniform) should
    hold the median error flat through 10% loss and 1 s gaps; the sweep
    shows where it finally comes apart.
    """
    from ..rf.impairments import BernoulliLoss, DropoutGap, apply_impairments

    # The sweep controls the scene (always a sitting subject), so skip the
    # stationarity gate like the other controlled sweeps do.
    pipeline = PhaseBeat(_SWEEP_CONFIG)

    def breathing_error(trace: CSITrace, truth_bpm: float) -> float:
        try:
            result = pipeline.process(trace, estimate_heart=False)
        except (NotStationaryError, EstimationError):
            return np.nan
        return abs(result.breathing_rates_bpm[0] - truth_bpm)

    clean_err = np.empty(n_trials)
    loss_err = np.empty((len(loss_fractions), n_trials))
    gap_err = np.empty((len(gap_lengths_s), n_trials))
    for trial in range(n_trials):
        seed = base_seed + trial
        trace, person = _lab_trace(seed=seed, duration_s=duration_s)
        truth = person.breathing_rate_bpm
        clean_err[trial] = breathing_error(trace, truth)
        for i, fraction in enumerate(loss_fractions):
            impaired = apply_impairments(
                trace,
                [BernoulliLoss(fraction)] if fraction > 0 else [],
                seed=seed,
            )
            loss_err[i, trial] = breathing_error(impaired, truth)
        for i, gap in enumerate(gap_lengths_s):
            impaired = apply_impairments(
                trace,
                [BernoulliLoss(0.1), DropoutGap(gap)],
                seed=seed,
            )
            gap_err[i, trial] = breathing_error(impaired, truth)

    return {
        "loss_fractions": list(loss_fractions),
        "gap_lengths_s": list(gap_lengths_s),
        "clean_median_err": float(np.nanmedian(clean_err)),
        "loss_median_err": np.nanmedian(loss_err, axis=1),
        "loss_p90_err": np.nanpercentile(loss_err, 90, axis=1),
        "gap_median_err": np.nanmedian(gap_err, axis=1),
        "gap_p90_err": np.nanpercentile(gap_err, 90, axis=1),
        "n_failed": int(np.isnan(loss_err).sum() + np.isnan(gap_err).sum()),
    }
