"""Exception hierarchy for the PhaseBeat reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are split by
the subsystem that detects the problem, not by where the bad value came from:
a malformed trace raises :class:`TraceFormatError` whether it was built by the
simulator or loaded from disk.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object or parameter is invalid.

    Raised eagerly at construction time (dataclass ``__post_init__``) so a bad
    parameter fails where it is written, not deep inside a pipeline run.
    """


class SignalTooShortError(ReproError, ValueError):
    """An input series is too short for the requested operation.

    DWT decomposition, peak detection, and root-MUSIC all require a minimum
    number of samples; this error reports the required and actual lengths.
    """

    def __init__(self, required: int, actual: int, what: str = "signal"):
        self.required = int(required)
        self.actual = int(actual)
        self.what = what
        super().__init__(
            f"{what} too short: needs at least {required} samples, got {actual}"
        )


class EstimationError(ReproError, RuntimeError):
    """An estimator could not produce a rate from the given data.

    For example peak detection found fewer than two peaks, or root-MUSIC
    found no roots inside the search band.
    """


class NotStationaryError(ReproError, RuntimeError):
    """Environment detection rejected the segment as non-stationary.

    The pipeline raises this when asked to estimate vital signs from a window
    whose V statistic (paper Eq. 8) falls outside the stationary band, e.g.
    because the person is walking or the room is empty.
    """

    def __init__(self, v_statistic: float, state: str):
        self.v_statistic = float(v_statistic)
        self.state = state
        super().__init__(
            f"segment is not stationary (V={v_statistic:.4g}, state={state!r}); "
            "vital signs cannot be estimated"
        )


class TraceFormatError(ReproError, ValueError):
    """A CSI trace container or file violates the expected layout."""
