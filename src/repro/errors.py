"""Exception hierarchy for the PhaseBeat reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are split by
the subsystem that detects the problem, not by where the bad value came from:
a malformed trace raises :class:`TraceFormatError` whether it was built by the
simulator or loaded from disk.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A configuration object or parameter is invalid.

    Raised eagerly at construction time (dataclass ``__post_init__``) so a bad
    parameter fails where it is written, not deep inside a pipeline run.
    """


class SignalTooShortError(ReproError, ValueError):
    """An input series is too short for the requested operation.

    DWT decomposition, peak detection, and root-MUSIC all require a minimum
    number of samples; this error reports the required and actual lengths.
    """

    def __init__(self, required: int, actual: int, what: str = "signal"):
        self.required = int(required)
        self.actual = int(actual)
        self.what = what
        super().__init__(
            f"{what} too short: needs at least {required} samples, got {actual}"
        )


class EstimationError(ReproError, RuntimeError):
    """An estimator could not produce a rate from the given data.

    For example peak detection found fewer than two peaks, or root-MUSIC
    found no roots inside the search band.
    """


class NotStationaryError(ReproError, RuntimeError):
    """Environment detection rejected the segment as non-stationary.

    The pipeline raises this when asked to estimate vital signs from a window
    whose V statistic (paper Eq. 8) falls outside the stationary band, e.g.
    because the person is walking or the room is empty.
    """

    def __init__(self, v_statistic: float, state: str):
        self.v_statistic = float(v_statistic)
        self.state = state
        super().__init__(
            f"segment is not stationary (V={v_statistic:.4g}, state={state!r}); "
            "vital signs cannot be estimated"
        )


class ContractError(ReproError, TypeError):
    """An array argument violated a declared shape/dtype contract.

    Raised by the decorators in :mod:`repro.contracts` at public pipeline
    boundaries, naming the function, the argument, the expected axis
    layout/dtype, and what actually arrived — so a transposed or
    mis-dtyped matrix fails loudly at the boundary instead of producing
    silently wrong rates downstream.
    """

    def __init__(self, func: str, argument: str, expected: str, actual: str):
        self.func = func
        self.argument = argument
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{func}(): argument '{argument}' violates its array contract: "
            f"expected {expected}, got {actual}"
        )


class TraceFormatError(ReproError, ValueError):
    """A CSI trace container or file violates the expected layout."""


class TraceStoreError(ReproError, RuntimeError):
    """The trace store was misused or cannot operate on its backing files.

    Raised for *caller* mistakes and environmental failures — appending to
    a closed :class:`~repro.store.writer.TraceWriter`, a packet whose
    geometry disagrees with the segment header, a store stem with no
    segments.  Corrupted or torn segment *content* is never reported
    through exceptions: the salvaging reader turns it into a
    :class:`~repro.store.reader.SalvageReport` instead, because torn
    files are a normal input after a crash, not an error.
    """


class TornWriteError(TraceStoreError):
    """A simulated torn write: the process died mid-``write``.

    Raised by the storage fault-injection layer
    (:class:`~repro.store.faults.TornWriteFile`) after persisting only a
    prefix of the requested bytes, modelling a crash between a ``write``
    syscall and its completion.  Carries how many bytes of the torn call
    actually reached the backing store.

    Attributes:
        n_bytes_persisted: Bytes of the torn write that survived.
    """

    def __init__(self, n_bytes_persisted: int):
        self.n_bytes_persisted = int(n_bytes_persisted)
        super().__init__(
            f"torn write: only {self.n_bytes_persisted} byte(s) of the "
            "call reached the backing store before the simulated crash"
        )


class ServiceError(ReproError, RuntimeError):
    """Base class for the supervised monitoring service layer.

    Everything :mod:`repro.service` raises derives from this class, so a
    deployment loop can catch one type at the fault-domain boundary.
    Service-layer code always chains the underlying cause
    (``raise ... from exc``) so post-mortems see the original fault, not
    just the supervisor's classification of it.
    """


class TransientSourceError(ServiceError):
    """A packet source failed in a way that is expected to be retryable.

    Models the transient faults flaky capture hardware produces — a USB
    read error, a momentarily unreachable capture daemon.  The
    :class:`~repro.service.sources.ResilientSource` wrapper retries these
    with bounded exponential backoff before giving up.
    """


class SourceCrashedError(ServiceError):
    """A packet source died and cannot serve further packets.

    Unlike :class:`TransientSourceError` this is terminal for the source
    instance: every subsequent call fails too.  Recovery requires the
    supervisor to rebuild the source from its factory.
    """


class SourceTimeoutError(ServiceError):
    """A source call exceeded its deadline (hung read, stalled driver).

    Attributes:
        elapsed_s: How long the call took (simulated time).
        deadline_s: The budget it blew.
    """

    def __init__(self, elapsed_s: float, deadline_s: float):
        self.elapsed_s = float(elapsed_s)
        self.deadline_s = float(deadline_s)
        super().__init__(
            f"source read took {self.elapsed_s:.3f}s, exceeding the "
            f"{self.deadline_s:.3f}s deadline"
        )


class SourceUnavailableError(ServiceError):
    """Bounded retry gave up: the source kept failing transiently.

    Always chained from the last :class:`TransientSourceError`, carrying
    how many attempts were made.
    """

    def __init__(self, attempts: int):
        self.attempts = int(attempts)
        super().__init__(
            f"source still failing after {self.attempts} attempts"
        )


class CircuitOpenError(ServiceError):
    """The per-source circuit breaker is open: calls are short-circuited.

    Raised instead of touching a source that has failed repeatedly, until
    the breaker's reset timeout elapses and a half-open probe is allowed.

    Attributes:
        retry_after_s: Simulated seconds until the next probe is allowed.
    """

    def __init__(self, retry_after_s: float):
        self.retry_after_s = float(retry_after_s)
        super().__init__(
            f"circuit breaker open; next probe allowed in "
            f"{self.retry_after_s:.3f}s"
        )


class FleetAdmissionError(ServiceError):
    """The fleet gateway refused to admit a session.

    Admission control is the first line of overload protection: a gateway
    that is already at its session ceiling (or whose every shard is at
    capacity) rejects new sessions up front with this typed error instead
    of accepting work it would immediately have to shed.

    Attributes:
        session_id: The session that was refused.
        reason: Machine-readable refusal class — ``"fleet-full"``,
            ``"shard-full"``, or ``"duplicate-session"``.
    """

    def __init__(self, session_id: str, reason: str, detail: str = ""):
        self.session_id = str(session_id)
        self.reason = str(reason)
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"session {self.session_id!r} refused admission: "
            f"{self.reason}{suffix}"
        )


class CheckpointError(ReproError, RuntimeError):
    """A monitor checkpoint could not be taken or restored.

    Raised by :meth:`StreamingMonitor.restore` when a checkpoint is
    malformed, from a different format version, or taken under an
    incompatible configuration (different window geometry, sample rate, or
    packet shape) — restoring such state would silently corrupt estimates.
    """


class DataGapError(ReproError, RuntimeError):
    """Packet timestamps contain a gap too large to bridge.

    Raised by :meth:`CSITrace.validate` and :func:`repro.dsp.resample.reclock`
    when a dropout (NIC reset, long burst loss) exceeds the caller's gap
    budget: interpolating vital-sign phase across such a hole would fabricate
    a signal rather than recover one.
    """

    def __init__(self, gap_s: float, limit_s: float, at_s: float | None = None):
        self.gap_s = float(gap_s)
        self.limit_s = float(limit_s)
        self.at_s = None if at_s is None else float(at_s)
        where = "" if at_s is None else f" at t={self.at_s:.3f}s"
        super().__init__(
            f"data gap of {self.gap_s:.3f}s{where} exceeds the "
            f"{self.limit_s:.3f}s budget"
        )


class DegradedInputError(ReproError, RuntimeError):
    """Input quality is below the floor the pipeline can estimate from.

    Carries the offending :class:`~repro.io_.quality.TraceQualityReport` plus
    the machine-readable list of violated checks (e.g. ``"loss-fraction"``,
    ``"non-monotonic-timestamps"``), so callers can gate, log, or degrade
    gracefully instead of parsing a message string.
    """

    def __init__(self, reasons: list[str], report=None):
        self.reasons = list(reasons)
        self.report = report
        super().__init__(
            "input quality below estimation floor: " + ", ".join(self.reasons)
        )
