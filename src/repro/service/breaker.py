"""Per-source circuit breaker (closed → open → half-open → closed).

A flaky capture source that fails every read must not be hammered with
retries forever: each failed attempt costs backoff time that the monitor
spends blind.  The breaker counts consecutive failures; at the threshold it
*opens* and short-circuits calls (:class:`~repro.errors.CircuitOpenError`)
until a cooldown measured on the simulated clock elapses, then admits a
single *half-open* probe.  A successful probe closes the breaker; a failed
probe re-opens it with the cooldown scaled up (bounded), so a source that
stays dead is probed at a gentle, bounded rate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from ..errors import ConfigurationError
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .clock import SimulatedClock

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The three classic breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Circuit-breaker parameters.

    Attributes:
        failure_threshold: Consecutive failures that trip the breaker.
        reset_timeout_s: Cooldown before the first half-open probe.
        backoff_factor: Cooldown multiplier after each failed probe.
        max_reset_timeout_s: Cooldown ceiling.
    """

    failure_threshold: int = 3
    reset_timeout_s: float = 5.0
    backoff_factor: float = 2.0
    max_reset_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.reset_timeout_s <= 0:
            raise ConfigurationError("reset_timeout_s must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if self.max_reset_timeout_s < self.reset_timeout_s:
            raise ConfigurationError(
                "max_reset_timeout_s must be >= reset_timeout_s"
            )


class CircuitBreaker:
    """Consecutive-failure breaker timed on the simulated clock.

    Args:
        clock: The service clock cooldowns are measured on.
        config: Breaker parameters.
        on_transition: Optional callback ``(old_state, new_state)`` invoked
            on every state change (the supervisor wires this to the event
            log).
        instrumentation: Optional :class:`repro.obs.Instrumentation`;
            counts state transitions into
            ``breaker_transitions_total{from=...,to=...}``.
    """

    def __init__(
        self,
        clock: SimulatedClock,
        config: BreakerConfig | None = None,
        on_transition: Callable[[BreakerState, BreakerState], None] | None = None,
        instrumentation: Instrumentation | None = None,
    ):
        self._clock = clock
        self.config = config if config is not None else BreakerConfig()
        self._on_transition = on_transition
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_s: float | None = None
        self._current_timeout_s = self.config.reset_timeout_s

    @property
    def state(self) -> BreakerState:
        """Current breaker state (OPEN may lazily become HALF_OPEN on
        :meth:`allow_call` once the cooldown elapses)."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        """Failures since the last success."""
        return self._consecutive_failures

    def retry_after_s(self) -> float:
        """Simulated seconds until the next probe is allowed (0 if callable
        now)."""
        if self._state is not BreakerState.OPEN or self._opened_at_s is None:
            return 0.0
        remaining = (
            self._opened_at_s + self._current_timeout_s - self._clock.now_s
        )
        return max(0.0, remaining)

    def allow_call(self) -> bool:
        """Whether a call may proceed right now.

        In OPEN state, returns False until the cooldown elapses, at which
        point the breaker moves to HALF_OPEN and admits one probe.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN:
            return True
        if self.retry_after_s() <= 0.0:
            self._transition(BreakerState.HALF_OPEN)
            return True
        return False

    def record_success(self) -> None:
        """A call completed: reset the failure streak, close the breaker."""
        self._consecutive_failures = 0
        self._current_timeout_s = self.config.reset_timeout_s
        if self._state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)
        self._opened_at_s = None

    def record_failure(self) -> None:
        """A call failed: count it; trip or re-open the breaker as needed."""
        self._consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            # Failed probe: re-open with a longer cooldown, bounded.
            self._current_timeout_s = min(
                self._current_timeout_s * self.config.backoff_factor,
                self.config.max_reset_timeout_s,
            )
            self._open()
        elif (
            self._state is BreakerState.CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._opened_at_s = self._clock.now_s
        self._transition(BreakerState.OPEN)

    def _transition(self, new_state: BreakerState) -> None:
        old_state = self._state
        self._state = new_state
        if old_state is not new_state:
            self._obs.count(
                "breaker_transitions_total",
                labels={
                    "from_state": old_state.value,
                    "to_state": new_state.value,
                },
                help_text="Circuit-breaker state changes.",
            )
        if self._on_transition is not None and old_state is not new_state:
            self._on_transition(old_state, new_state)
