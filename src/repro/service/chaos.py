"""Scripted chaos harness: drive the service through declarative failures.

A :class:`ChaosScenario` is a named list of :class:`TimedFault` entries — a
JSON-serializable script of *when* each fault starts and how long it lasts.
:func:`run_chaos` builds a simulated scene, runs the supervised service
twice (once fault-free, once under the scenario), and condenses the outcome
into a :class:`ChaosReport` whose :meth:`~ChaosReport.violations` method
checks the recovery invariants the benchmark suite asserts:

* the subject ends the run healthy with a closed breaker;
* post-recovery fresh estimates exist and their median error stays within
  a tolerance of the fault-free run's median error;
* the event log contains the transitions the fault implies, in order.

Fault kinds ``crash`` / ``stall`` / ``hang`` / ``transient-errors`` map to
:class:`~repro.service.sources.SourceFault` injections at the source;
``degrade`` instead corrupts the underlying capture itself for a window
(via :class:`~repro.rf.impairments.SegmentImpairment` + Bernoulli loss),
which is what exercises the quality gates and the estimator fallback
ladder rather than the breaker.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..core.streaming import StreamingConfig
from ..errors import ConfigurationError
from ..eval.harness import default_subject
from ..io_.quality import assess_trace
from ..obs import Instrumentation, MetricsRegistry
from ..rf.impairments import BernoulliLoss, SegmentImpairment, apply_impairments
from ..rf.receiver import capture_trace
from ..rf.scene import laboratory_scenario
from .clock import SimulatedClock
from .events import EventLog
from .sources import FlakySourceAdapter, SourceFault, TracePacketSource
from .supervisor import (
    MonitorSupervisor,
    ServiceEstimate,
    SubjectHealth,
    SupervisorConfig,
)

__all__ = [
    "TimedFault",
    "ChaosScenario",
    "ChaosReport",
    "SHIPPED_SCENARIOS",
    "load_scenario",
    "flaky_source_factory",
    "run_chaos",
]

_TIMED_FAULT_KINDS = (
    "crash",
    "stall",
    "hang",
    "transient-errors",
    "degrade",
    "monitor-crash",
)


@dataclass(frozen=True)
class TimedFault:
    """One scripted fault in a chaos scenario.

    Attributes:
        kind: One of ``crash``, ``stall``, ``hang``, ``transient-errors``
            (source-side, see :class:`~repro.service.sources.SourceFault`),
            ``degrade`` (capture-side burst of packet loss), or
            ``monitor-crash`` (the monitor process itself dies and must be
            rebuilt from its latest checkpoint, scheduled via
            :meth:`MonitorSupervisor.schedule_monitor_crash`).
        at_s: Fault start, in simulated seconds.
        duration_s: Window length for windowed kinds.
        probability: Per-read error probability (``transient-errors``).
        hang_s: Blocked-read length (``hang``).
        loss_fraction: Packet-loss rate inside the window (``degrade``).
    """

    kind: str
    at_s: float
    duration_s: float = 0.0
    probability: float = 1.0
    hang_s: float = 0.0
    loss_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.kind not in _TIMED_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_TIMED_FAULT_KINDS}"
            )
        if self.kind == "degrade":
            if self.duration_s <= 0:
                raise ConfigurationError("degrade fault needs duration_s > 0")
            if not 0.0 < self.loss_fraction < 1.0:
                raise ConfigurationError("loss_fraction must be in (0, 1)")

    @property
    def end_s(self) -> float:
        """When the fault's effect window closes."""
        if self.kind == "hang":
            return self.at_s + self.hang_s
        return self.at_s + self.duration_s

    def to_source_fault(self) -> SourceFault | None:
        """The source-side injection, or ``None`` for non-source kinds."""
        if self.kind in ("degrade", "monitor-crash"):
            return None
        return SourceFault(
            kind=self.kind,
            at_s=self.at_s,
            duration_s=self.duration_s,
            probability=self.probability,
            hang_s=self.hang_s,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "probability": self.probability,
            "hang_s": self.hang_s,
            "loss_fraction": self.loss_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TimedFault":
        """Parse one fault entry; unknown keys are rejected."""
        allowed = {
            "kind",
            "at_s",
            "duration_s",
            "probability",
            "hang_s",
            "loss_fraction",
        }
        unknown = set(data) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown fault fields {sorted(unknown)}; allowed: "
                f"{sorted(allowed)}"
            )
        if "kind" not in data or "at_s" not in data:
            raise ConfigurationError("a fault needs at least 'kind' and 'at_s'")
        return cls(**data)


@dataclass(frozen=True)
class ChaosScenario:
    """A named, serializable schedule of timed faults.

    Attributes:
        name: Scenario identifier (used in reports and CLI).
        faults: The fault schedule.
        description: Human-readable intent of the scenario.
        use_learned_rung: Run the service with a learned estimator rung in
            the fallback ladder (a synthetic-corpus bundle is trained
            in-process from the run seed, so reports stay deterministic).
    """

    name: str
    faults: tuple[TimedFault, ...]
    description: str = ""
    use_learned_rung: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def last_fault_end_s(self) -> float:
        """When the last fault's effect window closes (0 with no faults)."""
        return max((f.end_s for f in self.faults), default=0.0)

    def source_faults(self) -> tuple[SourceFault, ...]:
        """The source-side injections (``degrade`` entries excluded)."""
        return tuple(
            sf
            for sf in (f.to_source_fault() for f in self.faults)
            if sf is not None
        )

    def degrade_faults(self) -> tuple[TimedFault, ...]:
        """The capture-side ``degrade`` entries."""
        return tuple(f for f in self.faults if f.kind == "degrade")

    def monitor_crash_times_s(self) -> tuple[float, ...]:
        """Scheduled ``monitor-crash`` times, sorted."""
        return tuple(
            sorted(f.at_s for f in self.faults if f.kind == "monitor-crash")
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (the scenario-file schema)."""
        return {
            "name": self.name,
            "description": self.description,
            "faults": [f.to_dict() for f in self.faults],
            "use_learned_rung": self.use_learned_rung,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosScenario":
        """Parse a scenario dict (the inverse of :meth:`to_dict`)."""
        if "name" not in data:
            raise ConfigurationError("scenario dict needs a 'name'")
        faults = data.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ConfigurationError("'faults' must be a list")
        return cls(
            name=str(data["name"]),
            faults=tuple(TimedFault.from_dict(f) for f in faults),
            description=str(data.get("description", "")),
            use_learned_rung=bool(data.get("use_learned_rung", False)),
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosScenario":
        """Parse a scenario from its JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"scenario is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError("scenario JSON must be an object")
        return cls.from_dict(data)

    def to_json(self) -> str:
        """Serialize to the scenario-file JSON schema."""
        return json.dumps(self.to_dict(), indent=2)


def load_scenario(path: str) -> ChaosScenario:
    """Load a scenario from a JSON file (the ``--chaos-scenario`` format)."""
    with open(path, encoding="utf-8") as fh:
        return ChaosScenario.from_json(fh.read())


# The shipped scenario library: one scenario per fault domain the service
# must survive.  Timings assume the default run_chaos geometry (90 s trace,
# 15 s windows): faults start after the monitor has warmed up and end with
# enough clean tail for post-recovery windows.
SHIPPED_SCENARIOS: dict[str, ChaosScenario] = {
    "source-crash": ChaosScenario(
        name="source-crash",
        description=(
            "The capture process dies mid-run; the resilient wrapper must "
            "rebuild it from the factory and resume live."
        ),
        faults=(TimedFault(kind="crash", at_s=30.0),),
    ),
    "sustained-stall": ChaosScenario(
        name="sustained-stall",
        description=(
            "The source goes silent for several watchdog periods while its "
            "backlog is lost; the watchdog must detect the stall and "
            "force-restart the source."
        ),
        faults=(TimedFault(kind="stall", at_s=30.0, duration_s=6.0),),
    ),
    "transient-errors": ChaosScenario(
        name="transient-errors",
        description=(
            "Every read fails transiently for a window; retries must be "
            "bounded, the breaker must open, and a half-open probe must "
            "close it once the window passes."
        ),
        faults=(
            TimedFault(
                kind="transient-errors", at_s=30.0, duration_s=6.0,
                probability=1.0,
            ),
        ),
    ),
    "checkpoint-restore-loss": ChaosScenario(
        name="checkpoint-restore-loss",
        description=(
            "The monitor process dies in the middle of a packet-loss "
            "burst; the supervisor must restore the incremental engine "
            "from its latest periodic checkpoint and ride out the rest of "
            "the burst on the restored state, recovering once it clears."
        ),
        faults=(
            TimedFault(
                kind="degrade", at_s=28.0, duration_s=16.0, loss_fraction=0.5
            ),
            TimedFault(kind="monitor-crash", at_s=38.0),
        ),
    ),
    "degradation-burst": ChaosScenario(
        name="degradation-burst",
        description=(
            "A burst of heavy packet loss degrades the capture itself; the "
            "quality gates must fire and the estimator fallback ladder must "
            "escalate, then recover after the burst."
        ),
        faults=(
            TimedFault(
                kind="degrade", at_s=28.0, duration_s=14.0, loss_fraction=0.6
            ),
        ),
    ),
    "learned-degradation-burst": ChaosScenario(
        name="learned-degradation-burst",
        description=(
            "The degradation burst again, but with a learned estimator "
            "rung in the ladder: escalation must land on the learned rung "
            "first, serve through the burst, and recover to the primary."
        ),
        faults=(
            TimedFault(
                kind="degrade", at_s=28.0, duration_s=14.0, loss_fraction=0.6
            ),
        ),
        use_learned_rung=True,
    ),
}


def flaky_source_factory(
    trace: Any,
    clock: SimulatedClock,
    faults: tuple[SourceFault, ...],
    *,
    seed: int = 0,
    nominal_interval_s: float = 0.01,
) -> Callable[[float], FlakySourceAdapter]:
    """A ``factory(start_at_s) -> PacketSource`` injecting scripted faults.

    The factory filters the schedule on every (re)build: a rebuilt source
    only carries faults whose effect lies at or beyond its start time, so a
    source rebuilt after a crash does not immediately re-crash on the same
    scripted fault.  Windowed faults still in progress are kept — restarting
    mid-stall does not un-stall the hardware.
    """

    def factory(start_at_s: float) -> FlakySourceAdapter:
        remaining = tuple(
            f
            for f in faults
            if (f.end_s > start_at_s)
            if not (f.kind in ("crash", "hang") and f.at_s <= start_at_s)
        )
        return FlakySourceAdapter(
            TracePacketSource(trace, clock, start_at_s=start_at_s),
            clock,
            faults=remaining,
            seed=seed,
            nominal_interval_s=nominal_interval_s,
        )

    return factory


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos run, with its fault-free reference.

    Attributes:
        scenario: The scenario that was run.
        truth_bpm: Ground-truth breathing rate of the simulated subject.
        estimates: Service emissions from the faulted run.
        events: Event log of the faulted run.
        health: Final :meth:`~MonitorSupervisor.health_summary` entry of
            the faulted run's subject.
        fault_free_median_error_bpm: Median |error| of fresh fault-free
            estimates.
        post_recovery_median_error_bpm: Median |error| of fresh estimates
            after the recovery horizon (``nan`` when none exist).
        recovery_horizon_s: Time from which estimates count as
            post-recovery (last fault end + one analysis window).
        n_post_recovery: Number of fresh post-recovery estimates.
        trace_quality: One-line quality summary of the (possibly degraded)
            capture the faulted run consumed.
    """

    scenario: ChaosScenario
    truth_bpm: float
    estimates: list[ServiceEstimate] = field(repr=False)
    events: EventLog = field(repr=False)
    health: dict[str, Any]
    fault_free_median_error_bpm: float
    post_recovery_median_error_bpm: float
    recovery_horizon_s: float
    n_post_recovery: int
    trace_quality: str

    def violations(self, *, tolerance_bpm: float = 0.5) -> list[str]:
        """Recovery invariants violated by this run (empty = recovered).

        Args:
            tolerance_bpm: Allowed excess of the post-recovery median
                error over the fault-free median error.
        """
        found = []
        if self.n_post_recovery == 0:
            found.append("no-post-recovery-estimates")
        elif math.isnan(self.post_recovery_median_error_bpm) or (
            self.post_recovery_median_error_bpm
            > self.fault_free_median_error_bpm + tolerance_bpm
        ):
            found.append("post-recovery-error-above-budget")
        if self.health["health"] != SubjectHealth.HEALTHY.value:
            found.append("final-health-not-healthy")
        if self.health["breaker"] != "closed":
            found.append("breaker-not-closed")
        return found

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-safe summary (estimates collapsed to counts/medians)."""
        return {
            "scenario": self.scenario.to_dict(),
            "truth_bpm": self.truth_bpm,
            "n_estimates": len(self.estimates),
            "n_post_recovery": self.n_post_recovery,
            "fault_free_median_error_bpm": self.fault_free_median_error_bpm,
            "post_recovery_median_error_bpm": (
                self.post_recovery_median_error_bpm
            ),
            "recovery_horizon_s": self.recovery_horizon_s,
            "trace_quality": self.trace_quality,
            "health": self.health,
            "violations": self.violations(),
            "n_events": len(self.events),
        }


def _median_error(
    estimates: list[ServiceEstimate],
    truth_bpm: float,
    *,
    after_s: float = 0.0,
) -> tuple[float, int]:
    errors = [
        abs(e.rate_bpm - truth_bpm)
        for e in estimates
        if e.fresh and e.ok and e.time_s >= after_s
    ]
    if not errors:
        return float("nan"), 0
    return float(np.median(errors)), len(errors)


def _run_supervised(
    trace: Any,
    sample_rate_hz: float,
    *,
    source_faults: tuple[SourceFault, ...],
    streaming_config: StreamingConfig,
    supervisor_config: SupervisorConfig,
    seed: int,
    subject_name: str,
    registry: MetricsRegistry | None = None,
    monitor_crash_times_s: tuple[float, ...] = (),
    learned_bundle: Any | None = None,
) -> tuple[MonitorSupervisor, list[ServiceEstimate]]:
    clock = SimulatedClock(float(trace.timestamps_s[0]))
    instrumentation = (
        Instrumentation(clock=clock, registry=registry)
        if registry is not None
        else None
    )
    learned_estimator = None
    if learned_bundle is not None:
        # Each run gets its own estimator instance so its feature cache and
        # metrics stay confined to that run.
        from ..learn import LearnedEstimator

        learned_estimator = LearnedEstimator(
            learned_bundle, instrumentation=instrumentation
        )
    supervisor = MonitorSupervisor(
        clock=clock,
        config=supervisor_config,
        streaming_config=streaming_config,
        seed=seed,
        instrumentation=instrumentation,
        learned_estimator=learned_estimator,
    )
    interval_s = 1.0 / sample_rate_hz
    supervisor.add_subject(
        subject_name,
        flaky_source_factory(
            trace,
            clock,
            source_faults,
            seed=seed + 11,
            nominal_interval_s=interval_s,
        ),
        sample_rate_hz,
    )
    t0_s = float(trace.timestamps_s[0])
    for crash_at_s in monitor_crash_times_s:
        supervisor.schedule_monitor_crash(subject_name, t0_s + crash_at_s)
    duration_s = float(trace.timestamps_s[-1] - trace.timestamps_s[0])
    # Budgeted well past the trace so exhaustion, not the budget, normally
    # ends the run — the budget only bounds pathological stall loops.
    results = supervisor.run(max_duration_s=duration_s + 30.0)
    return supervisor, results[subject_name]


def run_chaos(
    scenario: ChaosScenario,
    *,
    duration_s: float = 90.0,
    sample_rate_hz: float = 100.0,
    seed: int = 0,
    streaming_config: StreamingConfig | None = None,
    supervisor_config: SupervisorConfig | None = None,
    registry: MetricsRegistry | None = None,
) -> ChaosReport:
    """Run the supervised service through one chaos scenario.

    Builds a one-person laboratory scene, captures a clean trace, applies
    any ``degrade`` faults to the capture, runs the service once fault-free
    (clean trace, no source faults) and once under the scenario, and
    reports recovery statistics relative to the fault-free run.

    Args:
        scenario: The fault schedule to execute.
        duration_s: Simulated capture length.
        sample_rate_hz: Packet rate of the capture.
        seed: Master seed (scene, capture, impairments, service jitter).
        streaming_config: Monitor parameters; a chaos-friendly default
            (15 s window, 5 s hop, 0.5 s gap tolerance) when omitted.
        supervisor_config: Supervision parameters; defaults when omitted.
        registry: Optional metrics registry the *faulted* run records into
            (timed on its simulated clock, so snapshots are deterministic).
            The fault-free reference run is never instrumented.

    Returns:
        The :class:`ChaosReport`.
    """
    if scenario.last_fault_end_s >= duration_s:
        raise ConfigurationError(
            f"scenario {scenario.name!r} ends at "
            f"{scenario.last_fault_end_s:.1f}s but the capture is only "
            f"{duration_s:.1f}s — no clean tail to recover in"
        )
    if streaming_config is None:
        streaming_config = StreamingConfig(
            window_s=15.0, hop_s=5.0, max_gap_s=0.5, holdover_s=30.0
        )
    if supervisor_config is None:
        supervisor_config = SupervisorConfig()

    rng = np.random.default_rng(seed)
    person = default_subject(rng)
    scene = laboratory_scenario([person], clutter_seed=seed)
    trace = capture_trace(
        scene,
        duration_s=duration_s,
        sample_rate_hz=sample_rate_hz,
        seed=seed,
    )
    truth_bpm = float(trace.meta["breathing_rates_bpm"][0])

    degraded_trace = trace
    degrades = scenario.degrade_faults()
    if degrades:
        degraded_trace = apply_impairments(
            trace,
            [
                SegmentImpairment(
                    inner=BernoulliLoss(loss_fraction=f.loss_fraction),
                    start_s=f.at_s,
                    end_s=f.end_s,
                )
                for f in degrades
            ],
            seed=seed + 1,
        )

    learned_bundle = None
    if scenario.use_learned_rung:
        # One deterministic training pass shared by both runs; each run
        # then wraps the bundle in its own estimator instance.
        from ..learn import TrainingConfig, train

        learned_bundle = train(
            TrainingConfig(
                mode="synthetic", n_windows=96, seed=seed, with_mlp=False
            )
        )

    _, reference_estimates = _run_supervised(
        trace,
        sample_rate_hz,
        source_faults=(),
        streaming_config=streaming_config,
        supervisor_config=supervisor_config,
        seed=seed,
        subject_name="subject",
        learned_bundle=learned_bundle,
    )
    fault_free_median, _ = _median_error(reference_estimates, truth_bpm)

    faulted, estimates = _run_supervised(
        degraded_trace,
        sample_rate_hz,
        source_faults=scenario.source_faults(),
        streaming_config=streaming_config,
        supervisor_config=supervisor_config,
        seed=seed,
        subject_name="subject",
        registry=registry,
        monitor_crash_times_s=scenario.monitor_crash_times_s(),
        learned_bundle=learned_bundle,
    )
    health = faulted.health_summary()["subject"]

    horizon_s = (
        float(trace.timestamps_s[0])
        + scenario.last_fault_end_s
        + streaming_config.window_s
    )
    post_median, n_post = _median_error(
        estimates, truth_bpm, after_s=horizon_s
    )
    return ChaosReport(
        scenario=scenario,
        truth_bpm=truth_bpm,
        estimates=estimates,
        events=faulted.events,
        health=health,
        fault_free_median_error_bpm=fault_free_median,
        post_recovery_median_error_bpm=post_median,
        recovery_horizon_s=horizon_s,
        n_post_recovery=n_post,
        trace_quality=assess_trace(degraded_trace).summary(),
    )
