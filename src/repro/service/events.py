"""Structured service event log.

Every state transition in the service layer — breaker trips, source
restarts, watchdog stalls, monitor restarts, checkpoints, fallback ladder
moves, health changes — is recorded as a typed :class:`ServiceEvent` rather
than a log line, so tests (and the chaos harness's recovery invariants) can
assert on transition *order* and the CLI can print a faithful account of a
run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["ServiceEvent", "EventLog"]


@dataclass(frozen=True)
class ServiceEvent:
    """One service-layer state transition.

    Attributes:
        time_s: Simulated time the event occurred.
        subject: Subject (monitor) the event belongs to, or ``""`` for
            service-wide events.
        kind: Machine-readable event type, e.g. ``"breaker-open"``,
            ``"source-restart"``, ``"fallback-escalated"``.
        detail: Free-form JSON-serializable context (reasons, counters).
    """

    time_s: float
    subject: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "time_s": self.time_s,
            "subject": self.subject,
            "kind": self.kind,
            "detail": dict(self.detail),
        }


class EventLog:
    """Append-only, time-ordered list of :class:`ServiceEvent` records."""

    def __init__(self) -> None:
        self._events: list[ServiceEvent] = []

    def record(
        self,
        time_s: float,
        subject: str,
        kind: str,
        **detail: Any,
    ) -> ServiceEvent:
        """Append one event and return it."""
        event = ServiceEvent(
            time_s=float(time_s), subject=subject, kind=kind, detail=detail
        )
        self._events.append(event)
        return event

    @property
    def events(self) -> tuple[ServiceEvent, ...]:
        """All recorded events, in arrival order."""
        return tuple(self._events)

    def kinds(
        self, *, subject: str | None = None
    ) -> list[str]:
        """Event kinds in order (optionally for one subject) — the thing
        transition-order assertions compare against."""
        return [e.kind for e in self.select(subject=subject)]

    def select(
        self, *, kind: str | None = None, subject: str | None = None
    ) -> list[ServiceEvent]:
        """Events matching the given kind and/or subject."""
        return [
            e
            for e in self._events
            if (kind is None or e.kind == kind)
            and (subject is None or e.subject == subject)
        ]

    def to_jsonable(self) -> list[dict[str, Any]]:
        """JSON-safe list of all events."""
        return [e.to_dict() for e in self._events]

    def to_jsonl(self) -> str:
        """One canonical-JSON line per event, in arrival order.

        Lines are compact and key-sorted, so two identical runs produce
        byte-identical output (the ``--events-out`` file format).
        """
        return "".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            + "\n"
            for e in self._events
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ServiceEvent]:
        return iter(self._events)
