"""Simulated time: the clock every service component schedules against.

The service layer never reads the wall clock (phaselint PL001 bans it):
retries, backoff delays, circuit-breaker cooldowns, watchdog deadlines, and
checkpoint periods are all measured on one shared :class:`SimulatedClock`
that only moves forward when something advances it — a packet arriving with
a later timestamp, a simulated hang, or a backoff sleep.  That makes every
fault scenario bit-replayable: the same packet sequence and fault script
produce the same event log, byte for byte, on every run.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["SimulatedClock"]


class SimulatedClock:
    """A monotonically advancing simulated clock.

    Args:
        start_s: Initial time.

    The clock can only move forward; components advance it explicitly
    (``advance``) or pin it to an event time (``advance_to``, which is a
    no-op when the target is in the past — packet timestamps may lag the
    clock after a backoff sleep).
    """

    def __init__(self, start_s: float = 0.0):
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        """Current simulated time."""
        return self._now_s

    def advance(self, dt_s: float) -> float:
        """Move the clock forward by ``dt_s`` seconds; returns the new time."""
        if dt_s < 0:
            raise ConfigurationError(
                f"clock can only advance forward, got dt={dt_s}"
            )
        self._now_s += float(dt_s)
        return self._now_s

    def advance_to(self, t_s: float) -> float:
        """Move forward to ``t_s`` if it is in the future; never backward."""
        if t_s > self._now_s:
            self._now_s = float(t_s)
        return self._now_s

    def __repr__(self) -> str:
        return f"SimulatedClock(now_s={self._now_s:.6f})"
