"""Packet sources: the capture-side fault domain of the service layer.

A :class:`PacketSource` is the service's view of capture hardware: a
pull-based stream of timestamped CSI packets that may momentarily have
nothing to deliver (``None``), fail transiently, hang past its deadline, or
die outright.  Three concrete layers are provided:

* :class:`TracePacketSource` — replays a :class:`~repro.io_.trace.CSITrace`
  packet by packet, advancing the shared simulated clock to each packet's
  capture time (the clock's only "natural" driver).
* :class:`FlakySourceAdapter` — wraps any source and injects *scripted*,
  seeded faults (hard crashes, silent stalls, hangs, windows of transient
  errors), the mechanism the chaos harness drives.
* :class:`ResilientSource` — the supervision wrapper: per-call deadline,
  bounded retry with seeded exponential backoff + jitter (all delays paid
  in simulated time), a per-source circuit breaker, and factory-based
  rebuild after a hard crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, NamedTuple, Protocol, runtime_checkable

import numpy as np

from ..contracts import ComplexArray
from ..errors import (
    CircuitOpenError,
    ConfigurationError,
    SourceCrashedError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
)
from ..io_.trace import CSITrace
from ..obs import NULL_INSTRUMENTATION, Instrumentation
from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .clock import SimulatedClock
from .events import EventLog

__all__ = [
    "Packet",
    "PacketSource",
    "TracePacketSource",
    "SourceFault",
    "FlakySourceAdapter",
    "RetryConfig",
    "ResilientSource",
]

_FAULT_KINDS = ("crash", "stall", "hang", "transient-errors")


class Packet(NamedTuple):
    """One captured CSI packet.

    Attributes:
        csi: Complex CSI of the packet, shape ``(n_rx, n_subcarriers)``.
        timestamp_s: Capture time.
    """

    csi: ComplexArray
    timestamp_s: float


@runtime_checkable
class PacketSource(Protocol):
    """What the service requires of a capture source.

    ``next_packet`` returns the next packet, or ``None`` when nothing is
    available *right now* (the caller should treat persistent ``None`` with
    advancing time as a stall); it may raise
    :class:`~repro.errors.TransientSourceError` (retryable) or
    :class:`~repro.errors.SourceCrashedError` (terminal for this instance).
    ``exhausted`` is True once the underlying data is finished for good.
    """

    def next_packet(self) -> Packet | None:
        """Deliver the next packet, ``None`` if none is available yet."""
        ...

    @property
    def exhausted(self) -> bool:
        """Whether the source has permanently run out of data."""
        ...


class TracePacketSource:
    """Replay a stored/simulated trace as a live packet source.

    Each delivered packet advances the shared clock to its capture time,
    which is how simulated time normally flows through the service.

    Args:
        trace: The capture to replay.
        clock: The service clock to advance.
        start_at_s: Skip packets captured before this time — how a source
            rebuilt after a crash resumes "live" instead of replaying the
            past.
    """

    def __init__(
        self,
        trace: CSITrace,
        clock: SimulatedClock,
        *,
        start_at_s: float | None = None,
    ):
        self._trace = trace
        self._clock = clock
        self._index = 0
        if start_at_s is not None:
            self._index = int(
                np.searchsorted(trace.timestamps_s, start_at_s, side="left")
            )

    @property
    def exhausted(self) -> bool:
        """True once the whole trace has been delivered."""
        return self._index >= self._trace.n_packets

    def next_packet(self) -> Packet | None:
        """Deliver the next packet and advance the clock to its time."""
        if self.exhausted:
            return None
        k = self._index
        self._index += 1
        timestamp_s = float(self._trace.timestamps_s[k])
        self._clock.advance_to(timestamp_s)
        return Packet(csi=self._trace.csi[k], timestamp_s=timestamp_s)


@dataclass(frozen=True)
class SourceFault:
    """One scripted fault in a :class:`FlakySourceAdapter` schedule.

    Attributes:
        kind: ``"crash"`` (hard, permanent death at ``at_s``),
            ``"stall"`` (silent: no packets, data lost, for ``duration_s``),
            ``"hang"`` (one read blocks ``hang_s`` before returning), or
            ``"transient-errors"`` (reads raise
            :class:`~repro.errors.TransientSourceError` with
            ``probability`` while the window lasts).
        at_s: When the fault starts (simulated time).
        duration_s: Window length for ``"stall"`` / ``"transient-errors"``.
        probability: Per-read error probability for ``"transient-errors"``.
        hang_s: Blocked-read length for ``"hang"``.
    """

    kind: str
    at_s: float
    duration_s: float = 0.0
    probability: float = 1.0
    hang_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError("fault at_s must be >= 0")
        if self.kind in ("stall", "transient-errors") and self.duration_s <= 0:
            raise ConfigurationError(f"{self.kind} fault needs duration_s > 0")
        if self.kind == "hang" and self.hang_s <= 0:
            raise ConfigurationError("hang fault needs hang_s > 0")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")

    @property
    def end_s(self) -> float:
        """When the fault's window closes (== ``at_s`` for instant faults)."""
        return self.at_s + self.duration_s


class FlakySourceAdapter:
    """Inject scripted, seeded faults into any packet source.

    Faults are evaluated against the shared simulated clock: a ``crash``
    is permanent from ``at_s`` on; a ``stall`` silently loses the inner
    source's packets for its window while polls return ``None``; a ``hang``
    makes exactly one read consume ``hang_s`` of simulated time before
    delivering; ``transient-errors`` raise with a seeded coin flip while
    the window lasts.

    Args:
        inner: The healthy source being made flaky.
        clock: The shared service clock.
        faults: Scripted fault schedule.
        seed: Seed for the transient-error coin flips.
        nominal_interval_s: Poll cadence during a stall (how much simulated
            time a fruitless read consumes).
    """

    def __init__(
        self,
        inner: PacketSource,
        clock: SimulatedClock,
        faults: tuple[SourceFault, ...] | list[SourceFault] = (),
        *,
        seed: int = 0,
        nominal_interval_s: float = 0.01,
    ):
        if nominal_interval_s <= 0:
            raise ConfigurationError("nominal_interval_s must be positive")
        self._inner = inner
        self._clock = clock
        self._faults = tuple(faults)
        self._rng = np.random.default_rng(seed)
        self._interval_s = float(nominal_interval_s)
        self._crashed = False
        self._fired_hangs: set[int] = set()
        self._pending: Packet | None = None
        self.n_dropped_in_stalls = 0

    @property
    def exhausted(self) -> bool:
        """True once the inner source is done and nothing is buffered."""
        return self._pending is None and self._inner.exhausted

    def _pull(self) -> Packet | None:
        if self._pending is not None:
            pkt, self._pending = self._pending, None
            return pkt
        return self._inner.next_packet()

    def next_packet(self) -> Packet | None:
        """Deliver the next packet, subject to the fault schedule."""
        if self._crashed:
            raise SourceCrashedError("source previously crashed")
        now = self._clock.now_s
        for index, fault in enumerate(self._faults):
            if fault.kind == "crash" and now >= fault.at_s:
                self._crashed = True
                raise SourceCrashedError(
                    f"scripted hard crash at t={fault.at_s:.3f}s"
                )
            if fault.kind == "stall" and fault.at_s <= now < fault.end_s:
                return self._stall_poll()
            if (
                fault.kind == "transient-errors"
                and fault.at_s <= now < fault.end_s
                and float(self._rng.random()) < fault.probability
            ):
                raise TransientSourceError(
                    f"scripted transient read error at t={now:.3f}s"
                )
            if (
                fault.kind == "hang"
                and now >= fault.at_s
                and index not in self._fired_hangs
            ):
                self._fired_hangs.add(index)
                self._clock.advance(fault.hang_s)
        return self._pull()

    def _stall_poll(self) -> None:
        """One fruitless poll: time passes, the backlog is lost."""
        new_now = self._clock.advance(self._interval_s)
        while True:
            pkt = self._pull()
            if pkt is None:
                break
            if pkt.timestamp_s >= new_now:
                self._pending = pkt
                break
            self.n_dropped_in_stalls += 1
        return None


@dataclass(frozen=True)
class RetryConfig:
    """Bounded-retry parameters for transient source failures.

    Attributes:
        max_retries: Additional attempts after the first failure.
        backoff_base_s: Delay before the first retry.
        backoff_factor: Multiplier per subsequent retry.
        jitter_fraction: Uniform ±fraction applied to each delay (seeded),
            so many sources retrying together do not synchronize.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base_s <= 0:
            raise ConfigurationError("backoff_base_s must be positive")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")


class ResilientSource:
    """Deadline + retry + circuit breaker + rebuild around a flaky source.

    All waiting (backoff sleeps, hang detection, breaker cooldowns) happens
    on the simulated clock; all jitter comes from a generator seeded at
    construction, so a resilient read sequence is bit-replayable.

    Args:
        source_factory: ``factory(start_at_s) -> PacketSource`` building a
            fresh source that starts delivering at the given time; called
            once up front and again after every hard crash.
        clock: The shared service clock.
        subject: Name used in recorded events.
        events: Event log breaker transitions and restarts are recorded to.
        deadline_s: Budget for one read (simulated time); a slower read is
            discarded and reported as :class:`~repro.errors.SourceTimeoutError`.
        retry: Bounded-backoff parameters for transient errors.
        breaker: Circuit-breaker parameters.
        seed: Seed for backoff jitter.
        instrumentation: Optional :class:`repro.obs.Instrumentation`;
            mirrors the ``counters`` tallies into ``source_*_total``
            series labelled by subject, shared with the inner breaker.

    Attributes:
        counters: Tallies — ``reads_ok``, ``transient_errors``,
            ``timeouts``, ``crashes``, ``rebuilds``, ``circuit_rejections``.
    """

    def __init__(
        self,
        source_factory: Callable[[float], PacketSource],
        clock: SimulatedClock,
        *,
        subject: str = "",
        events: EventLog | None = None,
        deadline_s: float = 1.0,
        retry: RetryConfig | None = None,
        breaker: BreakerConfig | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
    ):
        if deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")
        self._factory = source_factory
        self._clock = clock
        self._subject = subject
        self._events = events if events is not None else EventLog()
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self.deadline_s = float(deadline_s)
        self.retry = retry if retry is not None else RetryConfig()
        self._rng = np.random.default_rng(seed)
        self.breaker = CircuitBreaker(
            clock,
            breaker if breaker is not None else BreakerConfig(),
            on_transition=self._on_breaker_transition,
            instrumentation=self._obs,
        )
        self._source = source_factory(clock.now_s)
        self.counters: dict[str, int] = {
            "reads_ok": 0,
            "transient_errors": 0,
            "timeouts": 0,
            "crashes": 0,
            "rebuilds": 0,
            "circuit_rejections": 0,
        }

    @property
    def exhausted(self) -> bool:
        """True once the current underlying source is out of data."""
        return self._source.exhausted

    @property
    def events(self) -> EventLog:
        """The event log this source records to."""
        return self._events

    def _on_breaker_transition(
        self, old: BreakerState, new: BreakerState
    ) -> None:
        self._events.record(
            self._clock.now_s,
            self._subject,
            f"breaker-{new.value}",
            previous=old.value,
        )

    def _count(self, name: str, help_text: str) -> None:
        """Mirror one ``counters`` increment into the metrics registry."""
        self._obs.count(
            name, labels={"subject": self._subject}, help_text=help_text
        )

    def _backoff_delay_s(self, attempt: int) -> float:
        base = self.retry.backoff_base_s * self.retry.backoff_factor**attempt
        jitter = 1.0 + self.retry.jitter_fraction * float(
            self._rng.uniform(-1.0, 1.0)
        )
        return base * jitter

    def _rebuild(self) -> None:
        """Replace a crashed source with a fresh one starting 'now'."""
        self._source = self._factory(self._clock.now_s)
        self.counters["rebuilds"] += 1
        self._count("source_rebuilds_total", "Sources rebuilt after a crash or stall.")
        self._events.record(
            self._clock.now_s, self._subject, "source-restart"
        )

    def force_restart(self) -> None:
        """Rebuild the underlying source at the current simulated time.

        The supervisor's watchdog calls this when a source silently stalls
        (delivers nothing while time advances) — a state no exception ever
        reports.
        """
        self._rebuild()

    def next_packet(self) -> Packet | None:
        """One supervised read.

        Returns:
            The packet, or ``None`` when the source has nothing yet.

        Raises:
            CircuitOpenError: The breaker is open; no read was attempted.
            SourceTimeoutError: The read blew its deadline (packet, if any,
                is discarded as stale).
            SourceUnavailableError: Transient failures exhausted the retry
                budget (chained from the last failure).
            SourceCrashedError: The source died; it has already been
                rebuilt for the next call.
        """
        if not self.breaker.allow_call():
            self.counters["circuit_rejections"] += 1
            self._count(
                "source_circuit_rejections_total",
                "Reads short-circuited by an open breaker.",
            )
            raise CircuitOpenError(self.breaker.retry_after_s())
        attempt = 0
        while True:
            t0 = self._clock.now_s
            try:
                packet = self._source.next_packet()
            except TransientSourceError as exc:
                self.counters["transient_errors"] += 1
                self._count(
                    "source_transient_errors_total",
                    "Transient read errors (including retried ones).",
                )
                self.breaker.record_failure()
                if attempt < self.retry.max_retries:
                    self._clock.advance(self._backoff_delay_s(attempt))
                    attempt += 1
                    continue
                raise SourceUnavailableError(attempt + 1) from exc
            except SourceCrashedError as exc:
                self.counters["crashes"] += 1
                self._count("source_crashes_total", "Hard source crashes.")
                self.breaker.record_failure()
                self._events.record(
                    self._clock.now_s,
                    self._subject,
                    "source-crash",
                    error=str(exc),
                )
                self._rebuild()
                raise
            elapsed = self._clock.now_s - t0
            self._obs.observe(
                "source_read_duration_s",
                elapsed,
                labels={"subject": self._subject},
                help_text="Simulated seconds one supervised read took.",
            )
            if elapsed > self.deadline_s:
                self.counters["timeouts"] += 1
                self._count(
                    "source_timeouts_total", "Reads that blew their deadline."
                )
                self.breaker.record_failure()
                timeout = SourceTimeoutError(elapsed, self.deadline_s)
                self._events.record(
                    self._clock.now_s,
                    self._subject,
                    "source-timeout",
                    elapsed_s=elapsed,
                    deadline_s=self.deadline_s,
                )
                raise timeout
            self.breaker.record_success()
            if packet is not None:
                self.counters["reads_ok"] += 1
                self._count("source_reads_ok_total", "Successful packet reads.")
            return packet
