"""Bounded per-session ingest queues.

The gateway decouples *ingest* (pulling packets from a session's upstream
capture) from *drain* (feeding them to the session's monitor) with one
:class:`BoundedPacketQueue` per session.  The bound is the backpressure
primitive: when a consumer falls behind, the queue fills, the watermark
policy reacts, and — if nothing helps — the oldest packets are dropped
rather than the process growing without limit.  Dropping *oldest first*
is deliberate for vital signs: a fresh packet is worth more than a stale
one, and the monitor's own gap handling absorbs the resulting hole.

:class:`QueuedPacketSource` adapts a queue to the
:class:`~repro.service.sources.PacketSource` protocol so a per-session
:class:`~repro.service.supervisor.MonitorSupervisor` can consume it
unchanged.  Unlike :class:`~repro.service.sources.TracePacketSource` it
never advances the clock — in a fleet, time belongs to the gateway's
round heartbeat, not to any one session's packets.
"""

from __future__ import annotations

from collections import deque

from ...errors import ConfigurationError
from ..sources import Packet

__all__ = ["BoundedPacketQueue", "QueuedPacketSource"]


class BoundedPacketQueue:
    """FIFO packet queue with a hard bound and drop-oldest overflow.

    Args:
        capacity_packets: Maximum depth; must be positive.

    Attributes:
        n_dropped_total: Packets evicted by overflow since construction
            (cleared packets from :meth:`clear` are counted separately).
        max_depth_seen_packets: High-water mark of the depth.
    """

    def __init__(self, capacity_packets: int):
        if capacity_packets < 1:
            raise ConfigurationError("capacity_packets must be >= 1")
        self.capacity_packets = int(capacity_packets)
        self._items: deque[Packet] = deque()
        self.n_dropped_total = 0
        self.max_depth_seen_packets = 0

    @property
    def depth(self) -> int:
        """Current number of queued packets."""
        return len(self._items)

    def offer(self, packet: Packet) -> bool:
        """Enqueue a packet, evicting the oldest one when full.

        Returns:
            ``True`` when the packet was stored without evicting anything,
            ``False`` when an older packet had to be dropped to make room.
        """
        evicted = False
        if len(self._items) >= self.capacity_packets:
            self._items.popleft()
            self.n_dropped_total += 1
            evicted = True
        self._items.append(packet)
        if len(self._items) > self.max_depth_seen_packets:
            self.max_depth_seen_packets = len(self._items)
        return not evicted

    def pop(self) -> Packet | None:
        """Dequeue the oldest packet, or ``None`` when empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def clear(self) -> int:
        """Drop everything (shed / shard crash); returns how many."""
        n = len(self._items)
        self._items.clear()
        return n

    def __len__(self) -> int:
        return len(self._items)


class QueuedPacketSource:
    """A :class:`~repro.service.sources.PacketSource` over a bounded queue.

    The gateway owns the producing side; the session's supervisor pulls
    from this adapter.  ``None`` means "nothing queued right now" — the
    gateway never schedules a drain tick against an empty queue, so in
    practice a tick always finds a packet and simulated time is driven
    purely by the round heartbeat.

    Args:
        queue: The session's ingest queue.
    """

    def __init__(self, queue: BoundedPacketQueue):
        self._queue = queue
        self._finished = False

    @property
    def exhausted(self) -> bool:
        """True once the upstream is finished and the queue is drained."""
        return self._finished and len(self._queue) == 0

    def mark_finished(self) -> None:
        """Signal that the upstream will never produce another packet.

        The source reports ``exhausted`` only after the queue also runs
        dry, so buffered packets still reach the monitor.
        """
        self._finished = True

    def next_packet(self) -> Packet | None:
        """Dequeue the next packet, ``None`` when the queue is empty."""
        return self._queue.pop()
