"""The fleet gateway: ingest front door for thousands of monitor sessions.

One :class:`FleetGateway` owns the fleet clock, the admission controller,
and a deterministic pool of logical worker shards.  Each admitted session
gets a bounded ingest queue, a private upstream packet source, and its own
single-subject :class:`~repro.service.supervisor.MonitorSupervisor`; the
gateway schedules them in fixed rounds:

1. the fleet clock advances one ``round_interval_s`` heartbeat — the
   *only* thing that moves fleet time;
2. shard by shard, session by session (admission order), packets whose
   capture time has arrived are pulled from the upstream into the
   session's queue (*ingest*), then fed to the session's supervisor one
   :meth:`~repro.service.supervisor.MonitorSupervisor.tick` per packet
   (*drain*) — a tick is only scheduled when the queue is non-empty, so
   no session ever burns a fruitless poll interval of shared time;
3. every session's queue depth is scored against the watermarks and the
   **pressure ladder** reacts: throttle (wider emission hop), then
   degrade (pin the estimator fallback ladder at a cheaper rung), and
   only after sustained deep overload does the session become a shed
   candidate;
4. the fleet-level **shed pass** sheds candidates lowest-priority /
   most-degraded first, within the hard ``max_shed_sessions`` budget.

Because fleet time is advanced solely by the heartbeat and every
estimate depends only on the session's own packet sequence, a session's
estimate stream is byte-identical whether it runs alone or next to a
thousand neighbours — the isolation contract the fleet chaos harness
(:mod:`~repro.service.fleet.chaos`) enforces.

Upstream sources run on a *private* per-session clock so replayed traces
(:class:`~repro.service.sources.TracePacketSource` pins its clock to
packet timestamps) can be read ahead without dragging fleet time forward.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from ...core.pipeline import PhaseBeatConfig
from ...core.streaming import StreamingConfig
from ...errors import (
    ConfigurationError,
    ReproError,
    SourceCrashedError,
)
from ...obs import (
    DEFAULT_SIZE_BUCKETS,
    NULL_INSTRUMENTATION,
    Instrumentation,
)
from ..clock import SimulatedClock
from ..events import EventLog
from ..sources import Packet, PacketSource
from ..supervisor import (
    MonitorSupervisor,
    ServiceEstimate,
    SubjectHealth,
    SupervisorConfig,
)
from .admission import AdmissionController
from .config import FleetConfig
from .queue import BoundedPacketQueue, QueuedPacketSource

__all__ = ["SessionStatus", "FleetGateway"]


class SessionStatus(enum.Enum):
    """Lifecycle state of one fleet session."""

    ACTIVE = "active"
    SHED = "shed"
    FINISHED = "finished"


class _Session:
    """Mutable gateway-side state for one session (internal)."""

    def __init__(
        self,
        session_id: str,
        shard: int,
        priority: int,
        admission_index: int,
        upstream: PacketSource,
        upstream_clock: SimulatedClock,
        queue: BoundedPacketQueue,
        qsource: QueuedPacketSource,
        supervisor: MonitorSupervisor,
    ):
        self.session_id = session_id
        self.shard = shard
        self.priority = priority
        self.admission_index = admission_index
        self.upstream = upstream
        self.upstream_clock = upstream_clock
        self.queue = queue
        self.qsource = qsource
        self.supervisor = supervisor
        self.status = SessionStatus.ACTIVE
        self.pending: Packet | None = None
        self.upstream_finished = False
        # Pressure-ladder state.
        self.pressure_level = 0
        self.rounds_over_high = 0
        self.rounds_under_low = 0
        self.rounds_shed_eligible = 0
        # Fleet-fault windows (inactive while the deadline is in the past).
        self.burst_until_s = float("-inf")
        self.burst_ingest_factor = 1.0
        self.loss_until_s = float("-inf")
        self.slow_until_s = float("-inf")
        self.slow_drain_factor = 1.0
        self.n_loss_dropped_packets = 0
        self.n_emitted = 0
        # Fleet times at which fresh, healthy estimates were emitted —
        # the recovery signal an operator watches, immune to data-time
        # jumps when a burst fast-forwards the upstream.
        self.fresh_emit_times_s: list[float] = []

    @property
    def active(self) -> bool:
        """Whether the gateway still schedules this session."""
        return self.status is SessionStatus.ACTIVE


class FleetGateway:
    """Admit, schedule, and protect a fleet of monitor sessions.

    Args:
        clock: Fleet clock; a fresh one when omitted.  Advanced only by
            the gateway's round heartbeat.
        config: Fleet parameters (ceilings, watermarks, budgets).
        supervisor_config: Supervision parameters for every session.
        streaming_config: Monitor parameters for every session.
        pipeline_config: Pipeline parameters for every session.
        events: Shared event log; a fresh one when omitted.
        seed: Master seed; each session derives a stable child seed from
            its id, so the same session is bit-identical in any fleet.
        instrumentation: Optional :class:`repro.obs.Instrumentation` for
            *fleet-level* metrics (``fleet_*`` series, labelled by shard
            — never by session, to bound cardinality).  Per-session
            supervisors are deliberately not instrumented.
    """

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        config: FleetConfig | None = None,
        supervisor_config: SupervisorConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        pipeline_config: PhaseBeatConfig | None = None,
        events: EventLog | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
    ):
        self.clock = clock if clock is not None else SimulatedClock()
        self.config = config if config is not None else FleetConfig()
        self.supervisor_config = (
            supervisor_config
            if supervisor_config is not None
            else SupervisorConfig()
        )
        self.streaming_config = (
            streaming_config
            if streaming_config is not None
            else StreamingConfig()
        )
        self.pipeline_config = pipeline_config
        self.events = events if events is not None else EventLog()
        self._seed = int(seed)
        self._obs = (
            instrumentation
            if instrumentation is not None
            else NULL_INSTRUMENTATION
        )
        self.admission = AdmissionController(self.config)
        self._sessions: dict[str, _Session] = {}
        self._shards: list[list[str]] = [
            [] for _ in range(self.config.n_shards)
        ]
        self._n_admitted = 0
        self.n_shed_total = 0
        self.round_index = 0

    # ------------------------------------------------------------------
    # Admission.

    @staticmethod
    def _session_seed(session_id: str) -> int:
        """Stable per-session seed offset, independent of admission order."""
        # A tiny deterministic string hash (FNV-1a) — hash() is salted per
        # process and would break byte-reproducibility across runs.
        h = 2166136261
        for byte in session_id.encode("utf-8"):
            h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
        return h

    def admit(
        self,
        session_id: str,
        upstream_factory: Callable[[SimulatedClock], PacketSource],
        sample_rate_hz: float,
        *,
        priority: int = 0,
    ) -> int:
        """Admit one session, returning its shard assignment.

        Args:
            session_id: Unique session name (used in events/estimates).
            upstream_factory: ``factory(clock) -> PacketSource`` building
                the session's capture source on the *private* clock the
                gateway hands it.
            sample_rate_hz: Nominal packet rate of the stream.
            priority: Shedding priority — lower values are shed first.

        Raises:
            FleetAdmissionError: The fleet or the least-loaded shard is at
                capacity, or the id is already admitted.
        """
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        try:
            shard = self.admission.admit(session_id)
        except Exception as exc:
            reason = getattr(exc, "reason", type(exc).__name__)
            self.events.record(
                self.clock.now_s,
                session_id,
                "session-rejected",
                reason=reason,
            )
            self._obs.count(
                "fleet_sessions_rejected_total",
                labels={"reason": str(reason)},
                help_text="Sessions refused by admission control.",
            )
            raise
        upstream_clock = SimulatedClock(self.clock.now_s)
        upstream = upstream_factory(upstream_clock)
        queue = BoundedPacketQueue(self.config.queue_capacity_packets)
        qsource = QueuedPacketSource(queue)
        supervisor = MonitorSupervisor(
            clock=self.clock,
            config=self.supervisor_config,
            streaming_config=self.streaming_config,
            pipeline_config=self.pipeline_config,
            events=self.events,
            seed=self._seed + self._session_seed(session_id),
        )
        # The factory ignores start_at_s: a rebuilt source keeps reading
        # the same queue, which is exactly "resume live".
        supervisor.add_subject(
            session_id, lambda _start_at_s: qsource, sample_rate_hz
        )
        session = _Session(
            session_id=session_id,
            shard=shard,
            priority=priority,
            admission_index=self._n_admitted,
            upstream=upstream,
            upstream_clock=upstream_clock,
            queue=queue,
            qsource=qsource,
            supervisor=supervisor,
        )
        self._sessions[session_id] = session
        self._shards[shard].append(session_id)
        self._n_admitted += 1
        self.events.record(
            self.clock.now_s,
            session_id,
            "session-admitted",
            shard=shard,
            priority=priority,
        )
        self._obs.count(
            "fleet_sessions_admitted_total",
            help_text="Sessions admitted by the gateway.",
        )
        return shard

    # ------------------------------------------------------------------
    # Introspection.

    @property
    def session_ids(self) -> tuple[str, ...]:
        """All ever-admitted session ids, in admission order."""
        return tuple(self._sessions)

    def sessions_on_shard(self, shard: int) -> tuple[str, ...]:
        """Session ids assigned to one shard, in admission order."""
        return tuple(self._shards[shard])

    def status(self, session_id: str) -> SessionStatus:
        """A session's lifecycle state."""
        return self._session(session_id).status

    def estimates(self, session_id: str) -> list[ServiceEstimate]:
        """A session's estimate stream so far, in emission order."""
        return self._session(session_id).supervisor.estimates_for(session_id)

    def fresh_emission_times(self, session_id: str) -> tuple[float, ...]:
        """Fleet times at which the session emitted fresh, healthy
        estimates.

        This is the recovery signal: unlike an estimate's own ``time_s``
        (which is data time and jumps forward when a burst delivers a
        backlog), emission times are on the gateway clock.
        """
        return tuple(self._session(session_id).fresh_emit_times_s)

    def results(self) -> dict[str, list[ServiceEstimate]]:
        """Estimate streams for every session, in admission order."""
        return {sid: self.estimates(sid) for sid in self._sessions}

    def fleet_summary(self) -> dict[str, Any]:
        """JSON-safe roll-up of fleet state (counts by status/health)."""
        by_status = {s.value: 0 for s in SessionStatus}
        by_health = {h.value: 0 for h in SubjectHealth}
        for session in self._sessions.values():  # phaselint: insertion-order -- counts only; every session is visited exactly once
            by_status[session.status.value] += 1
            summary = session.supervisor.health_summary()[session.session_id]
            by_health[summary["health"]] += 1
        return {
            "n_sessions": len(self._sessions),
            "n_shards": self.config.n_shards,
            "rounds": self.round_index,
            "by_status": by_status,
            "by_health": by_health,
            "n_shed": self.n_shed_total,
            "n_queue_dropped": sum(  # phaselint: insertion-order -- integer sum, order-independent
                s.queue.n_dropped_total for s in self._sessions.values()
            ),
            "n_rejected": dict(self.admission.n_rejected_total),
        }

    def _session(self, session_id: str) -> _Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown session {session_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # Fleet-fault hooks (driven by the chaos harness).

    def crash_shard(self, shard: int, *, cause: str = "shard-crash") -> None:
        """Crash one worker shard: queues are lost, monitors die.

        Every active session on the shard loses its queued (and pending)
        packets and has its monitor killed; each monitor restarts through
        the supervisor's normal checkpoint-restore path.
        """
        if not 0 <= shard < self.config.n_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.config.n_shards - 1}], "
                f"got {shard}"
            )
        self.events.record(
            self.clock.now_s,
            "",
            "shard-crash",
            shard=shard,
            n_sessions=sum(
                1
                for sid in self._shards[shard]
                if self._sessions[sid].active
            ),
        )
        for sid in self._shards[shard]:
            session = self._sessions[sid]
            if not session.active:
                continue
            n_lost = session.queue.clear()
            if session.pending is not None:
                session.pending = None
                n_lost += 1
            self._obs.count(
                "fleet_queue_dropped_packets_total",
                amount=n_lost,
                labels={"shard": str(shard)},
                help_text="Packets lost from ingest queues (overflow, "
                "shed, shard crash).",
            )
            session.supervisor.crash_monitor(sid, cause=cause)

    def set_ingest_burst(
        self,
        session_ids: tuple[str, ...],
        *,
        until_s: float,
        ingest_factor: float,
    ) -> None:
        """Flood sessions' queues: upstream delivers faster than realtime.

        Until ``until_s``, the sessions' ingest budget is multiplied by
        ``ingest_factor`` and packets are pulled regardless of capture
        time (the upstream "catches up" a backlog all at once).
        """
        if ingest_factor < 1.0:
            raise ConfigurationError("ingest_factor must be >= 1")
        for sid in session_ids:
            session = self._session(sid)
            session.burst_until_s = float(until_s)
            session.burst_ingest_factor = float(ingest_factor)

    def set_slow_consumer(
        self,
        session_ids: tuple[str, ...],
        *,
        until_s: float,
        drain_factor: float,
    ) -> None:
        """Starve sessions' drain budget (a slow worker) until ``until_s``."""
        if not 0.0 < drain_factor <= 1.0:
            raise ConfigurationError("drain_factor must be in (0, 1]")
        for sid in session_ids:
            session = self._session(sid)
            session.slow_until_s = float(until_s)
            session.slow_drain_factor = float(drain_factor)

    def set_source_loss(
        self, session_ids: tuple[str, ...], *, until_s: float
    ) -> None:
        """Lose sessions' upstream packets entirely until ``until_s``."""
        for sid in session_ids:
            self._session(sid).loss_until_s = float(until_s)

    # ------------------------------------------------------------------
    # Scheduling.

    def run(
        self,
        *,
        max_duration_s: float | None = None,
        on_round: Callable[["FleetGateway"], None] | None = None,
    ) -> dict[str, list[ServiceEstimate]]:
        """Drive the fleet until every session finishes (or is shed).

        Args:
            max_duration_s: Optional simulated-time budget past the start.
            on_round: Optional hook called at the top of every round,
                before the heartbeat — the chaos harness uses it to fire
                scheduled fleet faults.

        Returns:
            Estimate streams per session, in admission order.
        """
        if not self._sessions:
            raise ConfigurationError("no sessions admitted")
        start_s = self.clock.now_s
        while any(s.active for s in self._sessions.values()):
            if (
                max_duration_s is not None
                and self.clock.now_s - start_s >= max_duration_s
            ):
                break
            if on_round is not None:
                on_round(self)
            self.run_round()
        return self.results()

    def run_round(self) -> None:
        """Execute one scheduling round (heartbeat, ingest, drain, policy)."""
        self.round_index += 1
        self.clock.advance(self.config.round_interval_s)
        now_s = self.clock.now_s
        for shard, sids in enumerate(self._shards):
            depth_total = 0
            for sid in sids:
                session = self._sessions[sid]
                if not session.active:
                    continue
                self._ingest(session, now_s)
                self._drain(session, now_s)
                self._finish_if_exhausted(session)
                if session.active:
                    depth_total += session.queue.depth
                    self._obs.observe(
                        "fleet_shard_queue_depth_packets",
                        session.queue.depth,
                        labels={"shard": str(shard)},
                        help_text="Per-session ingest-queue depth, "
                        "sampled every round.",
                        bucket_bounds=DEFAULT_SIZE_BUCKETS,
                    )
        for session in self._sessions.values():  # phaselint: insertion-order -- admission order is the scheduling contract (see docs/fleet.md)
            if session.active:
                self._update_pressure(session)
        self._shed_pass()
        self._update_fleet_gauges()

    def _ingest(self, session: _Session, now_s: float) -> None:
        """Pull due upstream packets into the session's queue."""
        in_loss = now_s < session.loss_until_s
        in_burst = now_s < session.burst_until_s
        budget = self.config.ingest_budget_packets
        if in_burst:
            budget = int(budget * session.burst_ingest_factor)
        shard_label = {"shard": str(session.shard)}
        n_evicted = 0
        for _ in range(budget):
            packet = session.pending
            session.pending = None
            if packet is None:
                packet = self._pull_upstream(session)
            if packet is None:
                break
            if not in_burst and packet.timestamp_s > now_s:
                # Not due yet: hold it for a later round.  The upstream
                # runs on a private clock, so reading ahead is harmless.
                session.pending = packet
                break
            if in_loss:
                session.n_loss_dropped_packets += 1
                continue
            if not session.queue.offer(packet):
                n_evicted += 1
        if n_evicted:
            self._obs.count(
                "fleet_queue_dropped_packets_total",
                amount=n_evicted,
                labels=shard_label,
                help_text="Packets lost from ingest queues (overflow, "
                "shed, shard crash).",
            )

    def _pull_upstream(self, session: _Session) -> Packet | None:
        try:
            return session.upstream.next_packet()
        except SourceCrashedError:
            session.upstream_finished = True
            self.events.record(
                self.clock.now_s,
                session.session_id,
                "ingest-upstream-crashed",
            )
            return None
        except ReproError as exc:
            self.events.record(
                self.clock.now_s,
                session.session_id,
                "ingest-error",
                error=type(exc).__name__,
            )
            return None

    def _drain(self, session: _Session, now_s: float) -> None:
        """Feed queued packets to the session's monitor, within budget."""
        budget = self.config.drain_budget_packets
        if now_s < session.slow_until_s:
            budget = max(1, int(budget * session.slow_drain_factor))
        n_ticks = min(budget, session.queue.depth)
        if n_ticks == 0:
            return
        supervisor = session.supervisor
        before = session.n_emitted
        for _ in range(n_ticks):
            if supervisor.subject_done(session.session_id):
                break
            supervisor.tick(session.session_id)
        estimates = supervisor.estimates_for(session.session_id)
        session.n_emitted = len(estimates)
        for estimate in estimates[before:]:
            if estimate.fresh and estimate.ok:
                session.fresh_emit_times_s.append(now_s)
            self._obs.observe(
                "fleet_window_latency_s",
                max(0.0, now_s - estimate.time_s),
                labels={"shard": str(session.shard)},
                help_text="Lag between a window's end and its emission "
                "round.",
            )

    def _finish_if_exhausted(self, session: _Session) -> None:
        if not session.upstream_finished and session.upstream.exhausted:
            session.upstream_finished = True
        if session.upstream_finished and session.pending is None:
            session.qsource.mark_finished()
        if session.supervisor.subject_done(session.session_id):
            session.status = SessionStatus.FINISHED
            self.admission.release(session.session_id)
            self.events.record(
                self.clock.now_s,
                session.session_id,
                "session-finished",
                n_estimates=session.n_emitted,
            )

    # ------------------------------------------------------------------
    # Backpressure policy.

    def _update_pressure(self, session: _Session) -> None:
        depth = session.queue.depth
        if depth >= self.config.high_watermark_packets:
            session.rounds_over_high += 1
            session.rounds_under_low = 0
        elif depth <= self.config.low_watermark_packets:
            session.rounds_under_low += 1
            session.rounds_over_high = 0
        else:
            # Hysteresis band: neither escalating nor recovering.
            session.rounds_over_high = 0
            session.rounds_under_low = 0
        if (
            session.rounds_over_high >= self.config.throttle_after_rounds
            and session.pressure_level < 2
        ):
            self._escalate_pressure(session)
        elif session.pressure_level == 2 and session.rounds_over_high > 0:
            session.rounds_shed_eligible += 1
        if (
            session.rounds_under_low >= self.config.recover_after_rounds
            and session.pressure_level > 0
        ):
            self._relieve_pressure(session)

    def _escalate_pressure(self, session: _Session) -> None:
        sid = session.session_id
        session.rounds_over_high = 0
        session.pressure_level += 1
        if session.pressure_level == 1:
            session.supervisor.set_hop_stretch(
                sid, self.config.throttle_hop_stretch
            )
            self.events.record(
                self.clock.now_s,
                sid,
                "session-throttled",
                hop_stretch=self.config.throttle_hop_stretch,
                depth=session.queue.depth,
            )
            self._obs.count(
                "fleet_sessions_throttled_total",
                help_text="Pressure-ladder escalations to level 1 "
                "(hop throttling).",
            )
        else:
            session.supervisor.set_hop_stretch(
                sid, self.config.degrade_hop_stretch
            )
            session.supervisor.set_min_fallback_level(
                sid,
                self.config.degrade_fallback_level,
                reason="fleet-overload",
            )
            self.events.record(
                self.clock.now_s,
                sid,
                "session-degraded",
                hop_stretch=self.config.degrade_hop_stretch,
                fallback_level=self.config.degrade_fallback_level,
                depth=session.queue.depth,
            )
            self._obs.count(
                "fleet_sessions_degraded_total",
                help_text="Pressure-ladder escalations to level 2 "
                "(estimator degradation).",
            )

    def _relieve_pressure(self, session: _Session) -> None:
        sid = session.session_id
        session.rounds_under_low = 0
        session.rounds_shed_eligible = 0
        session.pressure_level -= 1
        if session.pressure_level == 1:
            session.supervisor.set_min_fallback_level(
                sid, 0, reason="fleet-overload-cleared"
            )
            session.supervisor.set_hop_stretch(
                sid, self.config.throttle_hop_stretch
            )
        else:
            session.supervisor.set_hop_stretch(sid, 1.0)
        self.events.record(
            self.clock.now_s,
            sid,
            "session-pressure-recovered",
            to_level=session.pressure_level,
            depth=session.queue.depth,
        )

    # ------------------------------------------------------------------
    # Load shedding.

    def _shed_pass(self) -> None:
        budget = self.config.max_shed_sessions - self.n_shed_total
        if budget <= 0:
            return
        candidates = [
            s
            for s in self._sessions.values()
            if s.active
            and s.pressure_level == 2
            and s.rounds_shed_eligible >= self.config.shed_after_rounds
        ]
        if not candidates:
            return
        # Lowest priority first, then most degraded, then deepest queue;
        # admission index makes the order total and deterministic.
        candidates.sort(
            key=lambda s: (
                s.priority,
                -self._degradation_score(s),
                -s.queue.depth,
                s.admission_index,
            )
        )
        for session in candidates[:budget]:
            self._shed(session)

    def _degradation_score(self, session: _Session) -> int:
        summary = session.supervisor.health_summary()[session.session_id]
        health_rank = {"healthy": 0, "degraded": 1, "failed": 2}
        return health_rank[summary["health"]]

    def _shed(self, session: _Session) -> None:
        sid = session.session_id
        n_lost = session.queue.clear()
        if session.pending is not None:
            session.pending = None
            n_lost += 1
        session.status = SessionStatus.SHED
        self.admission.release(sid)
        self.n_shed_total += 1
        self.events.record(
            self.clock.now_s,
            sid,
            "session-shed",
            priority=session.priority,
            n_dropped=n_lost,
            n_estimates=session.n_emitted,
        )
        self._obs.count(
            "fleet_sessions_shed_total",
            help_text="Sessions shed by the overload policy.",
        )
        if n_lost:
            self._obs.count(
                "fleet_queue_dropped_packets_total",
                amount=n_lost,
                labels={"shard": str(session.shard)},
                help_text="Packets lost from ingest queues (overflow, "
                "shed, shard crash).",
            )

    # ------------------------------------------------------------------
    # Fleet health gauges.

    def _update_fleet_gauges(self) -> None:
        n_active = 0
        n_degraded = 0
        n_throttled = 0
        for session in self._sessions.values():  # phaselint: insertion-order -- counts only; every session is visited exactly once
            if not session.active:
                continue
            n_active += 1
            if session.pressure_level >= 2:
                n_degraded += 1
            elif session.pressure_level == 1:
                n_throttled += 1
        self._obs.gauge_set(
            "fleet_sessions_active_count",
            n_active,
            help_text="Sessions currently scheduled by the gateway.",
        )
        self._obs.gauge_set(
            "fleet_sessions_throttled_count",
            n_throttled,
            help_text="Active sessions at pressure level 1.",
        )
        self._obs.gauge_set(
            "fleet_sessions_degraded_count",
            n_degraded,
            help_text="Active sessions at pressure level 2.",
        )
