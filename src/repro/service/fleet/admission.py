"""Admission control: the fleet's first line of overload protection.

A gateway that accepts every session and sheds later does strictly worse
than one that refuses up front: the refused session gets an immediate,
typed :class:`~repro.errors.FleetAdmissionError` it can act on (retry
elsewhere, back off), while an admitted-then-shed session wastes queue
memory and scheduler rounds first.  The controller enforces two ceilings
— fleet-wide ``max_sessions`` and per-shard ``shard_capacity`` — and
assigns each admitted session to the least-loaded shard (lowest index on
ties), which is deterministic given the admission order.
"""

from __future__ import annotations

from ...errors import ConfigurationError, FleetAdmissionError
from .config import FleetConfig

__all__ = ["AdmissionController"]


class AdmissionController:
    """Tracks shard occupancy and admits or refuses sessions.

    Args:
        config: The fleet configuration (ceilings and shard count).

    Attributes:
        n_admitted_total: Sessions ever admitted.
        n_rejected_total: Sessions ever refused, by reason.
    """

    def __init__(self, config: FleetConfig):
        self.config = config
        self._assignments: dict[str, int] = {}
        self._shard_loads = [0] * config.n_shards
        self.n_admitted_total = 0
        self.n_rejected_total: dict[str, int] = {
            "duplicate-session": 0,
            "fleet-full": 0,
            "shard-full": 0,
        }

    @property
    def n_active(self) -> int:
        """Currently admitted (not yet released) sessions."""
        return len(self._assignments)

    def shard_of(self, session_id: str) -> int:
        """The shard a session was assigned to.

        Raises:
            ConfigurationError: The session is not currently admitted.
        """
        try:
            return self._assignments[session_id]
        except KeyError:
            raise ConfigurationError(
                f"session {session_id!r} is not admitted"
            ) from None

    def shard_load(self, shard: int) -> int:
        """Number of sessions currently assigned to a shard."""
        return self._shard_loads[shard]

    def admit(self, session_id: str) -> int:
        """Admit a session, returning its shard assignment.

        Raises:
            FleetAdmissionError: With reason ``"duplicate-session"``,
                ``"fleet-full"``, or ``"shard-full"`` when the session
                cannot be admitted.
        """
        if session_id in self._assignments:
            self.n_rejected_total["duplicate-session"] += 1
            raise FleetAdmissionError(
                session_id,
                "duplicate-session",
                f"already on shard {self._assignments[session_id]}",
            )
        if len(self._assignments) >= self.config.max_sessions:
            self.n_rejected_total["fleet-full"] += 1
            raise FleetAdmissionError(
                session_id,
                "fleet-full",
                f"{len(self._assignments)}/{self.config.max_sessions} "
                "sessions active",
            )
        shard = min(
            range(len(self._shard_loads)), key=self._shard_loads.__getitem__
        )
        if self._shard_loads[shard] >= self.config.shard_capacity:
            self.n_rejected_total["shard-full"] += 1
            raise FleetAdmissionError(
                session_id,
                "shard-full",
                f"all {self.config.n_shards} shards at capacity "
                f"{self.config.shard_capacity}",
            )
        self._assignments[session_id] = shard
        self._shard_loads[shard] += 1
        self.n_admitted_total += 1
        return shard

    def release(self, session_id: str) -> int:
        """Release a session's slot (shed or finished); returns its shard.

        Raises:
            ConfigurationError: The session is not currently admitted.
        """
        shard = self.shard_of(session_id)
        del self._assignments[session_id]
        self._shard_loads[shard] -= 1
        return shard
