"""Fleet-scale service layer: one gateway, thousands of monitor sessions.

A single :class:`~repro.service.supervisor.MonitorSupervisor` hardens one
subject; this package hardens the *population*.  The
:class:`~repro.service.fleet.gateway.FleetGateway` is the ingest front
door: it admits sessions through an
:class:`~repro.service.fleet.admission.AdmissionController` (max-sessions
and per-shard capacity, typed
:class:`~repro.errors.FleetAdmissionError` refusals), multiplexes each
admitted packet stream through a bounded per-session ingest queue
(:mod:`~repro.service.fleet.queue`) onto a deterministic shard pool, and
protects itself under overload with a graduated pressure ladder —
throttle (wider hop), degrade (pin the estimator fallback ladder), and
only then shed — with every transition recorded in the shared
:class:`~repro.service.events.EventLog`.

:mod:`~repro.service.fleet.chaos` extends the single-subject chaos
harness to fleet-level faults (shard crash, ingest burst, slow consumer,
correlated source loss) and checks the isolation contract: a fault
injected into some sessions must not perturb any other session's
estimate stream by even one byte.

Everything runs on one :class:`~repro.service.clock.SimulatedClock`
advanced only by the gateway's round heartbeat, so a fleet run — event
log, estimate streams, and metrics snapshot — is byte-reproducible under
a fixed seed.  See ``docs/fleet.md``.
"""

from .admission import AdmissionController
from .chaos import (
    FLEET_SCENARIOS,
    FleetChaosReport,
    FleetFault,
    FleetScenario,
    run_fleet_chaos,
)
from .config import FleetConfig
from .gateway import FleetGateway, SessionStatus
from .queue import BoundedPacketQueue, QueuedPacketSource

__all__ = [
    "AdmissionController",
    "BoundedPacketQueue",
    "FLEET_SCENARIOS",
    "FleetChaosReport",
    "FleetConfig",
    "FleetFault",
    "FleetGateway",
    "FleetScenario",
    "QueuedPacketSource",
    "SessionStatus",
    "run_fleet_chaos",
]
