"""Fleet gateway configuration.

One frozen dataclass holds every knob of the fleet layer — admission
ceilings, queue geometry, the watermark/pressure ladder, the shed budget,
and the scheduling cadence — validated eagerly so a bad fleet deployment
fails at construction, not twenty minutes into a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigurationError

__all__ = ["FleetConfig"]


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of the fleet gateway (times in simulated seconds).

    Attributes:
        max_sessions: Fleet-wide admission ceiling (active sessions).
        n_shards: Number of deterministic worker shards sessions are
            assigned to (least-loaded, lowest-index tie-break).
        shard_capacity: Admission ceiling per shard.
        queue_capacity_packets: Bound of each session's ingest queue;
            on overflow the oldest packet is dropped (freshest data wins
            for vital-sign streams).
        high_watermark_packets: Queue depth at or above which a session
            accrues over-pressure rounds.
        low_watermark_packets: Queue depth at or below which a session
            accrues recovery rounds.
        throttle_after_rounds: Consecutive over-watermark rounds before
            the pressure ladder steps up one level.
        recover_after_rounds: Consecutive under-watermark rounds before
            the ladder steps back down one level.
        shed_after_rounds: Rounds a session must remain over the high
            watermark *at the deepest pressure level* before it becomes a
            shed candidate — degradation always precedes shedding.
        throttle_hop_stretch: Hop-widening factor applied at pressure
            level 1 (estimates emitted less often, geometry unchanged).
        degrade_hop_stretch: Hop-widening factor at pressure level 2.
        degrade_fallback_level: Estimator-ladder floor pinned at pressure
            level 2 (1 = csi-ratio), trading accuracy for cycles.
        max_shed_sessions: Hard budget of sessions the gateway may shed
            over a run — the invariant the chaos report enforces.
        round_interval_s: Simulated time one scheduling round represents;
            the gateway heartbeat is the sole driver of the fleet clock.
        ingest_budget_packets: Max packets pulled from one session's
            upstream per round.
        drain_budget_packets: Max queued packets fed to one session's
            monitor per round (scaled down by slow-consumer faults).
    """

    max_sessions: int = 1024
    n_shards: int = 8
    shard_capacity: int = 256
    queue_capacity_packets: int = 256
    high_watermark_packets: int = 160
    low_watermark_packets: int = 48
    throttle_after_rounds: int = 2
    recover_after_rounds: int = 2
    shed_after_rounds: int = 4
    throttle_hop_stretch: float = 2.0
    degrade_hop_stretch: float = 3.0
    degrade_fallback_level: int = 1
    max_shed_sessions: int = 16
    round_interval_s: float = 0.5
    ingest_budget_packets: int = 64
    drain_budget_packets: int = 64

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")
        if self.n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if self.shard_capacity < 1:
            raise ConfigurationError("shard_capacity must be >= 1")
        if self.queue_capacity_packets < 1:
            raise ConfigurationError("queue_capacity_packets must be >= 1")
        if not (
            0
            < self.low_watermark_packets
            < self.high_watermark_packets
            <= self.queue_capacity_packets
        ):
            raise ConfigurationError(
                "watermarks must satisfy 0 < low < high <= capacity, got "
                f"low={self.low_watermark_packets}, "
                f"high={self.high_watermark_packets}, "
                f"capacity={self.queue_capacity_packets}"
            )
        if self.throttle_after_rounds < 1:
            raise ConfigurationError("throttle_after_rounds must be >= 1")
        if self.recover_after_rounds < 1:
            raise ConfigurationError("recover_after_rounds must be >= 1")
        if self.shed_after_rounds < 1:
            raise ConfigurationError("shed_after_rounds must be >= 1")
        if self.throttle_hop_stretch < 1.0:
            raise ConfigurationError("throttle_hop_stretch must be >= 1")
        if self.degrade_hop_stretch < self.throttle_hop_stretch:
            raise ConfigurationError(
                "degrade_hop_stretch must be >= throttle_hop_stretch"
            )
        if self.degrade_fallback_level < 1:
            raise ConfigurationError("degrade_fallback_level must be >= 1")
        if self.max_shed_sessions < 0:
            raise ConfigurationError("max_shed_sessions must be >= 0")
        if self.round_interval_s <= 0:
            raise ConfigurationError("round_interval_s must be positive")
        if self.ingest_budget_packets < 1:
            raise ConfigurationError("ingest_budget_packets must be >= 1")
        if self.drain_budget_packets < 1:
            raise ConfigurationError("drain_budget_packets must be >= 1")
