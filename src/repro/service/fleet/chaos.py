"""Fleet-scale chaos: prove sessions fail alone, never together.

Extends the single-subject harness (:mod:`repro.service.chaos`) to faults
that only exist at fleet scale:

* ``shard-crash`` — a worker shard dies: every session on it loses its
  queued packets and its monitor, which must restart through the normal
  checkpoint-restore path;
* ``ingest-burst`` — targeted sessions' upstreams deliver a backlog far
  faster than realtime, flooding their bounded queues;
* ``slow-consumer`` — targeted sessions' drain budget collapses, so their
  queues back up while ingest continues;
* ``correlated-source-loss`` — N sessions lose their upstream packets
  simultaneously (a shared capture appliance dying);
* ``recorder-crash`` — the recording taps on N sessions die mid-write
  (optionally tearing the bytes they had in flight) and are restarted,
  resuming in a fresh segment while the torn one is left for salvage.

:func:`run_fleet_chaos` runs a seeded fleet under one scenario and checks
three invariants in :meth:`FleetChaosReport.violations`:

1. **isolation** — every unfaulted session's estimate stream is
   byte-identical to a solo run of the same trace through a one-session
   gateway (identity fields excluded);
2. **recovery** — every faulted session that was not shed produces a
   fresh estimate again by the recovery horizon (last fault end + one
   window + one hop, on the *fleet* clock — data time jumps when a burst
   delivers a backlog).  Two escape hatches keep the check honest: a
   session that drained its whole stream and finished cleanly while
   still emitting fresh estimates after the fault began was never
   wedged, and a trace whose fault-free solo run also yields nothing
   fresh in the interval (for example one the stationarity gate rejects
   throughout) cannot convict the fleet of failing to recover it;
3. **bounded shedding** — the gateway never sheds more sessions than the
   configured ``max_shed_sessions`` budget.

Session-targeted faults hit the *first* ``n_sessions`` admitted sessions
— a deliberate, transparent choice: targeting is deterministic, faults in
one scenario overlap predictably, and the unfaulted remainder is known
without running anything.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ...core.streaming import StreamingConfig
from ...errors import ConfigurationError
from ...eval.harness import default_subject
from ...obs import Instrumentation, MetricsRegistry, canonical_json
from ...rf.receiver import capture_trace
from ...rf.scene import laboratory_scenario
from ..clock import SimulatedClock
from ..events import EventLog
from ...store.backend import MemoryBackend
from ...store.tap import RecordingTap, store_digest
from ..sources import PacketSource, TracePacketSource
from ..supervisor import ServiceEstimate, SupervisorConfig
from .config import FleetConfig
from .gateway import FleetGateway, SessionStatus

__all__ = [
    "FleetFault",
    "FleetScenario",
    "FleetChaosReport",
    "FLEET_SCENARIOS",
    "run_fleet_chaos",
]

_FLEET_FAULT_KINDS = (
    "shard-crash",
    "ingest-burst",
    "slow-consumer",
    "correlated-source-loss",
    "recorder-crash",
)


@dataclass(frozen=True)
class FleetFault:
    """One scripted fleet-level fault.

    Attributes:
        kind: One of :data:`_FLEET_FAULT_KINDS`.
        at_s: Fault start, in simulated seconds from the run start.
        duration_s: Effect-window length (windowed kinds; a
            ``shard-crash`` is instantaneous).
        shard: Target shard (``shard-crash`` only).
        n_sessions: How many sessions the fault targets (the first N in
            admission order; session-targeted kinds only).
        ingest_factor: Ingest-budget multiplier (``ingest-burst``).
        drain_factor: Drain-budget multiplier in (0, 1]
            (``slow-consumer``).
        torn_tail_bytes: How many in-flight bytes the crash tears off the
            recorder's current segment (``recorder-crash`` only).
    """

    kind: str
    at_s: float
    duration_s: float = 0.0
    shard: int = 0
    n_sessions: int = 0
    ingest_factor: float = 4.0
    drain_factor: float = 0.25
    torn_tail_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _FLEET_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fleet fault kind {self.kind!r}; expected one of "
                f"{_FLEET_FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError("fault at_s must be >= 0")
        if self.kind == "shard-crash":
            if self.shard < 0:
                raise ConfigurationError("shard must be >= 0")
        else:
            if self.n_sessions < 1:
                raise ConfigurationError(
                    f"{self.kind} fault needs n_sessions >= 1"
                )
            # A recorder crash is instantaneous, like a shard crash.
            if self.kind != "recorder-crash" and self.duration_s <= 0:
                raise ConfigurationError(
                    f"{self.kind} fault needs duration_s > 0"
                )
        if self.kind == "ingest-burst" and self.ingest_factor < 1.0:
            raise ConfigurationError("ingest_factor must be >= 1")
        if self.kind == "slow-consumer" and not (
            0.0 < self.drain_factor <= 1.0
        ):
            raise ConfigurationError("drain_factor must be in (0, 1]")
        if self.torn_tail_bytes < 0:
            raise ConfigurationError("torn_tail_bytes must be >= 0")

    @property
    def end_s(self) -> float:
        """When the fault's effect window closes."""
        return self.at_s + self.duration_s

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "at_s": self.at_s,
            "duration_s": self.duration_s,
            "shard": self.shard,
            "n_sessions": self.n_sessions,
            "ingest_factor": self.ingest_factor,
            "drain_factor": self.drain_factor,
            "torn_tail_bytes": self.torn_tail_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetFault":
        """Parse one fault entry; unknown keys are rejected."""
        allowed = {
            "kind",
            "at_s",
            "duration_s",
            "shard",
            "n_sessions",
            "ingest_factor",
            "drain_factor",
            "torn_tail_bytes",
        }
        unknown = set(data) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown fleet fault fields {sorted(unknown)}; allowed: "
                f"{sorted(allowed)}"
            )
        if "kind" not in data or "at_s" not in data:
            raise ConfigurationError(
                "a fleet fault needs at least 'kind' and 'at_s'"
            )
        return cls(**data)


@dataclass(frozen=True)
class FleetScenario:
    """A named, serializable schedule of fleet faults.

    Attributes:
        name: Scenario identifier (reports and CLI).
        faults: The fault schedule.
        description: Human-readable intent.
    """

    name: str
    faults: tuple[FleetFault, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def last_fault_end_s(self) -> float:
        """When the last fault's effect window closes (0 with no faults)."""
        return max((f.end_s for f in self.faults), default=0.0)

    def max_targeted_sessions(self) -> int:
        """The largest ``n_sessions`` any session-targeted fault needs."""
        return max(
            (f.n_sessions for f in self.faults if f.kind != "shard-crash"),
            default=0,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (the scenario-file schema)."""
        return {
            "name": self.name,
            "description": self.description,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FleetScenario":
        """Parse a scenario dict (the inverse of :meth:`to_dict`)."""
        if "name" not in data:
            raise ConfigurationError("scenario dict needs a 'name'")
        faults = data.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ConfigurationError("'faults' must be a list")
        return cls(
            name=str(data["name"]),
            faults=tuple(FleetFault.from_dict(f) for f in faults),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetScenario":
        """Parse a scenario from its JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fleet scenario is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError("fleet scenario JSON must be an object")
        return cls.from_dict(data)

    def to_json(self) -> str:
        """Serialize to the scenario-file JSON schema."""
        return json.dumps(self.to_dict(), indent=2)


# Shipped fleet scenarios.  Timings assume the default run_fleet_chaos
# geometry (24 s traces, 8 s windows / 4 s hop, 0.5 s rounds): faults start
# after warm-up and leave a clean tail inside the recovery horizon.
FLEET_SCENARIOS: dict[str, FleetScenario] = {
    "shard-crash": FleetScenario(
        name="shard-crash",
        description=(
            "One worker shard dies, losing its sessions' queues and "
            "monitors; every affected monitor must restart (from its "
            "latest checkpoint when one exists) while the other shards' "
            "sessions are untouched byte for byte."
        ),
        faults=(FleetFault(kind="shard-crash", at_s=8.0, shard=0),),
    ),
    "ingest-burst": FleetScenario(
        name="ingest-burst",
        description=(
            "A few sessions' upstreams deliver a backlog at 4x the ingest "
            "budget regardless of capture time; bounded queues must "
            "absorb, watermark throttling must engage, and neighbours "
            "must not notice."
        ),
        faults=(
            FleetFault(
                kind="ingest-burst",
                at_s=4.0,
                duration_s=6.0,
                n_sessions=4,
                ingest_factor=4.0,
            ),
        ),
    ),
    "slow-consumer": FleetScenario(
        name="slow-consumer",
        description=(
            "A few sessions' workers collapse to a trickle of the drain "
            "budget for most of the capture; their queues back up past "
            "the high watermark (but inside capacity, so nothing drops), "
            "the pressure ladder throttles them, and the backlog drains "
            "cleanly once the workers recover."
        ),
        faults=(
            FleetFault(
                kind="slow-consumer",
                at_s=2.0,
                duration_s=7.0,
                n_sessions=4,
                drain_factor=0.15,
            ),
        ),
    ),
    "correlated-source-loss": FleetScenario(
        name="correlated-source-loss",
        description=(
            "A shared capture appliance dies: several sessions lose their "
            "upstream packets for a window and must ride the gap out "
            "(holdover, quality gates) and recover once packets return."
        ),
        faults=(
            FleetFault(
                kind="correlated-source-loss",
                at_s=6.0,
                duration_s=4.0,
                n_sessions=5,
            ),
        ),
    ),
    "record-crash-resume": FleetScenario(
        name="record-crash-resume",
        description=(
            "The recording taps on a few sessions die mid-write, tearing "
            "the bytes they had in flight, and are restarted twice over; "
            "each restart resumes in a fresh segment, the torn segments "
            "salvage down to the last intact record, and the consumers "
            "behind the taps never notice."
        ),
        faults=(
            FleetFault(
                kind="recorder-crash",
                at_s=5.0,
                n_sessions=3,
                torn_tail_bytes=96,
            ),
            FleetFault(
                kind="recorder-crash",
                at_s=9.0,
                n_sessions=2,
                torn_tail_bytes=17,
            ),
        ),
    ),
    "overload-shed": FleetScenario(
        name="overload-shed",
        description=(
            "Sustained burst and a starved consumer on the same sessions "
            "drive them through the whole pressure ladder — throttle, "
            "degrade, shed — while the shed budget caps the damage."
        ),
        faults=(
            FleetFault(
                kind="ingest-burst",
                at_s=4.0,
                duration_s=7.0,
                n_sessions=6,
                ingest_factor=8.0,
            ),
            FleetFault(
                kind="slow-consumer",
                at_s=4.0,
                duration_s=7.0,
                n_sessions=6,
                drain_factor=0.1,
            ),
        ),
    ),
}


@dataclass(frozen=True)
class FleetChaosReport:
    """Outcome of one fleet chaos run.

    Attributes:
        scenario: The scenario that was run.
        n_sessions: Fleet size.
        faulted_ids: Sessions the scenario targeted (for a shard crash,
            the sessions on the crashed shard at admission).
        shed_ids: Sessions the overload policy shed.
        interference_ids: Unfaulted sessions whose estimate stream
            differed from their solo baseline (must be empty).
        unrecovered_ids: Faulted, non-shed sessions with no fresh
            estimate past the recovery horizon (must be empty).
        max_shed_sessions: The policy budget in force.
        recovery_horizon_s: Time from which estimates count as recovered.
        fleet_summary: The gateway's final roll-up.
        events: The shared fleet event log.
        events_jsonl: Canonical JSONL encoding of the event log (the
            byte-reproducibility artefact).
        metrics_json: Canonical JSON metrics snapshot, when a registry
            was supplied (``None`` otherwise).
        n_estimates_total: Estimates emitted across the whole fleet.
        recordings: Per-session store digests (segment SHA-256s plus the
            salvage outcome) for sessions the scenario recorded through a
            tap; empty when no ``recorder-crash`` fault was scheduled.
    """

    scenario: FleetScenario
    n_sessions: int
    faulted_ids: tuple[str, ...]
    shed_ids: tuple[str, ...]
    interference_ids: tuple[str, ...]
    unrecovered_ids: tuple[str, ...]
    max_shed_sessions: int
    recovery_horizon_s: float
    fleet_summary: dict[str, Any]
    events: EventLog = field(repr=False)
    events_jsonl: str = field(repr=False)
    metrics_json: str | None = field(repr=False)
    n_estimates_total: int = 0
    recordings: dict[str, Any] = field(default_factory=dict)

    def violations(self) -> list[str]:
        """Fleet invariants violated by this run (empty = all held)."""
        found = []
        for sid in self.interference_ids:
            found.append(f"cross-session-interference:{sid}")
        for sid in self.unrecovered_ids:
            found.append(f"faulted-session-not-recovered:{sid}")
        if len(self.shed_ids) > self.max_shed_sessions:
            found.append("shed-over-budget")
        return found

    def to_jsonable(self) -> dict[str, Any]:
        """JSON-safe summary (streams collapsed to counts and ids)."""
        return {
            "scenario": self.scenario.to_dict(),
            "n_sessions": self.n_sessions,
            "faulted_ids": list(self.faulted_ids),
            "shed_ids": list(self.shed_ids),
            "interference_ids": list(self.interference_ids),
            "unrecovered_ids": list(self.unrecovered_ids),
            "max_shed_sessions": self.max_shed_sessions,
            "recovery_horizon_s": self.recovery_horizon_s,
            "fleet_summary": self.fleet_summary,
            "violations": self.violations(),
            "n_estimates_total": self.n_estimates_total,
            "n_events": len(self.events),
            "recordings": self.recordings,
        }


def _estimate_stream_bytes(estimates: list[ServiceEstimate]) -> bytes:
    """Canonical byte encoding of an estimate stream, identity excluded.

    The ``subject`` field is the session's *name*, not part of the
    estimate; dropping it lets a solo baseline (run under its own id)
    byte-compare against any fleet session consuming the same trace.
    """
    lines = []
    for estimate in estimates:
        payload = estimate.to_dict()
        del payload["subject"]
        lines.append(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )
    return "\n".join(lines).encode("utf-8")


def _build_trace_pool(
    pool_size: int, duration_s: float, sample_rate_hz: float, seed: int
) -> list[Any]:
    """Simulate ``pool_size`` distinct single-person captures."""
    traces = []
    for k in range(pool_size):
        rng = np.random.default_rng(seed + 137 * k)
        person = default_subject(rng)
        scene = laboratory_scenario([person], clutter_seed=seed + 137 * k)
        traces.append(
            capture_trace(
                scene,
                duration_s=duration_s,
                sample_rate_hz=sample_rate_hz,
                seed=seed + 137 * k,
            )
        )
    return traces


def _trace_factory(trace: Any):
    """An ``upstream_factory(clock)`` replaying one trace."""

    def factory(clock: SimulatedClock) -> TracePacketSource:
        return TracePacketSource(trace, clock)

    return factory


class _FleetRecorders:
    """In-memory recording taps at the fleet front door.

    One :class:`~repro.store.tap.RecordingTap` per targeted session,
    recording into a per-session :class:`~repro.store.backend.MemoryBackend`.
    The backend outlives any individual tap, so when a shard crash makes
    the gateway rebuild a session's upstream, the fresh tap resumes the
    same store in the next segment instead of clobbering it.
    """

    def __init__(self, session_ids: list[str], sample_rate_hz: float):
        self._sample_rate_hz = float(sample_rate_hz)
        self._backends = {sid: MemoryBackend() for sid in session_ids}
        self._taps: dict[str, RecordingTap] = {}

    @property
    def session_ids(self) -> set[str]:
        return set(self._backends)

    def wrap(self, sid: str, factory: Any) -> Any:
        """Wrap an upstream factory so its source records through a tap."""

        def wrapped(clock: SimulatedClock) -> PacketSource:
            tap = RecordingTap(
                factory(clock),
                self._backends[sid],
                sid,
                sample_rate_hz=self._sample_rate_hz,
                session_id=sid,
                flush_every_records=32,
            )
            self._taps[sid] = tap
            return tap

        return wrapped

    def crash_and_resume(
        self, targets: tuple[str, ...], torn_tail_bytes: int
    ) -> None:
        """Fire one recorder-crash fault at every targeted tap."""
        for sid in targets:
            tap = self._taps.get(sid)
            if tap is not None:
                tap.crash_and_resume(torn_tail_bytes=torn_tail_bytes)

    def finalize(self) -> dict[str, Any]:
        """Close every tap and digest every store, by session id."""
        for sid in sorted(self._taps):
            self._taps[sid].close()
        return {
            sid: store_digest(backend, sid)
            for sid, backend in sorted(self._backends.items())
        }


def _build_gateway(
    traces: list[Any],
    session_ids: list[str],
    sample_rate_hz: float,
    *,
    fleet_config: FleetConfig,
    streaming_config: StreamingConfig,
    supervisor_config: SupervisorConfig,
    seed: int,
    registry: MetricsRegistry | None,
    trace_of: dict[str, int],
    priority_of: dict[str, int],
    recorders: _FleetRecorders | None = None,
) -> FleetGateway:
    clock = SimulatedClock(
        min(float(t.timestamps_s[0]) for t in traces)
    )
    instrumentation = (
        Instrumentation(clock=clock, registry=registry)
        if registry is not None
        else None
    )
    gateway = FleetGateway(
        clock=clock,
        config=fleet_config,
        supervisor_config=supervisor_config,
        streaming_config=streaming_config,
        seed=seed,
        instrumentation=instrumentation,
    )
    for sid in session_ids:
        factory = _trace_factory(traces[trace_of[sid]])
        if recorders is not None and sid in recorders.session_ids:
            factory = recorders.wrap(sid, factory)
        gateway.admit(
            sid,
            factory,
            sample_rate_hz,
            priority=priority_of[sid],
        )
    return gateway


def _fault_firer(
    scenario: FleetScenario,
    faulted_ids: tuple[str, ...],
    recorders: _FleetRecorders | None = None,
):
    """An ``on_round`` hook firing scenario faults as their time arrives."""
    pending = sorted(scenario.faults, key=lambda f: f.at_s)
    cursor = {"next": 0}

    def on_round(gateway: FleetGateway) -> None:
        while (
            cursor["next"] < len(pending)
            and gateway.clock.now_s >= pending[cursor["next"]].at_s
        ):
            fault = pending[cursor["next"]]
            cursor["next"] += 1
            targets = tuple(faulted_ids[: fault.n_sessions])
            if fault.kind == "shard-crash":
                gateway.crash_shard(fault.shard)
            elif fault.kind == "ingest-burst":
                gateway.set_ingest_burst(
                    targets,
                    until_s=fault.end_s,
                    ingest_factor=fault.ingest_factor,
                )
            elif fault.kind == "slow-consumer":
                gateway.set_slow_consumer(
                    targets,
                    until_s=fault.end_s,
                    drain_factor=fault.drain_factor,
                )
            elif fault.kind == "recorder-crash":
                if recorders is not None:
                    recorders.crash_and_resume(
                        targets, fault.torn_tail_bytes
                    )
            else:
                gateway.set_source_loss(targets, until_s=fault.end_s)

    return on_round


def run_fleet_chaos(
    scenario: FleetScenario,
    *,
    n_sessions: int = 20,
    duration_s: float = 24.0,
    sample_rate_hz: float = 50.0,
    seed: int = 0,
    trace_pool_size: int = 4,
    fleet_config: FleetConfig | None = None,
    streaming_config: StreamingConfig | None = None,
    supervisor_config: SupervisorConfig | None = None,
    registry: MetricsRegistry | None = None,
    check_isolation: bool = True,
) -> FleetChaosReport:
    """Run a seeded fleet through one fleet chaos scenario.

    Simulates a small pool of distinct captures, admits ``n_sessions``
    sessions over it (round-robin; priorities cycle 0/1/2 so the shed
    policy has an ordering to respect), runs the gateway under the
    scenario's fault schedule, then runs a one-session solo baseline per
    distinct trace and byte-compares every unfaulted session's estimate
    stream against it.

    Args:
        scenario: The fleet fault schedule to execute.
        n_sessions: Fleet size.
        duration_s: Simulated capture length per session.
        sample_rate_hz: Packet rate of each capture.
        seed: Master seed (scenes, captures, gateway).
        trace_pool_size: Distinct captures shared round-robin across the
            fleet (simulation cost is per-trace, not per-session).
        fleet_config: Gateway parameters; defaults when omitted.
        streaming_config: Monitor parameters; a fleet-friendly default
            (8 s window, 4 s hop) when omitted.
        supervisor_config: Supervision parameters; a default with a 5 s
            checkpoint interval when omitted (so a shard crash lands on a
            restorable checkpoint).
        registry: Optional metrics registry for the *fleet* run (timed on
            the fleet clock, so snapshots are deterministic).
        check_isolation: Run the solo baselines and byte-compare; switch
            off only for pure capability benchmarks where the extra runs
            would dominate the measurement.

    Returns:
        The :class:`FleetChaosReport`.
    """
    if n_sessions < 1:
        raise ConfigurationError("n_sessions must be >= 1")
    if fleet_config is None:
        fleet_config = FleetConfig()
    if streaming_config is None:
        streaming_config = StreamingConfig(
            window_s=8.0, hop_s=4.0, max_gap_s=0.5, holdover_s=20.0
        )
    if supervisor_config is None:
        supervisor_config = SupervisorConfig(checkpoint_interval_s=5.0)
    horizon_margin_s = streaming_config.window_s + streaming_config.hop_s
    if scenario.last_fault_end_s + horizon_margin_s >= duration_s:
        raise ConfigurationError(
            f"scenario {scenario.name!r} needs a clean tail: last fault "
            f"ends at {scenario.last_fault_end_s:.1f}s, recovery horizon "
            f"is {scenario.last_fault_end_s + horizon_margin_s:.1f}s, but "
            f"the capture is only {duration_s:.1f}s"
        )
    if scenario.max_targeted_sessions() > n_sessions:
        raise ConfigurationError(
            f"scenario {scenario.name!r} targets "
            f"{scenario.max_targeted_sessions()} sessions but the fleet "
            f"only has {n_sessions}"
        )

    pool = _build_trace_pool(
        min(trace_pool_size, n_sessions), duration_s, sample_rate_hz, seed
    )
    session_ids = [f"session-{i:04d}" for i in range(n_sessions)]
    trace_of = {sid: i % len(pool) for i, sid in enumerate(session_ids)}
    priority_of = {sid: i % 3 for i, sid in enumerate(session_ids)}

    build = dict(
        sample_rate_hz=sample_rate_hz,
        fleet_config=fleet_config,
        streaming_config=streaming_config,
        supervisor_config=supervisor_config,
        seed=seed,
        trace_of=trace_of,
        priority_of=priority_of,
    )
    # Sessions targeted by recorder-crash faults get a write-through
    # recording tap at the front door; the solo baselines do not — a tap
    # is transparent to the consumer, and the isolation byte-compare
    # proves exactly that for any tapped-but-unfaulted configuration.
    n_recorded = max(
        (
            f.n_sessions
            for f in scenario.faults
            if f.kind == "recorder-crash"
        ),
        default=0,
    )
    recorders = (
        _FleetRecorders(session_ids[:n_recorded], sample_rate_hz)
        if n_recorded
        else None
    )

    gateway = _build_gateway(
        pool, session_ids, registry=registry, recorders=recorders, **build
    )

    # Who counts as faulted: targeted sessions, plus (for a shard crash)
    # whoever sits on the crashed shard.
    targeted = set(
        session_ids[: scenario.max_targeted_sessions()]
    )
    for fault in scenario.faults:
        if fault.kind == "shard-crash":
            targeted.update(gateway.sessions_on_shard(fault.shard))
    faulted_ids = tuple(sid for sid in session_ids if sid in targeted)

    run_budget_s = duration_s + 30.0
    gateway.run(
        max_duration_s=run_budget_s,
        on_round=_fault_firer(scenario, faulted_ids, recorders),
    )
    recordings = recorders.finalize() if recorders is not None else {}

    shed_ids = tuple(
        sid
        for sid in session_ids
        if gateway.status(sid) is SessionStatus.SHED
    )

    gateway_start_s = min(float(t.timestamps_s[0]) for t in pool)
    fault_end_abs_s = gateway_start_s + scenario.last_fault_end_s
    horizon_s = fault_end_abs_s + horizon_margin_s

    # Solo baselines: one fault-free, one-session gateway run per distinct
    # trace, computed lazily and shared between the recovery check (was
    # the failure fault-induced?) and the isolation check (byte-compare).
    # Each entry is (estimate stream, fresh-emission fleet times).
    baseline_cache: dict[
        int, tuple[list[ServiceEstimate], tuple[float, ...]]
    ] = {}

    def solo_baseline(
        k: int,
    ) -> tuple[list[ServiceEstimate], tuple[float, ...]]:
        if k not in baseline_cache:
            sid = next(s for s in session_ids if trace_of[s] == k)
            solo = _build_gateway(pool, [sid], registry=None, **build)
            solo.run(max_duration_s=run_budget_s)
            baseline_cache[k] = (
                solo.estimates(sid),
                solo.fresh_emission_times(sid),
            )
        return baseline_cache[k]

    def recovers_in_time(emit_times_s: tuple[float, ...]) -> bool:
        # Judged on *fleet* time, not estimate data time: a burst fault
        # fast-forwards the upstream, so post-burst estimates carry
        # near-end-of-trace data timestamps even though the session is
        # healthy again within seconds on the gateway clock.
        return any(
            fault_end_abs_s <= t <= horizon_s for t in emit_times_s
        )

    fault_start_abs_s = gateway_start_s + min(
        (f.at_s for f in scenario.faults), default=0.0
    )

    def session_recovered(sid: str) -> bool:
        emit = gateway.fresh_emission_times(sid)
        if recovers_in_time(emit):
            return True
        # A burst can deliver the entire remaining capture and finish
        # the session before the fault window nominally closes.  A
        # session that drained its whole stream and exited cleanly —
        # still producing fresh estimates after the fault began — was
        # never wedged; one that finished but went silent at the fault
        # is not excused.
        return gateway.status(sid) is SessionStatus.FINISHED and any(
            t >= fault_start_abs_s for t in emit
        )

    unrecovered = []
    for sid in faulted_ids:
        if sid in shed_ids:
            continue
        if session_recovered(sid):
            continue
        # No fresh emission between the fault end and the horizon — a
        # violation only when the same trace *does* produce one in its
        # fault-free solo run.
        if recovers_in_time(solo_baseline(trace_of[sid])[1]):
            unrecovered.append(sid)

    interference: list[str] = []
    if check_isolation:
        for sid in session_ids:
            if sid in targeted or sid in shed_ids:
                continue
            k = trace_of[sid]
            if _estimate_stream_bytes(
                gateway.estimates(sid)
            ) != _estimate_stream_bytes(solo_baseline(k)[0]):
                interference.append(sid)

    results = gateway.results()
    return FleetChaosReport(
        scenario=scenario,
        n_sessions=n_sessions,
        faulted_ids=faulted_ids,
        shed_ids=shed_ids,
        interference_ids=tuple(interference),
        unrecovered_ids=tuple(unrecovered),
        max_shed_sessions=fleet_config.max_shed_sessions,
        recovery_horizon_s=horizon_s,
        fleet_summary=gateway.fleet_summary(),
        events=gateway.events,
        events_jsonl=gateway.events.to_jsonl(),
        metrics_json=(
            canonical_json(registry.snapshot())
            if registry is not None
            else None
        ),
        n_estimates_total=sum(len(v) for v in results.values()),  # phaselint: insertion-order -- integer count, order-independent
        recordings=recordings,
    )
