"""Supervised long-running monitoring service.

The pipeline and streaming monitor assume someone hands them packets; this
package is that someone, hardened.  It supplies the capture-side fault
domain (:mod:`~repro.service.sources`), the per-source circuit breaker
(:mod:`~repro.service.breaker`), the multi-subject supervisor with
watchdog, checkpoint/restore and an estimator fallback ladder
(:mod:`~repro.service.supervisor`), and a scripted chaos harness that
proves the whole thing recovers (:mod:`~repro.service.chaos`) — all timed
on one :class:`~repro.service.clock.SimulatedClock` so every run is
deterministic and bit-replayable.

See ``docs/service.md`` for the fault-domain map and state machines.
"""

from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .chaos import (
    SHIPPED_SCENARIOS,
    ChaosReport,
    ChaosScenario,
    TimedFault,
    flaky_source_factory,
    load_scenario,
    run_chaos,
)
from .clock import SimulatedClock
from .events import EventLog, ServiceEvent
from .sources import (
    FlakySourceAdapter,
    Packet,
    PacketSource,
    ResilientSource,
    RetryConfig,
    SourceFault,
    TracePacketSource,
)
from .supervisor import (
    FALLBACK_METHODS,
    MonitorSupervisor,
    ServiceEstimate,
    SubjectHealth,
    SupervisorConfig,
)

__all__ = [
    "SimulatedClock",
    "EventLog",
    "ServiceEvent",
    "BreakerState",
    "BreakerConfig",
    "CircuitBreaker",
    "Packet",
    "PacketSource",
    "TracePacketSource",
    "SourceFault",
    "FlakySourceAdapter",
    "RetryConfig",
    "ResilientSource",
    "SubjectHealth",
    "FALLBACK_METHODS",
    "SupervisorConfig",
    "ServiceEstimate",
    "MonitorSupervisor",
    "TimedFault",
    "ChaosScenario",
    "ChaosReport",
    "SHIPPED_SCENARIOS",
    "load_scenario",
    "flaky_source_factory",
    "run_chaos",
]
