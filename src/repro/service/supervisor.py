"""Supervised multi-subject monitoring: fault domains around the monitors.

:class:`MonitorSupervisor` owns one
:class:`~repro.core.streaming.StreamingMonitor` per subject plus the
subject's :class:`~repro.service.sources.ResilientSource`, and puts an
explicit fault boundary around each:

* **source faults** (transient errors, timeouts, crashes, open breakers)
  are absorbed at the source wrapper and surface only as recorded events
  and missing packets;
* a **watchdog on simulated time** detects silent stalls — no packet and
  no error while the clock advances — and force-restarts the source;
* **monitor crashes** are caught, the monitor is rebuilt and restored from
  its latest periodic :meth:`~repro.core.streaming.StreamingMonitor.checkpoint`,
  and repeated restarts escalate the subject to a failed health state;
* sustained **input degradation** (``"data-gap"`` / ``"degraded-input"``
  window gates firing for K consecutive windows) walks the subject down an
  **estimator fallback ladder** — phase difference → CSI ratio → amplitude
  baseline — and cross-checks against the primary estimator on recovery
  before climbing back up.  Passing a trained
  :class:`~repro.learn.LearnedEstimator` inserts a ``"learned"`` rung
  between the primary and the CSI-ratio baseline, so degraded windows are
  first served by the learned track before falling to the classical
  baselines.

Every transition lands in the shared :class:`~repro.service.events.EventLog`,
so a run is fully auditable and the chaos harness can assert transition
order.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from ..baselines.amplitude import AmplitudeMethod
from ..core.pipeline import PhaseBeatConfig
from ..core.streaming import (
    StreamingConfig,
    StreamingEstimate,
    StreamingMonitor,
)
from ..errors import (
    CheckpointError,
    CircuitOpenError,
    ConfigurationError,
    ReproError,
    SourceCrashedError,
    SourceTimeoutError,
    SourceUnavailableError,
)
from ..extensions.csi_ratio import CsiRatioEstimator
from ..obs import (
    DEFAULT_SIZE_BUCKETS,
    NULL_INSTRUMENTATION,
    Instrumentation,
)
from .breaker import BreakerConfig, BreakerState
from .clock import SimulatedClock
from .events import EventLog
from .sources import PacketSource, ResilientSource, RetryConfig

__all__ = [
    "SubjectHealth",
    "FALLBACK_METHODS",
    "LEARNED_FALLBACK_METHODS",
    "BreathingEstimator",
    "SupervisorConfig",
    "ServiceEstimate",
    "MonitorSupervisor",
]

# The estimator fallback ladder, primary first.  Escalation moves right one
# rung at a time; recovery jumps straight back to the primary.
FALLBACK_METHODS: tuple[str, ...] = (
    "phase-difference",
    "csi-ratio",
    "amplitude",
)

# The ladder when a learned estimator is supplied: the learned rung serves
# degraded windows before the classical baselines get a turn.
LEARNED_FALLBACK_METHODS: tuple[str, ...] = (
    "phase-difference",
    "learned",
    "csi-ratio",
    "amplitude",
)


class BreathingEstimator(Protocol):
    """Anything servable on a ladder rung: window trace in, bpm out."""

    def estimate_breathing_bpm(self, trace: Any) -> float:
        """Breathing-rate estimate (bpm) for one window trace."""
        ...


class SubjectHealth(enum.Enum):
    """Coarse per-subject health the service reports upstream."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision parameters (all times are simulated seconds).

    Attributes:
        checkpoint_interval_s: How often each monitor is checkpointed.
        watchdog_timeout_s: Silence (no packet delivered) before the
            watchdog declares a stall and force-restarts the source.
        max_monitor_restarts: Monitor restarts tolerated before the
            subject is escalated to :attr:`SubjectHealth.FAILED`.
        fallback_after_windows: Consecutive quality-gated windows
            (``"data-gap"`` / ``"degraded-input"``) before stepping one
            rung down the estimator ladder.
        recovery_tolerance_bpm: Max |primary − fallback| disagreement for
            a cross-checked recovery back to the primary estimator.
        recovery_fresh_windows: Fresh primary windows after which recovery
            happens even when the fallback estimator cannot produce a
            cross-check value.
        deadline_s: Per-read deadline handed to each subject's
            :class:`~repro.service.sources.ResilientSource`.
        retry: Bounded-backoff retry parameters for transient source
            errors.
        breaker: Per-source circuit-breaker parameters.
    """

    checkpoint_interval_s: float = 10.0
    watchdog_timeout_s: float = 3.0
    max_monitor_restarts: int = 3
    fallback_after_windows: int = 3
    recovery_tolerance_bpm: float = 1.5
    recovery_fresh_windows: int = 2
    deadline_s: float = 1.0
    retry: RetryConfig = field(default_factory=RetryConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.checkpoint_interval_s <= 0:
            raise ConfigurationError("checkpoint_interval_s must be positive")
        if self.watchdog_timeout_s <= 0:
            raise ConfigurationError("watchdog_timeout_s must be positive")
        if self.max_monitor_restarts < 0:
            raise ConfigurationError("max_monitor_restarts must be >= 0")
        if self.fallback_after_windows < 1:
            raise ConfigurationError("fallback_after_windows must be >= 1")
        if self.recovery_tolerance_bpm <= 0:
            raise ConfigurationError("recovery_tolerance_bpm must be positive")
        if self.recovery_fresh_windows < 1:
            raise ConfigurationError("recovery_fresh_windows must be >= 1")
        if self.deadline_s <= 0:
            raise ConfigurationError("deadline_s must be positive")


@dataclass(frozen=True)
class ServiceEstimate:
    """One breathing-rate emission from the supervised service.

    Attributes:
        subject: Which subject it belongs to.
        time_s: End of the analysis window (simulated time).
        rate_bpm: The breathing estimate (``nan`` when nothing usable).
        method: Estimator that produced ``rate_bpm`` (one of
            :data:`FALLBACK_METHODS`), or ``None`` when ``rate_bpm`` is
            ``nan``.
        fresh: The value was computed from this window (by whichever
            estimator), not held over.
        held_over: The value is a re-emission of an earlier estimate.
        rejected_reason: The primary path's window-gate reason, if any.
        fallback_level: Ladder rung in effect when emitting (0 = primary).
        health: Subject health at emission time.
    """

    subject: str
    time_s: float
    rate_bpm: float
    method: str | None
    fresh: bool
    held_over: bool
    rejected_reason: str | None
    fallback_level: int
    health: SubjectHealth

    @property
    def ok(self) -> bool:
        """Whether a usable rate is attached."""
        return not math.isnan(self.rate_bpm)

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (``nan`` rates serialize as ``None``).

        The canonical-JSON encoding of this dict is what the fleet chaos
        harness byte-compares between a fleet run and a solo run, so every
        field that could differ between the two must appear here.
        """
        return {
            "subject": self.subject,
            "time_s": self.time_s,
            "rate_bpm": None if math.isnan(self.rate_bpm) else self.rate_bpm,
            "method": self.method,
            "fresh": self.fresh,
            "held_over": self.held_over,
            "rejected_reason": self.rejected_reason,
            "fallback_level": self.fallback_level,
            "health": self.health.value,
        }


class _Subject:
    """Mutable supervision state for one subject (internal)."""

    def __init__(
        self,
        name: str,
        source: ResilientSource,
        monitor: StreamingMonitor,
        interval_s: float,
        now_s: float,
    ):
        self.name = name
        self.source = source
        self.monitor = monitor
        self.interval_s = interval_s
        self.health = SubjectHealth.HEALTHY
        self.fallback_level = 0
        # Floor the overload policy can pin the ladder at: recovery climbs
        # back to this rung, never above it, until the pin is released.
        self.min_fallback_level = 0
        self.hop_stretch = 1.0
        self.consecutive_gated = 0
        self.consecutive_fresh = 0
        self.monitor_restarts = 0
        # Scripted monitor-crash times (simulated seconds) not yet fired,
        # kept sorted; consumed front-to-back by _fire_scheduled_crashes.
        self.pending_crashes_s: list[float] = []
        self.failed = False
        self.last_progress_s = now_s
        self.last_checkpoint: dict[str, Any] | None = None
        self.last_checkpoint_s = now_s
        self.last_estimate: ServiceEstimate | None = None
        self.estimates: list[ServiceEstimate] = []

    @property
    def done(self) -> bool:
        """No further work possible for this subject."""
        return self.failed or self.source.exhausted


class MonitorSupervisor:
    """Run N subject monitors under explicit supervision.

    Args:
        clock: Shared simulated clock; a fresh one when omitted.
        config: Supervision parameters.
        streaming_config: Per-subject monitor parameters.
        pipeline_config: Underlying pipeline parameters.
        events: Event log to record into; a fresh one when omitted.
        seed: Master seed for per-source retry jitter (each subject gets a
            distinct child seed, so adding a subject never reshuffles the
            others' backoff timing).
        instrumentation: Optional :class:`repro.obs.Instrumentation`,
            shared with every subject's source, breaker, monitor, and
            pipeline; records restarts, checkpoints, fallback-ladder
            moves, stalls, and health levels (``supervisor_*`` series).
        learned_estimator: Optional trained estimator (typically a
            :class:`~repro.learn.LearnedEstimator`); when given, the
            fallback ladder becomes
            :data:`LEARNED_FALLBACK_METHODS` and degraded windows are
            served by the learned rung before the classical baselines.
    """

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        config: SupervisorConfig | None = None,
        streaming_config: StreamingConfig | None = None,
        pipeline_config: PhaseBeatConfig | None = None,
        events: EventLog | None = None,
        seed: int = 0,
        instrumentation: Instrumentation | None = None,
        learned_estimator: BreathingEstimator | None = None,
    ):
        self.clock = clock if clock is not None else SimulatedClock()
        self.config = config if config is not None else SupervisorConfig()
        self.streaming_config = (
            streaming_config if streaming_config is not None else StreamingConfig()
        )
        self.pipeline_config = pipeline_config
        self.events = events if events is not None else EventLog()
        self._obs = (
            instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
        )
        self._seed = int(seed)
        self._subjects: dict[str, _Subject] = {}
        self._csi_ratio = CsiRatioEstimator()
        self._amplitude = AmplitudeMethod()
        self._ladder: tuple[str, ...] = (
            LEARNED_FALLBACK_METHODS
            if learned_estimator is not None
            else FALLBACK_METHODS
        )
        self._rung_estimators: dict[str, BreathingEstimator] = {
            "csi-ratio": self._csi_ratio,
            "amplitude": self._amplitude,
        }
        if learned_estimator is not None:
            self._rung_estimators["learned"] = learned_estimator

    @property
    def fallback_methods(self) -> tuple[str, ...]:
        """The estimator ladder in effect (primary first)."""
        return self._ladder

    @property
    def subjects(self) -> tuple[str, ...]:
        """Registered subject names, in registration order."""
        return tuple(self._subjects)

    def add_subject(
        self,
        name: str,
        source_factory: Callable[[float], PacketSource],
        sample_rate_hz: float,
    ) -> None:
        """Register a subject with its capture-source factory.

        Args:
            name: Unique subject name (used in events and estimates).
            source_factory: ``factory(start_at_s) -> PacketSource``; called
                now and again after every hard source crash.
            sample_rate_hz: Nominal packet rate of the subject's stream.
        """
        if name in self._subjects:
            raise ConfigurationError(f"subject {name!r} already registered")
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        source = ResilientSource(
            source_factory,
            self.clock,
            subject=name,
            events=self.events,
            deadline_s=self.config.deadline_s,
            retry=self.config.retry,
            breaker=self.config.breaker,
            seed=self._seed + len(self._subjects),
            instrumentation=self._obs,
        )
        monitor = StreamingMonitor(
            sample_rate_hz,
            self.streaming_config,
            self.pipeline_config,
            instrumentation=self._obs,
        )
        self._subjects[name] = _Subject(
            name=name,
            source=source,
            monitor=monitor,
            interval_s=1.0 / float(sample_rate_hz),
            now_s=self.clock.now_s,
        )

    def run(
        self, *, max_duration_s: float | None = None
    ) -> dict[str, list[ServiceEstimate]]:
        """Drive all subjects until their sources are exhausted.

        Args:
            max_duration_s: Optional simulated-time budget; the loop stops
                once the clock has advanced this far past its start.

        Returns:
            Estimates per subject, in emission order.
        """
        if not self._subjects:
            raise ConfigurationError("no subjects registered")
        start_s = self.clock.now_s
        while True:
            active = [s for s in self._subjects.values() if not s.done]
            if not active:
                break
            if (
                max_duration_s is not None
                and self.clock.now_s - start_s >= max_duration_s
            ):
                break
            for subject in active:
                self._tick(subject)
        return {name: s.estimates for name, s in self._subjects.items()}

    def tick(self, name: str) -> None:
        """Run one scheduling tick for one subject (no-op once it is done).

        This is the unit of work the fleet gateway schedules: one
        supervised source read, fed to the monitor, with checkpointing,
        watchdog, fallback-ladder, and health handling exactly as in
        :meth:`run` — which is itself a loop of these ticks.
        """
        subject = self._subject(name)
        if subject.done:
            return
        self._tick(subject)

    def subject_done(self, name: str) -> bool:
        """Whether a subject has permanently finished (failed or
        exhausted)."""
        return self._subject(name).done

    def estimates_for(self, name: str) -> list[ServiceEstimate]:
        """The subject's emissions so far, in emission order."""
        return list(self._subject(name).estimates)

    def crash_monitor(self, name: str, *, cause: str = "injected") -> None:
        """Kill a subject's monitor as a crash would, and restart it.

        The monitor object is discarded and rebuilt through the normal
        restart path — restored from the latest periodic checkpoint when
        one exists, cold otherwise — so callers (the fleet chaos harness's
        shard-crash fault, the scripted ``monitor-crash`` chaos kind)
        exercise exactly the code path a real in-monitor exception takes.
        """
        subject = self._subject(name)
        if subject.done:
            return
        self._inject_crash(subject, cause)

    def schedule_monitor_crash(self, name: str, at_s: float) -> None:
        """Script a monitor crash at a simulated time.

        The crash fires on the first tick at or after ``at_s`` via
        :meth:`crash_monitor`.  Multiple schedules accumulate.
        """
        subject = self._subject(name)
        subject.pending_crashes_s.append(float(at_s))
        subject.pending_crashes_s.sort()

    def set_hop_stretch(self, name: str, stretch: float) -> None:
        """Throttle (or restore) a subject's emission cadence.

        Applies :meth:`StreamingMonitor.set_hop_stretch` and remembers the
        factor so a monitor rebuilt after a crash comes back with the same
        throttle still in force.
        """
        subject = self._subject(name)
        subject.hop_stretch = float(stretch)
        subject.monitor.set_hop_stretch(subject.hop_stretch)

    def set_min_fallback_level(
        self, name: str, level: int, *, reason: str = "overload"
    ) -> None:
        """Pin a subject's estimator ladder at (or release it to) a floor.

        Raising the floor above the subject's current rung walks the
        ladder down immediately (recorded as ``fallback-escalated``
        events); recovery cross-checks then climb back only as far as the
        floor.  Lowering the floor releases the pin and lets the normal
        recovery path climb the rest of the way.
        """
        if not 0 <= level < len(self._ladder):
            raise ConfigurationError(
                f"fallback level must be in [0, {len(self._ladder) - 1}], "
                f"got {level}"
            )
        subject = self._subject(name)
        subject.min_fallback_level = int(level)
        while subject.fallback_level < subject.min_fallback_level:
            subject.fallback_level += 1
            subject.consecutive_gated = 0
            self._obs.count(
                "supervisor_fallback_escalations_total",
                labels={"subject": subject.name},
                help_text="Steps down the estimator fallback ladder.",
            )
            self._set_fallback_gauge(subject)
            self.events.record(
                self.clock.now_s,
                subject.name,
                "fallback-escalated",
                to_method=self._ladder[subject.fallback_level],
                level=subject.fallback_level,
                reason=reason,
            )
        self._update_health(subject)

    def _inject_crash(self, subject: _Subject, cause: str) -> None:
        self.events.record(
            self.clock.now_s,
            subject.name,
            "monitor-crash",
            error="InjectedMonitorCrash",
            message=cause,
        )
        self._restart_monitor(
            subject, cause=RuntimeError(f"injected monitor crash: {cause}")
        )
        self._update_health(subject)

    def _subject(self, name: str) -> _Subject:
        try:
            return self._subjects[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown subject {name!r}; registered: "
                f"{sorted(self._subjects)}"
            ) from None

    def health_summary(self) -> dict[str, dict[str, Any]]:
        """Per-subject health snapshot for reporting.

        Returns:
            For each subject: ``health``, active estimator ``method``,
            ``fallback_level``, ``monitor_restarts``, ``breaker`` state,
            source ``counters``, and ``n_estimates``.
        """
        summary: dict[str, dict[str, Any]] = {}
        for name, s in self._subjects.items():
            summary[name] = {
                "health": s.health.value,
                "method": self._ladder[s.fallback_level],
                "fallback_level": s.fallback_level,
                "monitor_restarts": s.monitor_restarts,
                "breaker": s.source.breaker.state.value,
                "source_counters": dict(s.source.counters),
                "monitor_counters": dict(s.monitor.counters),
                "n_estimates": len(s.estimates),
            }
        return summary

    # ------------------------------------------------------------------
    # One scheduling tick for one subject.

    def _tick(self, subject: _Subject) -> None:
        while (
            subject.pending_crashes_s
            and self.clock.now_s >= subject.pending_crashes_s[0]
            and not subject.done
        ):
            at_s = subject.pending_crashes_s.pop(0)
            self._inject_crash(subject, cause=f"scheduled at {at_s:g}s")
        if subject.done:
            return
        t_before = self.clock.now_s
        packet = None
        try:
            packet = subject.source.next_packet()
        except CircuitOpenError:
            # Short-circuited: no read happened.  Time still has to pass,
            # or the cooldown would never elapse (handled below).
            pass
        except (SourceTimeoutError, SourceUnavailableError) as exc:
            self.events.record(
                self.clock.now_s,
                subject.name,
                "source-error",
                error=type(exc).__name__,
                message=str(exc),
            )
        except SourceCrashedError:
            # Crash + rebuild already recorded by the resilient wrapper.
            pass
        if packet is None and self.clock.now_s <= t_before:
            # Guarantee forward progress: a fruitless tick (failed or
            # short-circuited read) costs one poll interval of simulated
            # time.  A delivered packet is progress by itself — its
            # timestamp may lag the clock when another subject already
            # advanced it.
            self.clock.advance(subject.interval_s)

        if packet is None:
            self._check_watchdog(subject)
            self._update_health(subject)
            return

        subject.last_progress_s = self.clock.now_s
        estimate = self._feed_monitor(subject, packet.csi, packet.timestamp_s)
        self._maybe_checkpoint(subject)
        if estimate is not None:
            self._handle_estimate(subject, estimate)
        self._update_health(subject)

    def _check_watchdog(self, subject: _Subject) -> None:
        silence_s = self.clock.now_s - subject.last_progress_s
        if silence_s <= self.config.watchdog_timeout_s:
            return
        if subject.source.exhausted:
            return  # end of data, not a stall
        if subject.source.breaker.state is not BreakerState.CLOSED:
            # Silence has a known cause (open/probing breaker); restarting
            # the source would not help, and the stall alarm would be noise.
            subject.last_progress_s = self.clock.now_s
            return
        self.events.record(
            self.clock.now_s,
            subject.name,
            "stall-detected",
            silence_s=silence_s,
        )
        self._obs.count(
            "supervisor_stalls_detected_total",
            labels={"subject": subject.name},
            help_text="Silent stalls caught by the watchdog.",
        )
        subject.source.force_restart()
        subject.last_progress_s = self.clock.now_s

    def _feed_monitor(
        self, subject: _Subject, csi: Any, timestamp_s: float
    ) -> StreamingEstimate | None:
        try:
            return subject.monitor.push_packet(csi, timestamp_s)
        except ReproError as exc:
            self.events.record(
                self.clock.now_s,
                subject.name,
                "monitor-crash",
                error=type(exc).__name__,
                message=str(exc),
            )
            self._restart_monitor(subject, cause=exc)
            return None

    def _restart_monitor(self, subject: _Subject, cause: Exception) -> None:
        subject.monitor_restarts += 1
        self._obs.count(
            "supervisor_monitor_restarts_total",
            labels={"subject": subject.name},
            help_text="Monitor rebuilds after a crash.",
        )
        if subject.monitor_restarts > self.config.max_monitor_restarts:
            subject.failed = True
            self.events.record(
                self.clock.now_s,
                subject.name,
                "subject-failed",
                monitor_restarts=subject.monitor_restarts,
            )
            self._obs.count(
                "supervisor_subject_failures_total",
                labels={"subject": subject.name},
                help_text="Subjects escalated to FAILED (restart budget "
                "exhausted).",
            )
            return
        monitor = StreamingMonitor(
            subject.monitor.sample_rate_hz,
            self.streaming_config,
            self.pipeline_config,
            instrumentation=self._obs,
        )
        restored = False
        if subject.last_checkpoint is not None:
            try:
                monitor.restore(subject.last_checkpoint)
                restored = True
            except CheckpointError as exc:
                # A corrupt checkpoint must not stop the restart; the
                # monitor simply comes back cold (empty window).
                self.events.record(
                    self.clock.now_s,
                    subject.name,
                    "checkpoint-restore-failed",
                    error=str(exc),
                )
        if subject.hop_stretch != 1.0:  # phaselint: disable=PL004 -- exact 'no stretch' sentinel
            monitor.set_hop_stretch(subject.hop_stretch)
        subject.monitor = monitor
        self.events.record(
            self.clock.now_s,
            subject.name,
            "monitor-restart",
            restored=restored,
            restarts=subject.monitor_restarts,
            cause=type(cause).__name__,
        )

    def _maybe_checkpoint(self, subject: _Subject) -> None:
        if (
            self.clock.now_s - subject.last_checkpoint_s
            < self.config.checkpoint_interval_s
        ):
            return
        subject.last_checkpoint = subject.monitor.checkpoint()
        subject.last_checkpoint_s = self.clock.now_s
        n_buffered = len(subject.last_checkpoint["buffer"])
        self.events.record(
            self.clock.now_s,
            subject.name,
            "checkpoint",
            n_buffered=n_buffered,
        )
        self._obs.count(
            "supervisor_checkpoints_total",
            labels={"subject": subject.name},
            help_text="Periodic monitor checkpoints taken.",
        )
        self._obs.observe(
            "supervisor_checkpoint_size_packets",
            n_buffered,
            labels={"subject": subject.name},
            help_text="Buffered packets per checkpoint.",
            bucket_bounds=DEFAULT_SIZE_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Estimator fallback ladder.

    def _fallback_estimate(self, subject: _Subject) -> float | None:
        """Run the subject's current fallback estimator on its window."""
        if subject.fallback_level == 0:
            return None
        trace = subject.monitor.window_trace()
        if trace is None:
            return None
        estimator = self._rung_estimators[self._ladder[subject.fallback_level]]
        try:
            return float(estimator.estimate_breathing_bpm(trace))
        except ReproError:
            # A rung that cannot serve this window (contract violation,
            # degraded input, …) yields to the held-over primary estimate
            # rather than poisoning the emission stream.
            return None

    def _handle_estimate(
        self, subject: _Subject, estimate: StreamingEstimate
    ) -> None:
        gated = estimate.rejected_reason in ("data-gap", "degraded-input")
        if estimate.fresh:
            subject.consecutive_gated = 0
            self._handle_fresh(subject, estimate)
        else:
            subject.consecutive_fresh = 0
            if gated:
                subject.consecutive_gated += 1
                self._maybe_escalate(subject, estimate.rejected_reason)
            self._handle_rejected(subject, estimate)

    def _handle_fresh(
        self, subject: _Subject, estimate: StreamingEstimate
    ) -> None:
        assert estimate.result is not None
        primary_bpm = float(estimate.result.breathing_rates_bpm[0])
        if subject.fallback_level == 0:
            self._emit(
                subject,
                estimate,
                rate_bpm=primary_bpm,
                method=self._ladder[0],
                fresh=True,
            )
            return
        if subject.fallback_level <= subject.min_fallback_level:
            # Pinned at the overload floor: keep emitting the fallback
            # value without attempting recovery — the pin exists because
            # the fleet layer wants this session cheap, not because the
            # primary path is distrusted.
            alt_bpm = self._fallback_estimate(subject)
            self._emit(
                subject,
                estimate,
                rate_bpm=alt_bpm if alt_bpm is not None else primary_bpm,
                method=(
                    self._ladder[subject.fallback_level]
                    if alt_bpm is not None
                    else self._ladder[0]
                ),
                fresh=True,
            )
            return
        # In fallback: cross-check the recovered primary path against the
        # currently trusted estimator before switching back.
        alt_bpm = self._fallback_estimate(subject)
        recovered = False
        reason = ""
        if alt_bpm is not None and (
            abs(alt_bpm - primary_bpm) <= self.config.recovery_tolerance_bpm
        ):
            recovered = True
            reason = "cross-check-agreed"
        else:
            subject.consecutive_fresh += 1
            if subject.consecutive_fresh >= self.config.recovery_fresh_windows:
                recovered = True
                reason = (
                    "fallback-unavailable"
                    if alt_bpm is None
                    else "primary-sustained"
                )
        if recovered:
            from_level = subject.fallback_level
            # Recovery climbs back to the pinned floor, never above it.
            subject.fallback_level = subject.min_fallback_level
            subject.consecutive_fresh = 0
            self._obs.count(
                "supervisor_fallback_recoveries_total",
                labels={"subject": subject.name},
                help_text="Returns to the primary estimator.",
            )
            self._set_fallback_gauge(subject)
            self.events.record(
                self.clock.now_s,
                subject.name,
                "fallback-recovered",
                from_method=self._ladder[from_level],
                reason=reason,
                primary_bpm=primary_bpm,
                fallback_bpm=alt_bpm,
            )
            if subject.fallback_level == 0:
                self._emit(
                    subject,
                    estimate,
                    rate_bpm=primary_bpm,
                    method=self._ladder[0],
                    fresh=True,
                )
            else:
                pinned_bpm = self._fallback_estimate(subject)
                self._emit(
                    subject,
                    estimate,
                    rate_bpm=(
                        pinned_bpm if pinned_bpm is not None else primary_bpm
                    ),
                    method=(
                        self._ladder[subject.fallback_level]
                        if pinned_bpm is not None
                        else self._ladder[0]
                    ),
                    fresh=True,
                )
        else:
            # Still in fallback: trust the fallback estimator's value when
            # it has one, else report the (unconfirmed) primary value.
            rate = alt_bpm if alt_bpm is not None else primary_bpm
            method = (
                self._ladder[subject.fallback_level]
                if alt_bpm is not None
                else self._ladder[0]
            )
            self._emit(
                subject, estimate, rate_bpm=rate, method=method, fresh=True
            )

    def _maybe_escalate(
        self, subject: _Subject, reason: str | None
    ) -> None:
        if (
            subject.consecutive_gated < self.config.fallback_after_windows
            or subject.fallback_level >= len(self._ladder) - 1
        ):
            return
        subject.fallback_level += 1
        subject.consecutive_gated = 0
        self._obs.count(
            "supervisor_fallback_escalations_total",
            labels={"subject": subject.name},
            help_text="Steps down the estimator fallback ladder.",
        )
        self._set_fallback_gauge(subject)
        self.events.record(
            self.clock.now_s,
            subject.name,
            "fallback-escalated",
            to_method=self._ladder[subject.fallback_level],
            level=subject.fallback_level,
            reason=reason,
        )

    def _set_fallback_gauge(self, subject: _Subject) -> None:
        self._obs.gauge_set(
            "supervisor_fallback_level",
            subject.fallback_level,
            labels={"subject": subject.name},
            help_text="Current fallback-ladder rung (0 = primary).",
        )

    def _handle_rejected(
        self, subject: _Subject, estimate: StreamingEstimate
    ) -> None:
        alt_bpm = self._fallback_estimate(subject)
        if alt_bpm is not None:
            self._emit(
                subject,
                estimate,
                rate_bpm=alt_bpm,
                method=self._ladder[subject.fallback_level],
                fresh=True,
            )
        elif estimate.result is not None:  # held-over primary estimate
            self._emit(
                subject,
                estimate,
                rate_bpm=float(estimate.result.breathing_rates_bpm[0]),
                method=self._ladder[0],
                fresh=False,
            )
        else:
            self._emit(
                subject,
                estimate,
                rate_bpm=float("nan"),
                method=None,
                fresh=False,
            )

    def _emit(
        self,
        subject: _Subject,
        estimate: StreamingEstimate,
        *,
        rate_bpm: float,
        method: str | None,
        fresh: bool,
    ) -> None:
        record = ServiceEstimate(
            subject=subject.name,
            time_s=estimate.time_s,
            rate_bpm=rate_bpm,
            method=method,
            fresh=fresh,
            held_over=estimate.held_over,
            rejected_reason=estimate.rejected_reason,
            fallback_level=subject.fallback_level,
            health=subject.health,
        )
        subject.last_estimate = record
        subject.estimates.append(record)

    # ------------------------------------------------------------------
    # Health.

    def _compute_health(self, subject: _Subject) -> SubjectHealth:
        if subject.failed:
            return SubjectHealth.FAILED
        if subject.fallback_level > 0:
            return SubjectHealth.DEGRADED
        if subject.source.breaker.state is not BreakerState.CLOSED:
            return SubjectHealth.DEGRADED
        last = subject.last_estimate
        if last is not None and (last.held_over or not last.ok):
            return SubjectHealth.DEGRADED
        return SubjectHealth.HEALTHY

    def _update_health(self, subject: _Subject) -> None:
        new = self._compute_health(subject)
        if new is subject.health:
            return
        self.events.record(
            self.clock.now_s,
            subject.name,
            "health-changed",
            previous=subject.health.value,
            health=new.value,
        )
        subject.health = new
        # 0 = healthy, 1 = degraded, 2 = failed.
        health_levels = {
            SubjectHealth.HEALTHY: 0,
            SubjectHealth.DEGRADED: 1,
            SubjectHealth.FAILED: 2,
        }
        self._obs.gauge_set(
            "supervisor_subject_health_level",
            health_levels[new],
            labels={"subject": subject.name},
            help_text="Coarse subject health (0 healthy, 1 degraded, "
            "2 failed).",
        )
