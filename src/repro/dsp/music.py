"""Root-MUSIC frequency estimation for multi-person breathing monitoring.

FFT-based estimation cannot separate breathing rates closer than the Rayleigh
limit of the observation window, which is why the paper's Fig. 8 shows three
persons collapsing into two spectral peaks.  Root-MUSIC is a subspace method:
it models the series as a sum of complex exponentials in noise, splits the
sample covariance into signal and noise subspaces, and reads the frequencies
off the roots of the noise-subspace polynomial — resolution is then set by
SNR, not window length (Rao & Hari, 1989; paper Section III-C2).

The estimator here follows the paper's construction: the 30 calibrated
subcarrier series act as independent snapshots of the same breathing
frequencies, their Hankel (temporally smoothed) covariances are averaged, a
forward–backward average symmetrizes the result, and the classic root-MUSIC
polynomial step extracts the frequencies.  Real-valued input is first mapped
to its analytic signal so each breathing component is a single complex
exponential rather than a conjugate pair.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import hilbert

from ..contracts import ComplexArray, FloatArray
from ..errors import ConfigurationError, EstimationError, SignalTooShortError

__all__ = [
    "hankel_snapshots",
    "sample_covariance",
    "forward_backward_average",
    "noise_subspace",
    "root_music_frequencies",
    "estimate_frequencies",
]


def hankel_snapshots(x: FloatArray | ComplexArray, order: int) -> FloatArray | ComplexArray:
    """Stack sliding windows of ``x`` into an ``order × K`` snapshot matrix.

    Temporal smoothing: each length-``order`` window of the series is one
    snapshot vector, giving ``K = len(x) - order + 1`` snapshots.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ConfigurationError(f"expected a 1-D series, got shape {x.shape}")
    if order < 2:
        raise ConfigurationError(f"subspace order must be >= 2, got {order}")
    if x.size < order + 1:
        raise SignalTooShortError(order + 1, x.size, "root-MUSIC input")
    return np.lib.stride_tricks.sliding_window_view(x, order).T.copy()


def sample_covariance(channels: FloatArray | ComplexArray, order: int) -> ComplexArray:
    """Averaged smoothed covariance across one or more channels.

    Args:
        channels: Either a single 1-D complex series or a 2-D array of shape
            ``(n_samples, n_channels)`` — e.g. the 30 subcarrier series —
            each of which contributes its Hankel snapshots.
        order: Covariance dimension m (the MUSIC subspace order).

    Returns:
        The ``m × m`` Hermitian sample covariance.
    """
    channels = np.asarray(channels)
    if channels.ndim == 1:
        channels = channels[:, None]
    if channels.ndim != 2:
        raise ConfigurationError(
            f"channels must be 1-D or 2-D, got shape {channels.shape}"
        )
    n_samples, n_channels = channels.shape
    cov = np.zeros((order, order), dtype=complex)
    total = 0
    for c in range(n_channels):
        snapshots = hankel_snapshots(channels[:, c], order)
        cov += snapshots @ snapshots.conj().T
        total += snapshots.shape[1]
    return cov / total


def forward_backward_average(cov: ComplexArray) -> ComplexArray:
    """Forward–backward averaging ``(R + J R* J) / 2``.

    Doubles the effective snapshot count and enforces the persymmetric
    structure expected of a covariance of stationary exponentials, which
    noticeably stabilizes the noise subspace for short windows.
    """
    cov = np.asarray(cov)
    if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
        raise ConfigurationError(f"covariance must be square, got {cov.shape}")
    exchange = np.eye(cov.shape[0])[::-1]
    return 0.5 * (cov + exchange @ cov.conj() @ exchange)


def noise_subspace(cov: ComplexArray, n_sources: int) -> ComplexArray:
    """Eigenvectors spanning the noise subspace of ``cov``.

    Returns the ``m × (m - n_sources)`` matrix of eigenvectors associated
    with the smallest eigenvalues.
    """
    cov = np.asarray(cov)
    m = cov.shape[0]
    if not 1 <= n_sources < m:
        raise ConfigurationError(
            f"n_sources must be in [1, {m - 1}] for an order-{m} covariance, "
            f"got {n_sources}"
        )
    eigenvalues, eigenvectors = np.linalg.eigh(cov)
    # eigh sorts ascending, so the first m - n_sources columns are noise.
    return eigenvectors[:, : m - n_sources]


def root_music_frequencies(
    cov: ComplexArray,
    n_sources: int,
    sample_rate_hz: float,
    *,
    band: tuple[float, float] | None = None,
    n_candidates: int | None = None,
) -> FloatArray:
    """Frequencies (Hz) from the roots of the noise-subspace polynomial.

    The polynomial ``p(z) = Σ_l q_l z^{m-1+l}`` with ``q_l`` the sum of the
    l-th diagonal of ``E_n E_nᴴ`` has 2(m−1) roots in conjugate-reciprocal
    pairs; the signal frequencies are the angles of the ``n_sources`` roots
    inside (and closest to) the unit circle, optionally restricted to
    ``band``.

    Args:
        n_candidates: Return up to this many near-circle in-band roots
            instead of exactly ``n_sources`` — callers can then re-rank the
            surplus candidates by signal energy (spurious roots can sit
            close to the circle while carrying negligible power).

    Raises:
        EstimationError: If no admissible roots fall inside the band.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    en = noise_subspace(cov, n_sources)
    projector = en @ en.conj().T
    m = projector.shape[0]
    # q[l + m - 1] = trace of the l-th diagonal, l in [-(m-1), m-1].
    coefficients = np.array(
        [np.trace(projector, offset=l) for l in range(m - 1, -m, -1)]
    )
    roots = np.roots(coefficients)
    inside = roots[np.abs(roots) <= 1.0]
    if inside.size == 0:
        raise EstimationError("root-MUSIC polynomial has no roots inside the circle")

    freqs = np.angle(inside) * sample_rate_hz / (2.0 * np.pi)
    closeness = np.abs(1.0 - np.abs(inside))
    admissible = freqs > 0
    if band is not None:
        lo, hi = band
        if lo < 0 or hi <= lo:
            raise ConfigurationError(f"band must satisfy 0 <= lo < hi, got {band}")
        admissible &= (freqs >= lo) & (freqs <= hi)
    if not admissible.any():
        raise EstimationError(f"no root-MUSIC roots inside the band {band}")
    idx = np.flatnonzero(admissible)
    ordered = idx[np.argsort(closeness[idx])]
    keep = n_candidates if n_candidates is not None else n_sources
    chosen = ordered[:keep]
    return np.sort(freqs[chosen])


def estimate_frequencies(
    channels: FloatArray,
    n_sources: int,
    sample_rate_hz: float,
    *,
    order: int | None = None,
    band: tuple[float, float] | None = None,
    analytic: bool = True,
    decimation: int = 1,
    extra_signal_dims: int = 2,
    suppress_harmonics: bool = True,
    harmonic_tolerance_hz: float = 0.02,
) -> FloatArray:
    """End-to-end root-MUSIC estimate from one or many real-valued series.

    Args:
        channels: 1-D series or ``(n_samples, n_channels)`` matrix (the
            paper's H of Eq. 12, one column per subcarrier).
        n_sources: Number of frequencies to recover (= number of persons).
        sample_rate_hz: Sample rate of the series in Hz.
        order: Subspace order m; defaults to ``min(n_samples // 3, 48)``
            but never less than ``2 · n_sources + 2``.
        band: Optional admissible frequency band in Hz.
        analytic: Convert real input to its analytic signal first, so each
            sinusoid contributes one exponential instead of a conjugate pair.
        decimation: Keep every n-th sample *after* the analytic-signal step.
            Breathing rates live far below the 20 Hz processing rate, so the
            phase advance per sample is tiny; decimating stretches the
            subspace aperture and sharply improves the resolution of close
            rates (requires ``analytic=True`` to avoid aliasing real input).
        extra_signal_dims: Signal-subspace head-room beyond ``n_sources``.
            The phase of a multipath sum is a *nonlinear* function of each
            chest displacement, so the measured series carries harmonics and
            intermodulation products of the breathing rates; reserving extra
            dimensions keeps them out of the noise subspace.
        suppress_harmonics: Drop a candidate whose frequency matches twice a
            stronger candidate, or the sum of two stronger candidates,
            within ``harmonic_tolerance_hz`` — those are mixing products,
            not persons.  (Limitation shared with the paper: a real subject
            breathing at exactly twice another's rate is indistinguishable
            from a harmonic.)
        harmonic_tolerance_hz: Matching tolerance for the suppression rule.

    Returns:
        ``n_sources`` frequencies in Hz, sorted ascending (fewer if some
        roots were inadmissible).
    """
    channels = np.asarray(channels, dtype=float)
    if channels.ndim == 1:
        channels = channels[:, None]
    if decimation < 1:
        raise ConfigurationError(f"decimation must be >= 1, got {decimation}")
    data = channels - channels.mean(axis=0, keepdims=True)
    if analytic:
        data = hilbert(data, axis=0)
    elif decimation > 1:
        raise ConfigurationError(
            "decimation of real (non-analytic) input would alias; "
            "set analytic=True"
        )
    data = data[::decimation]
    effective_rate = sample_rate_hz / decimation
    n_samples = data.shape[0]
    n_model = n_sources + max(0, extra_signal_dims)
    if order is None:
        order = min(max(2 * n_model + 2, n_samples // 3), 48)
    if order <= n_model + 1:
        raise ConfigurationError(
            f"subspace order ({order}) must exceed the model order "
            f"({n_model}) + 1 for a usable noise subspace"
        )
    cov = forward_backward_average(sample_covariance(data, order))
    candidates = root_music_frequencies(
        cov,
        n_model,
        effective_rate,
        band=band,
        n_candidates=min(2 * n_model + 2, order - 1),
    )
    if candidates.size <= n_sources and not suppress_harmonics:
        return candidates
    return _select_candidates(
        data,
        candidates,
        effective_rate,
        n_sources,
        suppress_harmonics=suppress_harmonics,
        tolerance_hz=harmonic_tolerance_hz,
    )


def _select_candidates(
    data: ComplexArray,
    candidates: FloatArray,
    sample_rate_hz: float,
    n_sources: int,
    *,
    suppress_harmonics: bool,
    tolerance_hz: float,
) -> FloatArray:
    """Rank candidate frequencies by energy and drop mixing products.

    A spurious root can sit as close to the unit circle as a real one while
    explaining almost none of the signal, so candidates are least-squares
    fitted to the (analytic, decimated) data and ranked by amplitude.  With
    ``suppress_harmonics`` a candidate matching 2× a stronger accepted
    frequency — or the sum of two stronger accepted frequencies — is
    rejected as an intermodulation product of the phase nonlinearity.
    """
    if candidates.size == 0:
        return candidates
    t = np.arange(data.shape[0]) / sample_rate_hz
    basis = np.exp(2j * np.pi * np.outer(t, candidates))
    amplitudes, *_ = np.linalg.lstsq(basis, data, rcond=None)
    power = np.mean(np.abs(amplitudes), axis=1)
    ranked = list(np.argsort(power)[::-1])

    accepted: list[int] = []
    skipped: list[int] = []
    for idx in ranked:
        if len(accepted) == n_sources:
            break
        f = candidates[idx]
        if suppress_harmonics and _is_mixing_product(
            f, [candidates[a] for a in accepted], tolerance_hz
        ):
            skipped.append(idx)
            continue
        accepted.append(idx)
    # Backfill from skipped candidates if suppression was too aggressive.
    for idx in skipped:
        if len(accepted) == n_sources:
            break
        accepted.append(idx)
    return np.sort(candidates[sorted(accepted)])


def _is_mixing_product(
    frequency_hz: float, accepted: list[float], tolerance_hz: float
) -> bool:
    for f1 in accepted:
        if abs(frequency_hz - 2.0 * f1) <= tolerance_hz:
            return True
        for f2 in accepted:
            if abs(frequency_hz - (f1 + f2)) <= tolerance_hz:
                return True
    return False
