"""Hampel filtering, used by PhaseBeat for detrending and denoising.

The classic Hampel filter slides a window over the series, computes the local
median and the local median absolute deviation (MAD), and replaces any sample
farther than ``threshold`` robust standard deviations from the local median
with that median.

PhaseBeat (Section III-B2) uses the filter twice, both with a *tiny*
threshold of 0.01 so that essentially every sample is replaced by its local
median:

* window 2000 samples @ 400 Hz (5 s) → the output is the slow *trend* of the
  series; subtracting it removes the DC component (detrending);
* window 50 samples (0.125 s) → the output is a median-smoothed series with
  high-frequency noise removed (denoising).

Both uses are exposed here: :func:`hampel_filter` is the generic filter and
:func:`rolling_median` / :func:`rolling_mad` are the building blocks.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import median_filter

from ..contracts import FloatArray
from ..errors import ConfigurationError
from .stats import MAD_TO_SIGMA

__all__ = ["rolling_median", "rolling_mad", "hampel_filter", "hampel_trend"]


def _validate_window(x: FloatArray, window: int) -> FloatArray:
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ConfigurationError(
            f"Hampel filtering expects a 1-D series, got shape {x.shape}"
        )
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    return x


def rolling_median(x: FloatArray, window: int) -> FloatArray:
    """Centered rolling median with edge replication.

    The window is clipped at the signal edges (``mode='nearest'``), so the
    first and last samples are medians of partially replicated windows rather
    than zero-padded ones — zero padding would fabricate a trend step at the
    boundaries, which then leaks into the detrended vital-sign band.
    """
    x = _validate_window(x, window)
    window = min(window, x.size)
    return median_filter(x, size=window, mode="nearest")


def rolling_mad(
    x: FloatArray, window: int, *, median: FloatArray | None = None
) -> FloatArray:
    """Centered rolling median absolute deviation (about the rolling median).

    Args:
        x: 1-D input series.
        window: Window length in samples.
        median: The rolling median of ``x`` over the same window, when the
            caller has already computed it (as :func:`hampel_filter` has);
            omitted, it is recomputed here.

    Returns:
        The rolling MAD series, same shape as ``x``.
    """
    med = rolling_median(x, window) if median is None else np.asarray(
        median, dtype=float
    )
    return rolling_median(np.abs(np.asarray(x, dtype=float) - med), window)


def hampel_filter(
    x: FloatArray,
    window: int,
    threshold: float,
    *,
    scale: float = MAD_TO_SIGMA,
) -> FloatArray:
    """Apply a Hampel filter and return the filtered series.

    A sample ``x[i]`` is replaced by the local median ``m[i]`` when
    ``|x[i] - m[i]| > threshold * scale * mad[i]``.  With the paper's
    ``threshold=0.01`` virtually every sample fails the test, so the output
    collapses to the rolling median — that degenerate regime is exactly how
    PhaseBeat extracts trends and smooths noise.

    Args:
        x: 1-D input series.
        window: Window length in samples.
        threshold: Number of robust standard deviations beyond which a sample
            is declared an outlier and replaced.
        scale: MAD-to-sigma factor (Gaussian-consistent by default).

    Returns:
        The filtered series, same shape as ``x``.
    """
    x = _validate_window(x, window)
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    med = rolling_median(x, window)
    mad = rolling_mad(x, window, median=med)
    outlier = np.abs(x - med) > threshold * scale * mad
    out = x.copy()
    out[outlier] = med[outlier]
    return out


def hampel_trend(x: FloatArray, window: int, threshold: float = 0.01) -> FloatArray:
    """Trend of the series as PhaseBeat computes it (large-window Hampel).

    Equivalent to :func:`hampel_filter` with the paper's large window and
    small threshold; split out so calibration code reads as
    ``x - hampel_trend(x, 2000)``.
    """
    return hampel_filter(x, window, threshold)
