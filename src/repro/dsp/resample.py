"""Resampling: decimation for the calibration stage, reclocking for faults.

PhaseBeat captures packets at 400 Hz and, after smoothing, keeps every 20th
sample to obtain a 20 Hz series (Section III-B2).  Plain decimation is safe
*only because* the Hampel denoising stage has already removed energy above
the new Nyquist rate; :func:`decimate` therefore also offers an optional
anti-alias guard for callers that decimate unsmoothed data.

Both decimation and every FFT/DWT stage downstream additionally assume the
samples are *uniformly spaced in time*.  A real frame capture violates that
the moment a packet drops: index-based decimation then warps the time axis
and every spectral estimate lands at the wrong frequency.  :func:`reclock`
is the repair step — it maps a series with irregular (lossy, jittered, even
glitched) timestamps onto a uniform grid by linear interpolation, flagging
the samples it had to fabricate inside long gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import decimate as _scipy_decimate

from ..contracts import BoolArray, FloatArray
from ..errors import ConfigurationError, DataGapError, SignalTooShortError
from ..obs import NULL_INSTRUMENTATION, Instrumentation

__all__ = ["ReclockedSeries", "decimate", "downsampled_rate", "reclock"]

# Histogram bounds for gap fractions (dimensionless, 0..1).
_FRACTION_BUCKETS = (0.0, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0)


def decimate(
    x: FloatArray, factor: int, *, anti_alias: bool = False, axis: int = 0
) -> FloatArray:
    """Keep every ``factor``-th sample of ``x`` along ``axis``.

    Args:
        x: Input array.
        factor: Decimation factor (the paper uses 20).
        anti_alias: When True, apply a zero-phase low-pass filter before
            decimating (via :func:`scipy.signal.decimate`) instead of raw
            slicing.  PhaseBeat's pipeline leaves this False because the
            Hampel denoiser has already band-limited the series.
        axis: Axis along which to decimate.

    Returns:
        The decimated array.
    """
    if factor < 1:
        raise ConfigurationError(f"decimation factor must be >= 1, got {factor}")
    x = np.asarray(x, dtype=float)
    if factor == 1:
        return x.copy()
    if x.shape[axis] < factor:
        raise ConfigurationError(
            f"cannot decimate {x.shape[axis]} samples by a factor of {factor}"
        )
    if anti_alias:
        return _scipy_decimate(x, factor, axis=axis, zero_phase=True)
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(None, None, factor)
    return x[tuple(slicer)].copy()


@dataclass(frozen=True)
class ReclockedSeries:
    """Output of :func:`reclock`.

    Attributes:
        series: Samples on the uniform grid, shape ``(n_out, ...)``.
        times_s: The uniform grid itself, shape ``(n_out,)``.
        sample_rate_hz: Grid rate (the requested target rate).
        gap_mask: Boolean ``(n_out,)``; True where the output sample lies
            inside an input gap longer than ``gap_flag_s`` — i.e. where the
            value is an interpolation across missing data, not a measurement.
        n_dropped: Input samples discarded for non-finite or backward
            timestamps before interpolation.
    """

    series: FloatArray
    times_s: FloatArray
    sample_rate_hz: float
    gap_mask: BoolArray
    n_dropped: int

    @property
    def gap_fraction(self) -> float:
        """Fraction of output samples fabricated inside gaps."""
        return float(self.gap_mask.mean()) if self.gap_mask.size else 0.0


def reclock(
    x: FloatArray,
    timestamps_s: FloatArray,
    target_rate_hz: float,
    *,
    max_gap_s: float | None = None,
    gap_flag_s: float | None = None,
    instrumentation: Instrumentation | None = None,
) -> ReclockedSeries:
    """Interpolate irregularly-timestamped samples onto a uniform grid.

    The fault-tolerant front door for everything downstream that assumes
    uniform sampling (decimation, Hampel windows in seconds, DWT, FFT).
    Samples with non-finite or backward timestamps (clock glitches) are
    dropped first, then the remaining series is linearly interpolated at
    ``target_rate_hz`` over its own span.

    Args:
        x: Input samples, shape ``(n, ...)`` with time along axis 0
            (real-valued; interpolate phase series, not raw complex CSI).
        timestamps_s: Per-sample capture times, shape ``(n,)``.
        target_rate_hz: Rate of the output grid.
        max_gap_s: When given, raise :class:`DataGapError` if any
            inter-sample gap exceeds this budget instead of interpolating
            across it.
        gap_flag_s: Gap length above which output samples inside the gap
            are flagged in ``gap_mask``; defaults to three target-grid
            intervals.
        instrumentation: Optional :class:`repro.obs.Instrumentation`;
            records the ``dsp.reclock`` stage duration, samples dropped,
            and the fabricated-gap fraction.

    Returns:
        A :class:`ReclockedSeries`.

    Raises:
        ConfigurationError: Bad rate or mismatched shapes.
        SignalTooShortError: Fewer than two usable samples survive.
        DataGapError: A gap exceeds ``max_gap_s``.
    """
    obs = instrumentation if instrumentation is not None else NULL_INSTRUMENTATION
    with obs.stage("reclock", component="dsp"):
        result = _reclock(
            x, timestamps_s, target_rate_hz,
            max_gap_s=max_gap_s, gap_flag_s=gap_flag_s,
        )
    obs.count(
        "dsp_reclock_dropped_samples_total",
        amount=result.n_dropped,
        help_text="Input samples dropped for non-finite/backward timestamps.",
    )
    obs.observe(
        "dsp_reclock_gap_fraction",
        result.gap_fraction,
        help_text="Fraction of output samples fabricated inside input gaps.",
        bucket_bounds=_FRACTION_BUCKETS,
    )
    return result


def _reclock(
    x: FloatArray,
    timestamps_s: FloatArray,
    target_rate_hz: float,
    *,
    max_gap_s: float | None = None,
    gap_flag_s: float | None = None,
) -> ReclockedSeries:
    if target_rate_hz <= 0:
        raise ConfigurationError(
            f"target rate must be positive, got {target_rate_hz}"
        )
    x = np.asarray(x, dtype=float)
    t = np.asarray(timestamps_s, dtype=float).ravel()
    if x.shape[0] != t.size:
        raise ConfigurationError(
            f"{x.shape[0]} samples but {t.size} timestamps"
        )

    # Drop clock-glitch victims: non-finite stamps, then anything that does
    # not advance past the running maximum (a backward jump re-covers time
    # that was already measured; the first measurement wins).
    keep = np.isfinite(t)
    t_f = np.where(keep, t, -np.inf)
    running = np.maximum.accumulate(t_f)
    advances = np.empty(t.size, dtype=bool)
    advances[:1] = True
    advances[1:] = t_f[1:] > running[:-1]
    keep &= advances
    n_dropped = int(t.size - keep.sum())
    t = t[keep]
    x = x[keep]
    if t.size < 2:
        raise SignalTooShortError(2, int(t.size), what="reclock input")

    gaps = np.diff(t)
    if max_gap_s is not None and gaps.size and gaps.max() > max_gap_s:
        k = int(np.argmax(gaps))
        raise DataGapError(float(gaps[k]), max_gap_s, at_s=float(t[k]))

    interval = 1.0 / target_rate_hz
    n_out = int(np.floor((t[-1] - t[0]) * target_rate_hz)) + 1
    grid = t[0] + np.arange(n_out) * interval

    # Vectorized linear interpolation across all columns at once (the
    # per-column ``np.interp`` loop this replaces dominated reclock cost on
    # wide matrices).  The grid lies inside [t[0], t[-1]] by construction,
    # so no extrapolation clamp is needed beyond the index clip; grid
    # points that coincide with an input stamp get that sample exactly
    # (weight 0 against the left sample).
    flat = x.reshape(x.shape[0], -1)
    left = np.clip(np.searchsorted(t, grid, side="right") - 1, 0, t.size - 2)
    t0 = t[left]
    weight = ((grid - t0) / (t[left + 1] - t0))[:, np.newaxis]
    y0 = flat[left]
    out = y0 + weight * (flat[left + 1] - y0)
    series = out.reshape((n_out,) + x.shape[1:])

    if gap_flag_s is None:
        gap_flag_s = 3.0 * interval
    # An output sample falls in input interval [t[j-1], t[j]] with
    # j = searchsorted(t, grid); flag it when that interval is a long gap.
    j = np.clip(np.searchsorted(t, grid), 1, t.size - 1)
    gap_mask = gaps[j - 1] > gap_flag_s

    return ReclockedSeries(
        series=series,
        times_s=grid,
        sample_rate_hz=float(target_rate_hz),
        gap_mask=gap_mask,
        n_dropped=n_dropped,
    )


def downsampled_rate(sample_rate_hz: float, factor: int) -> float:
    """Sample rate after decimating by ``factor`` (400 Hz / 20 → 20 Hz)."""
    if factor < 1:
        raise ConfigurationError(f"decimation factor must be >= 1, got {factor}")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    return sample_rate_hz / factor
