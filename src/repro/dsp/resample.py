"""Downsampling for the calibration stage.

PhaseBeat captures packets at 400 Hz and, after smoothing, keeps every 20th
sample to obtain a 20 Hz series (Section III-B2).  Plain decimation is safe
*only because* the Hampel denoising stage has already removed energy above
the new Nyquist rate; :func:`decimate` therefore also offers an optional
anti-alias guard for callers that decimate unsmoothed data.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import decimate as _scipy_decimate

from ..errors import ConfigurationError

__all__ = ["decimate", "downsampled_rate"]


def decimate(
    x: np.ndarray, factor: int, *, anti_alias: bool = False, axis: int = 0
) -> np.ndarray:
    """Keep every ``factor``-th sample of ``x`` along ``axis``.

    Args:
        x: Input array.
        factor: Decimation factor (the paper uses 20).
        anti_alias: When True, apply a zero-phase low-pass filter before
            decimating (via :func:`scipy.signal.decimate`) instead of raw
            slicing.  PhaseBeat's pipeline leaves this False because the
            Hampel denoiser has already band-limited the series.
        axis: Axis along which to decimate.

    Returns:
        The decimated array.
    """
    if factor < 1:
        raise ConfigurationError(f"decimation factor must be >= 1, got {factor}")
    x = np.asarray(x, dtype=float)
    if factor == 1:
        return x.copy()
    if x.shape[axis] < factor:
        raise ConfigurationError(
            f"cannot decimate {x.shape[axis]} samples by a factor of {factor}"
        )
    if anti_alias:
        return _scipy_decimate(x, factor, axis=axis, zero_phase=True)
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(None, None, factor)
    return x[tuple(slicer)].copy()


def downsampled_rate(sample_rate: float, factor: int) -> float:
    """Sample rate after decimating by ``factor`` (400 Hz / 20 → 20 Hz)."""
    if factor < 1:
        raise ConfigurationError(f"decimation factor must be >= 1, got {factor}")
    if sample_rate <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate}")
    return sample_rate / factor
