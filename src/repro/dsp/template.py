"""Cycle-synchronous template subtraction.

The phase of a multipath sum is a nonlinear function of the chest
displacement, so the breathing signal enters the phase difference together
with a comb of harmonics — all of them *phase-locked to the breathing
cycle*.  Folding the series by the breathing period and averaging yields
the per-cycle waveform template (fundamental + every harmonic, whatever the
comb's strength); subtracting the template leaves components that are not
locked to breathing — the heartbeat, and noise.

This is the classical synchronous-averaging trick of rotating-machinery
diagnostics, applied here to make the weak heart peak visible under strong
breathing harmonics.
"""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError, SignalTooShortError

__all__ = ["fold_cycle_template", "subtract_cycle_template"]


def fold_cycle_template(
    signal: FloatArray,
    sample_rate_hz: float,
    fundamental_hz: float,
    *,
    n_bins: int = 40,
    smooth_bins: int = 3,
) -> tuple[FloatArray, FloatArray]:
    """Average waveform over one cycle of ``fundamental_hz``.

    Args:
        signal: 1-D series.
        sample_rate_hz: Its sample rate.
        fundamental_hz: The folding frequency (the estimated breathing
            rate).  Accuracy matters: a frequency error of δf smears the
            template by δf·T cycles over a T-second window.
        n_bins: Phase bins per cycle.
        smooth_bins: Circular moving-average width applied to the template
            (odd; 1 disables smoothing).

    Returns:
        ``(bin_phases, template)`` — bin centers in [0, 1) cycle units and
        the averaged waveform per bin.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ConfigurationError(f"expected a 1-D series, got {signal.shape}")
    if sample_rate_hz <= 0 or fundamental_hz <= 0:
        raise ConfigurationError("rates must be positive")
    if n_bins < 4:
        raise ConfigurationError(f"n_bins must be >= 4, got {n_bins}")
    cycles = signal.size * fundamental_hz / sample_rate_hz
    if cycles < 2.0:
        raise SignalTooShortError(
            int(np.ceil(2.0 * sample_rate_hz / fundamental_hz)),
            signal.size,
            "cycle-folding input",
        )
    t = np.arange(signal.size) / sample_rate_hz
    phase = np.mod(t * fundamental_hz, 1.0)
    bins = np.minimum((phase * n_bins).astype(int), n_bins - 1)

    template = np.zeros(n_bins)
    counts = np.bincount(bins, minlength=n_bins)
    sums = np.bincount(bins, weights=signal, minlength=n_bins)
    nonzero = counts > 0
    template[nonzero] = sums[nonzero] / counts[nonzero]
    # Fill any empty bin from its circular neighbours.
    if not nonzero.all():
        filled = np.flatnonzero(nonzero)
        for i in np.flatnonzero(~nonzero):
            nearest = filled[np.argmin(np.minimum(
                np.abs(filled - i), n_bins - np.abs(filled - i)
            ))]
            template[i] = template[nearest]
    if smooth_bins > 1:
        kernel = np.ones(smooth_bins) / smooth_bins
        template = np.convolve(
            np.concatenate([template[-(smooth_bins // 2):], template,
                            template[: smooth_bins // 2]]),
            kernel,
            mode="valid",
        )
    bin_phases = (np.arange(n_bins) + 0.5) / n_bins
    return bin_phases, template


def subtract_cycle_template(
    signal: FloatArray,
    sample_rate_hz: float,
    fundamental_hz: float,
    *,
    n_bins: int = 40,
) -> FloatArray:
    """Remove the cycle-locked component of ``signal``.

    Folds the series by ``fundamental_hz``, builds the cycle template, and
    subtracts it (linearly interpolated in phase) from every sample.  All
    harmonics of the fundamental are removed together with it; components
    at incommensurate frequencies are untouched up to 1/n_cycles leakage.
    """
    signal = np.asarray(signal, dtype=float)
    bin_phases, template = fold_cycle_template(
        signal, sample_rate_hz, fundamental_hz, n_bins=n_bins
    )
    t = np.arange(signal.size) / sample_rate_hz
    phase = np.mod(t * fundamental_hz, 1.0)
    # Circular linear interpolation of the template at each sample's phase.
    extended_phase = np.concatenate([
        [bin_phases[-1] - 1.0], bin_phases, [bin_phases[0] + 1.0]
    ])
    extended_template = np.concatenate([
        [template[-1]], template, [template[0]]
    ])
    locked = np.interp(phase, extended_phase, extended_template)
    return signal - locked
