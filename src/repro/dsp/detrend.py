"""Detrending helpers built on the Hampel trend extractor."""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray
from .hampel import hampel_filter, hampel_trend

__all__ = ["remove_dc", "hampel_detrend", "hampel_denoise"]


def remove_dc(x: FloatArray, axis: int = 0) -> FloatArray:
    """Subtract the mean along ``axis`` (the crude DC-removal baseline)."""
    x = np.asarray(x, dtype=float)
    return x - x.mean(axis=axis, keepdims=True)


def hampel_detrend(
    x: FloatArray, window: int = 2000, threshold: float = 0.01
) -> FloatArray:
    """Remove the slow trend: ``x - hampel_trend(x, window)``.

    The paper's DC-removal step (Section III-B2): the large-window Hampel
    filter tracks the drifting baseline of the phase-difference series, and
    subtracting it leaves the zero-mean vital-sign oscillation.
    """
    return np.asarray(x, dtype=float) - hampel_trend(x, window, threshold)


def hampel_denoise(
    x: FloatArray, window: int = 50, threshold: float = 0.01
) -> FloatArray:
    """Suppress high-frequency noise with the small-window Hampel filter."""
    return hampel_filter(x, window, threshold)
