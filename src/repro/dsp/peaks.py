"""Sliding-window peak detection for the single-person breathing estimator.

The DWT approximation coefficient still contains *fake peaks* — local maxima
produced by residual noise rather than by breathing cycles.  PhaseBeat
(Section III-C1) rejects them with a sliding window sized to the maximum
human breathing period (51 samples at 20 Hz ≈ 2.5 s half-window): a candidate
is a true peak only if it dominates every other sample in its window.

:func:`find_peaks` implements that rule plus an optional prominence floor,
and :func:`mean_peak_interval` turns the surviving peaks into a breathing
period estimate.
"""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray, IntArray
from ..errors import ConfigurationError, EstimationError

__all__ = [
    "find_peaks",
    "mean_peak_interval",
    "peak_rate_bpm",
    "robust_peak_interval",
]


def find_peaks(
    x: FloatArray,
    window: int = 51,
    *,
    min_prominence: float = 0.0,
) -> IntArray:
    """Indices of true peaks under the sliding-window dominance rule.

    A sample ``x[i]`` is a peak when it is strictly greater than its
    immediate neighbours and is the maximum of the centered window of
    ``window`` samples around it (clipped at the edges).  Setting
    ``min_prominence`` additionally requires the peak to rise at least that
    far above the window median, which suppresses ripples on a flat series.

    Args:
        x: 1-D series (typically the DWT approximation coefficient α₄).
        window: Full window length in samples; the paper uses 51.
        min_prominence: Minimum height above the local window median.

    Returns:
        Sorted integer indices of the detected peaks (possibly empty).
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ConfigurationError(f"find_peaks expects a 1-D series, got {x.shape}")
    if window < 3:
        raise ConfigurationError(f"window must be >= 3, got {window}")
    n = x.size
    if n < 3:
        return np.empty(0, dtype=int)
    half = window // 2

    interior = np.flatnonzero((x[1:-1] > x[:-2]) & (x[1:-1] >= x[2:])) + 1
    peaks = []
    for i in interior:
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        segment = x[lo:hi]
        if x[i] < segment.max():
            continue
        if min_prominence > 0.0 and x[i] - np.median(segment) < min_prominence:
            continue
        peaks.append(i)

    if len(peaks) < 2:
        return np.asarray(peaks, dtype=int)
    # The dominance rule can keep two samples of one wide crest (plateaus and
    # equal maxima inside overlapping windows); enforce a minimum separation
    # of half a window, keeping the taller of any colliding pair.
    kept: list[int] = []
    for i in peaks:
        if kept and i - kept[-1] < half:
            if x[i] > x[kept[-1]]:
                kept[-1] = i
        else:
            kept.append(i)
    return np.asarray(kept, dtype=int)


def robust_peak_interval(
    peaks: IntArray,
    sample_rate_hz: float,
    *,
    trim_band: tuple[float, float] = (0.6, 1.4),
) -> float:
    """Mean peak-to-peak interval after trimming outlier intervals.

    A single fake (or missed) peak injects one or two wildly short (long)
    intervals that drag the plain mean; trimming every interval outside
    ``trim_band`` × the median interval before averaging removes exactly
    those, while leaving the honest jitter of real breathing untouched.

    Args:
        peaks: Sorted peak indices from :func:`find_peaks`.
        sample_rate_hz: Sample rate of the series the peaks index into (Hz).
        trim_band: Multiplicative (low, high) band around the median
            interval that survives trimming.

    Returns:
        The trimmed-mean interval in seconds.

    Raises:
        EstimationError: If fewer than two peaks were supplied.
    """
    peaks = np.asarray(peaks)
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    if peaks.size < 2:
        raise EstimationError(
            f"need at least two peaks to measure a period, got {peaks.size}"
        )
    intervals = np.diff(peaks).astype(float)
    median = float(np.median(intervals))
    lo, hi = trim_band
    kept = intervals[(intervals >= lo * median) & (intervals <= hi * median)]
    if kept.size == 0:
        kept = intervals
    return float(np.mean(kept) / sample_rate_hz)


def mean_peak_interval(peaks: IntArray, sample_rate_hz: float) -> float:
    """Average peak-to-peak interval in seconds.

    Args:
        peaks: Sorted peak indices from :func:`find_peaks`.
        sample_rate_hz: Sample rate of the series the peaks index into (Hz).

    Returns:
        The mean interval between consecutive peaks, in seconds.

    Raises:
        EstimationError: If fewer than two peaks were supplied.
    """
    peaks = np.asarray(peaks)
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    if peaks.size < 2:
        raise EstimationError(
            f"need at least two peaks to measure a period, got {peaks.size}"
        )
    return float(np.mean(np.diff(peaks)) / sample_rate_hz)


def peak_rate_bpm(peaks: IntArray, sample_rate_hz: float) -> float:
    """Rate in beats (breaths) per minute: ``60 / mean interval``."""
    return 60.0 / mean_peak_interval(peaks, sample_rate_hz)
