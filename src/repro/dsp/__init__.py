"""Signal-processing substrate for the PhaseBeat reproduction.

Everything in this package is WiFi-agnostic: robust statistics, Hampel
filtering, decimation, peak detection, FFT helpers, a from-scratch Daubechies
DWT, and root-MUSIC.  The :mod:`repro.core` pipeline composes these into the
paper's processing chain.
"""

from .detrend import hampel_denoise, hampel_detrend, remove_dc
from .fft_utils import (
    dominant_frequency,
    fundamental_frequency,
    magnitude_spectrum,
    quadratic_peak_interpolation,
    spectral_peaks,
    three_bin_phase_frequency,
)
from .hampel import hampel_filter, hampel_trend, rolling_mad, rolling_median
from .music import estimate_frequencies as root_music_estimate
from .peaks import find_peaks, mean_peak_interval, peak_rate_bpm
from .resample import ReclockedSeries, decimate, downsampled_rate, reclock
from .stft import Spectrogram, stft_bandpass, stft_spectrogram, track_rate
from .stats import (
    angular_sector_width,
    circular_mean,
    circular_resultant_length,
    circular_std,
    circular_variance,
    mean_absolute_deviation,
    median_absolute_deviation,
)
from .wavelet import (
    Wavelet,
    WaveletDecomposition,
    coefficient_band,
    daubechies_filter,
    dwt,
    dwt_max_level,
    idwt,
    make_wavelet,
    reconstruct_band,
    wavedec,
    waverec,
)

__all__ = [
    "angular_sector_width",
    "circular_mean",
    "circular_resultant_length",
    "circular_std",
    "circular_variance",
    "coefficient_band",
    "daubechies_filter",
    "decimate",
    "dominant_frequency",
    "downsampled_rate",
    "fundamental_frequency",
    "dwt",
    "dwt_max_level",
    "estimate_frequencies",
    "find_peaks",
    "hampel_denoise",
    "hampel_detrend",
    "hampel_filter",
    "hampel_trend",
    "idwt",
    "magnitude_spectrum",
    "make_wavelet",
    "mean_absolute_deviation",
    "mean_peak_interval",
    "median_absolute_deviation",
    "peak_rate_bpm",
    "quadratic_peak_interpolation",
    "reclock",
    "ReclockedSeries",
    "reconstruct_band",
    "remove_dc",
    "rolling_mad",
    "rolling_median",
    "root_music_estimate",
    "spectral_peaks",
    "Spectrogram",
    "stft_bandpass",
    "stft_spectrogram",
    "three_bin_phase_frequency",
    "track_rate",
    "wavedec",
    "waverec",
    "Wavelet",
    "WaveletDecomposition",
]

from .music import estimate_frequencies  # noqa: E402  (re-export under full name)
