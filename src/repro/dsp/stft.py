"""Short-time Fourier transform and time-frequency rate tracking.

The paper (Section III-B4) argues for the DWT over the FFT and STFT because
the DWT offers "optimal resolution both in the time and frequency domains".
To make that comparison runnable, this module provides the STFT the paper
alludes to: a windowed spectrogram, an STFT-based band filter (the direct
competitor of the DWT band split), and a ridge tracker that follows the
breathing rate over time — useful in its own right for monitoring rate
*changes* during a session.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError, SignalTooShortError

__all__ = ["Spectrogram", "stft_spectrogram", "stft_bandpass", "track_rate"]


@dataclass(frozen=True)
class Spectrogram:
    """Magnitude spectrogram with its axes.

    Attributes:
        times_s: Center time of each frame.
        freqs_hz: Frequency of each bin.
        magnitude: ``(n_freqs, n_frames)`` magnitudes.
    """

    times_s: FloatArray
    freqs_hz: FloatArray
    magnitude: FloatArray

    @property
    def n_frames(self) -> int:
        """Number of analysis frames."""
        return int(self.magnitude.shape[1])


def _frame_signal(
    x: FloatArray, frame: int, hop: int
) -> FloatArray:
    n_frames = 1 + (x.size - frame) // hop
    idx = np.arange(frame)[None, :] + hop * np.arange(n_frames)[:, None]
    return x[idx]


def stft_spectrogram(
    x: FloatArray,
    sample_rate_hz: float,
    *,
    window_s: float = 30.0,
    hop_s: float = 5.0,
    nfft: int | None = None,
) -> Spectrogram:
    """Hann-windowed magnitude spectrogram.

    Args:
        x: 1-D series (e.g. calibrated phase difference at 20 Hz).
        sample_rate_hz: Its sample rate.
        window_s: Analysis window length in seconds — the STFT's built-in
            compromise: long windows resolve close rates but smear rate
            changes; short windows do the opposite.  (The DWT sidesteps the
            choice with its dyadic multi-scale split, which is the paper's
            argument for it.)
        hop_s: Frame hop in seconds.
        nfft: FFT length per frame (zero-padded); default = frame length.

    Returns:
        A :class:`Spectrogram`.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ConfigurationError(f"expected a 1-D series, got {x.shape}")
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    if window_s <= 0 or hop_s <= 0:
        raise ConfigurationError("window and hop must be positive")
    frame = int(round(window_s * sample_rate_hz))
    hop = max(1, int(round(hop_s * sample_rate_hz)))
    if x.size < frame:
        raise SignalTooShortError(frame, x.size, "STFT input")
    n = int(nfft) if nfft is not None else frame
    if n < frame:
        raise ConfigurationError(f"nfft ({n}) shorter than the frame ({frame})")

    frames = _frame_signal(x, frame, hop)
    frames = frames - frames.mean(axis=1, keepdims=True)
    window = np.hanning(frame)
    spectrum = np.fft.rfft(frames * window[None, :], n=n, axis=1)
    times = (np.arange(frames.shape[0]) * hop + frame / 2.0) / sample_rate_hz
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate_hz)
    return Spectrogram(
        times_s=times, freqs_hz=freqs, magnitude=np.abs(spectrum).T
    )


def stft_bandpass(
    x: FloatArray,
    sample_rate_hz: float,
    band_hz: tuple[float, float],
    *,
    window_s: float = 12.8,
) -> FloatArray:
    """Band-limit a series by zeroing STFT bins outside ``band_hz``.

    Overlap-add analysis/synthesis with a Hann window at 50% overlap (COLA
    compliant), used as the STFT counterpart of the DWT band split in the
    DWT-vs-STFT ablation.

    Returns:
        The band-limited series, same length as ``x``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ConfigurationError(f"expected a 1-D series, got {x.shape}")
    lo, hi = band_hz
    if lo < 0 or hi <= lo:
        raise ConfigurationError(f"band must satisfy 0 <= lo < hi, got {band_hz}")
    frame = int(round(window_s * sample_rate_hz))
    frame += frame % 2  # even length for clean 50% overlap
    hop = frame // 2
    if x.size < frame:
        raise SignalTooShortError(frame, x.size, "STFT band-pass input")

    # Pad so overlap-add covers the edges, then trim.
    padded = np.concatenate([np.zeros(hop), x, np.zeros(frame)])
    window = np.hanning(frame + 1)[:-1]  # periodic Hann: COLA at 50% overlap
    freqs = np.fft.rfftfreq(frame, d=1.0 / sample_rate_hz)
    keep = (freqs >= lo) & (freqs <= hi)

    out = np.zeros_like(padded)
    for start in range(0, padded.size - frame + 1, hop):
        segment = padded[start : start + frame] * window
        spectrum = np.fft.rfft(segment)
        spectrum[~keep] = 0.0
        out[start : start + frame] += np.fft.irfft(spectrum, n=frame) * window
    # Hann² overlap-add at 50% hop sums to a constant 1.5 gain... actually
    # sum of hann² at 50% overlap equals 1.0 for the periodic window scaled
    # by 2/... normalize empirically by the window compensation:
    compensation = np.zeros_like(padded)
    for start in range(0, padded.size - frame + 1, hop):
        compensation[start : start + frame] += window**2
    nonzero = compensation > 1e-9
    out[nonzero] /= compensation[nonzero]
    return out[hop : hop + x.size]


def track_rate(
    x: FloatArray,
    sample_rate_hz: float,
    band_hz: tuple[float, float],
    *,
    window_s: float = 30.0,
    hop_s: float = 5.0,
    max_step_hz: float | None = None,
) -> tuple[FloatArray, FloatArray]:
    """Follow the dominant in-band frequency over time (ridge tracking).

    Per frame, the strongest spectral peak inside ``band_hz`` is taken;
    with ``max_step_hz`` set, the ridge is constrained to move at most that
    far between consecutive frames (a Viterbi-lite greedy continuity rule),
    which stops single noisy frames from teleporting the estimate.

    Returns:
        ``(times_s, rates_hz)``, one entry per frame.
    """
    spec = stft_spectrogram(
        x, sample_rate_hz, window_s=window_s, hop_s=hop_s
    )
    lo, hi = band_hz
    if lo < 0 or hi <= lo:
        raise ConfigurationError(f"band must satisfy 0 <= lo < hi, got {band_hz}")
    in_band = (spec.freqs_hz >= lo) & (spec.freqs_hz <= hi)
    if not in_band.any():
        raise ConfigurationError(f"no STFT bins inside the band {band_hz}")
    band_freqs = spec.freqs_hz[in_band]
    band_mag = spec.magnitude[in_band, :]

    rates = np.empty(spec.n_frames)
    previous: float | None = None
    for frame in range(spec.n_frames):
        column = band_mag[:, frame]
        if previous is not None and max_step_hz is not None:
            reachable = np.abs(band_freqs - previous) <= max_step_hz
            if reachable.any():
                masked = np.where(reachable, column, -np.inf)
                rates[frame] = band_freqs[int(np.argmax(masked))]
                previous = rates[frame]
                continue
        rates[frame] = band_freqs[int(np.argmax(column))]
        previous = rates[frame]
    return spec.times_s, rates
