"""Incremental sliding-window kernels for the streaming hot path.

``StreamingMonitor`` re-estimates vital signs on a hopped window: at a 30 s
window and 5 s hop, ~83% of every window was already processed on the
previous hop.  The batch pipeline recomputes everything from scratch; the
kernels in this package compute only what the hop added.

The foundation is *trailing* (causal) window semantics: the filtered value
at sample ``i`` is an order statistic of the trailing window
``[i - w + 1, i]``.  Unlike centered windows, a trailing value never changes
once computed — it is a pure function of a fixed slice of the raw series —
so a hop only has to filter the new samples, and state rebuilt from a
buffered suffix is *bit-identical* to state built incrementally.  That
purity is what makes the checkpoint/restore round-trip exact.

Modules:

* :mod:`~repro.dsp.streaming_kernels.rolling` — trailing median / MAD /
  Hampel (vectorized, scipy-backed) plus an O(log w)-per-update
  :class:`RollingMedian` for sample-at-a-time consumers, and batched
  (multi-column) centered Hampel used by :mod:`repro.core.calibration`.
* :mod:`~repro.dsp.streaming_kernels.unwrap` — integer-cycle phase
  unwrapping whose incremental continuation is bitwise equal to a
  from-scratch pass (the cycle counter is an exact integer cumsum).
* :mod:`~repro.dsp.streaming_kernels.sliding_dft` — sliding-window DFT with
  O(n_bins) updates and a cached rFFT plan.
* :mod:`~repro.dsp.streaming_kernels.calibrator` — the incremental
  calibration engine composing the above, with a stateless
  :func:`trailing_calibrate` reference the equivalence suite gates against.
"""

from .calibrator import (
    StreamingCalibrator,
    TrailingCalibration,
    TrailingHampelState,
    trailing_calibrate,
    trailing_window_samples,
)
from .rolling import (
    RollingHampel,
    RollingMedian,
    batched_hampel_filter,
    batched_rolling_median,
    trailing_hampel,
    trailing_mad,
    trailing_median,
)
from .sliding_dft import SlidingDFT
from .unwrap import CycleUnwrapper, cycle_unwrap

__all__ = [
    "RollingHampel",
    "RollingMedian",
    "batched_hampel_filter",
    "batched_rolling_median",
    "trailing_hampel",
    "trailing_mad",
    "trailing_median",
    "CycleUnwrapper",
    "cycle_unwrap",
    "SlidingDFT",
    "StreamingCalibrator",
    "TrailingCalibration",
    "TrailingHampelState",
    "trailing_calibrate",
    "trailing_window_samples",
]
