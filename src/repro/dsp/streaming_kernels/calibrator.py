"""Incremental trailing calibration engine for the streaming hot path.

The batch calibration stage (:func:`repro.core.calibration.calibrate`)
detrends and denoises with *centered* Hampel windows, so every hop of a
sliding window changes every output sample and forces a full recompute.
The engine here uses the *trailing* kernels from
:mod:`~repro.dsp.streaming_kernels.rolling`: each calibrated sample is a
pure function of the trailing ``trend_window + noise_window`` raw samples,
is computed exactly once, and never changes.  Per hop, only the new packets
are filtered — one short scipy slice call per kernel instead of a
full-window pass.

**Exactness model.**  Every cached value is either (a) an order statistic
of a fixed slice of the raw series (the trailing scipy kernels — slice
continuation is bitwise equal to a full pass) or (b) an exactly associative
integer operation (the cycle counter of
:mod:`~repro.dsp.streaming_kernels.unwrap`).  Consequently an engine
rebuilt from a buffered suffix of the stream produces bit-identical caches
to the engine that ran incrementally — no replay machinery — *provided*
the same integer cycle anchor is used.  The anchor (cycles at the first
buffered packet) is path history a truncated buffer cannot reproduce, so
the streaming monitor carries it in checkpoints; everything float is
rebuilt from the buffer.

:func:`trailing_calibrate` is the stateless from-scratch reference the
equivalence suite gates the engine against (and the fallback the monitor
uses for degraded windows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...contracts import FloatArray, IntArray
from ...errors import ConfigurationError
from ..resample import decimate, downsampled_rate
from ..stats import MAD_TO_SIGMA
from .rolling import trailing_median
from .unwrap import cycle_unwrap

# CalibrationConfig lives in repro.core; importing it here would invert the
# dsp <- core layering, so the engine takes the scalar parameters directly
# and repro.core.streaming adapts its config.

__all__ = [
    "TrailingHampelState",
    "TrailingCalibration",
    "trailing_calibrate",
    "trailing_window_samples",
    "StreamingCalibrator",
]


def trailing_window_samples(window_s: float, sample_rate_hz: float) -> int:
    """Window length in samples for a trailing Hampel stage.

    Same formula as the batch calibration stage (``max(3, round(w * rate))``)
    minus the per-call clamp to the series length — a trailing window longer
    than the data so far is simply left-edge replicated, which keeps the
    window size constant over the life of a stream.
    """
    if window_s <= 0:
        raise ConfigurationError(f"window must be positive, got {window_s}")
    if sample_rate_hz <= 0:
        raise ConfigurationError(
            f"sample rate must be positive, got {sample_rate_hz}"
        )
    return max(3, int(round(window_s * sample_rate_hz)))


class TrailingHampelState:
    """Incremental trailing Hampel filter over a growing multi-series matrix.

    :meth:`extend` filters each new block and returns it; outputs are
    bitwise equal to running :func:`~repro.dsp.streaming_kernels.rolling.trailing_hampel`
    over the whole concatenated series (the equivalence suite pins this).
    The state retains the trailing ``window - 1`` raw samples and absolute
    deviations — everything a future block's windows can reach.
    """

    def __init__(
        self,
        window: int,
        threshold: float,
        *,
        scale: float = MAD_TO_SIGMA,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        self._window = int(window)
        self._threshold = float(threshold)
        self._scale = float(scale)
        self._x_tail: FloatArray | None = None
        self._y_tail: FloatArray | None = None

    @property
    def window(self) -> int:
        """Trailing window length in samples."""
        return self._window

    def extend(self, block: FloatArray) -> FloatArray:
        """Filter the next block, continuing from the retained context.

        Args:
            block: ``[n_new × n_series]`` new raw samples.

        Returns:
            The filtered block, same shape.
        """
        block = np.asarray(block, dtype=float)
        if block.ndim != 2:
            raise ConfigurationError(
                f"expected an [n_new x n_series] block, got shape {block.shape}"
            )
        m = block.shape[0]
        if m == 0:
            return block.copy()
        w = self._window
        keep = w - 1
        if self._x_tail is None:
            ctx_x = block
        else:
            ctx_x = np.concatenate([self._x_tail, block], axis=0)
        # While fewer than ``window - 1`` context rows exist, the slice
        # starts at the true first sample and scipy's edge replication
        # reproduces the full-series warmup exactly; once the context is
        # full, every output row taken has a complete real window.
        med = trailing_median(ctx_x, w)[-m:]
        y_new = np.abs(block - med)
        if self._y_tail is None:
            ctx_y = y_new
        else:
            ctx_y = np.concatenate([self._y_tail, y_new], axis=0)
        mad = trailing_median(ctx_y, w)[-m:]
        outlier = y_new > self._threshold * self._scale * mad
        out = block.copy()
        out[outlier] = med[outlier]
        self._x_tail = ctx_x[-keep:].copy() if keep else ctx_x[:0].copy()
        self._y_tail = ctx_y[-keep:].copy() if keep else ctx_y[:0].copy()
        return out


@dataclass(frozen=True)
class TrailingCalibration:
    """Output of the from-scratch trailing calibration reference.

    Attributes:
        series: ``[n_out × n_series]`` calibrated series at
            ``sample_rate_hz`` (decimated, grid anchored at input row 0).
        predecimation_series: Calibrated series before decimation.
        unwrapped: Integer-cycle unwrapped input phase.
        cycles: Integer cycle count per sample.
        sample_rate_hz: Rate after decimation.
        input_rate_hz: Rate of the raw input.
        decimation_factor: Rows kept are ``[::decimation_factor]``.
    """

    series: FloatArray
    predecimation_series: FloatArray
    unwrapped: FloatArray
    cycles: IntArray
    sample_rate_hz: float
    input_rate_hz: float
    decimation_factor: int


def trailing_calibrate(
    wrapped_phase: FloatArray,
    sample_rate_hz: float,
    *,
    trend_window_s: float = 5.0,
    noise_window_s: float = 0.125,
    hampel_threshold: float = 0.01,
    decimation_factor: int = 1,
    initial_cycles: IntArray | None = None,
) -> TrailingCalibration:
    """From-scratch trailing calibration of wrapped phase differences.

    The stateless reference implementation of the streaming calibration:
    integer-cycle unwrap, trailing Hampel detrend, trailing Hampel denoise,
    decimation anchored at row 0.  :class:`StreamingCalibrator` must match
    this bitwise on every retained row; the monitor also calls it directly
    for degraded (non-uniform) windows.

    Args:
        wrapped_phase: ``[n_packets × n_series]`` wrapped phase differences
            in ``(-pi, pi]``.
        sample_rate_hz: Packet rate of the input.
        trend_window_s: Detrend window in seconds.
        noise_window_s: Denoise window in seconds.
        hampel_threshold: Hampel outlier threshold (robust sigmas).
        decimation_factor: Keep every this-many-th calibrated row.
        initial_cycles: Cycle count at row 0 (per series); zeros when
            omitted.  The streaming monitor passes its checkpointed anchor
            here so restored runs stay bit-identical.

    Returns:
        A :class:`TrailingCalibration`.
    """
    a = np.asarray(wrapped_phase, dtype=float)
    if a.ndim != 2:
        raise ConfigurationError(
            f"expected an [n_packets x n_series] matrix, got shape {a.shape}"
        )
    if a.shape[0] == 0:
        raise ConfigurationError("cannot calibrate an empty series")
    if decimation_factor < 1:
        raise ConfigurationError(
            f"decimation factor must be >= 1, got {decimation_factor}"
        )
    trend_w = trailing_window_samples(trend_window_s, sample_rate_hz)
    noise_w = trailing_window_samples(noise_window_s, sample_rate_hz)
    if noise_w >= trend_w:
        raise ConfigurationError(
            "denoise window must be shorter than the trend window"
        )
    base = (
        np.zeros(a.shape[1], dtype=np.int64)
        if initial_cycles is None
        else np.asarray(initial_cycles, dtype=np.int64)
    )
    unwrapped, cycles = cycle_unwrap(a, prev_angle=a[0], prev_cycles=base)
    trend = _trailing_hampel_full(unwrapped, trend_w, hampel_threshold)
    detrended = unwrapped - trend
    denoised = _trailing_hampel_full(detrended, noise_w, hampel_threshold)
    series = (
        decimate(denoised, decimation_factor, axis=0)
        if decimation_factor > 1
        else denoised.copy()
    )
    return TrailingCalibration(
        series=series,
        predecimation_series=denoised,
        unwrapped=unwrapped,
        cycles=cycles,
        sample_rate_hz=downsampled_rate(sample_rate_hz, decimation_factor),
        input_rate_hz=float(sample_rate_hz),
        decimation_factor=int(decimation_factor),
    )


def _trailing_hampel_full(
    x: FloatArray, window: int, threshold: float
) -> FloatArray:
    """Trailing Hampel over a full matrix (same ops as the incremental state)."""
    med = trailing_median(x, window)
    y = np.abs(x - med)
    mad = trailing_median(y, window)
    outlier = y > threshold * MAD_TO_SIGMA * mad
    out = x.copy()
    out[outlier] = med[outlier]
    return out


class StreamingCalibrator:
    """Incremental counterpart of :func:`trailing_calibrate`.

    Rows are indexed in lockstep with the caller's packet buffer: row ``i``
    of every cache corresponds to buffered packet ``i``.  :meth:`extend`
    appends newly arrived packets, :meth:`evict` drops the oldest rows when
    the caller evicts packets (in multiples of the decimation factor, so
    the ``[::factor]`` grid anchored at row 0 keeps its phase).

    Rebuilding — constructing a fresh engine with the same
    ``initial_cycles`` and extending it with the full buffer in one call —
    reproduces a long-running engine's caches bit-identically; that is the
    restore path of the streaming monitor's checkpoints.
    """

    def __init__(
        self,
        sample_rate_hz: float,
        n_series: int,
        *,
        trend_window_s: float = 5.0,
        noise_window_s: float = 0.125,
        hampel_threshold: float = 0.01,
        decimation_factor: int = 1,
        initial_cycles: IntArray | None = None,
    ) -> None:
        if n_series < 1:
            raise ConfigurationError(f"n_series must be >= 1, got {n_series}")
        if decimation_factor < 1:
            raise ConfigurationError(
                f"decimation factor must be >= 1, got {decimation_factor}"
            )
        trend_w = trailing_window_samples(trend_window_s, sample_rate_hz)
        noise_w = trailing_window_samples(noise_window_s, sample_rate_hz)
        if noise_w >= trend_w:
            raise ConfigurationError(
                "denoise window must be shorter than the trend window"
            )
        self._sample_rate_hz = float(sample_rate_hz)
        self._n_series = int(n_series)
        self._factor = int(decimation_factor)
        self._trend = TrailingHampelState(trend_w, hampel_threshold)
        self._noise = TrailingHampelState(noise_w, hampel_threshold)
        self._last_angle: FloatArray | None = None
        self._last_cycles: IntArray = (
            np.zeros(self._n_series, dtype=np.int64)
            if initial_cycles is None
            else np.asarray(initial_cycles, dtype=np.int64).copy()
        )
        empty_f = np.empty((0, self._n_series), dtype=float)
        self._unwrapped: FloatArray = empty_f
        self._calibrated: FloatArray = empty_f.copy()
        self._cycles: IntArray = np.empty((0, self._n_series), dtype=np.int64)

    @property
    def n_rows(self) -> int:
        """Rows currently cached (== packets buffered by the caller)."""
        return int(self._calibrated.shape[0])

    @property
    def decimation_factor(self) -> int:
        """Rows kept by the decimated view are ``[::decimation_factor]``."""
        return self._factor

    @property
    def calibrated_rate_hz(self) -> float:
        """Sample rate of the decimated calibrated series."""
        return downsampled_rate(self._sample_rate_hz, self._factor)

    @property
    def rebuild_context_samples(self) -> int:
        """Raw rows of context a rebuild needs before its outputs are exact.

        A calibrated row reaches back ``trend_window - 1`` rows through the
        trend median, the same again through the trend MAD (deviations are
        medians of earlier medians), and likewise twice through the noise
        stage: ``2*(trend_window - 1) + 2*(noise_window - 1)`` rows in
        total.  An engine rebuilt from a suffix matches the running engine
        bitwise on every row at least this far past the suffix start.
        """
        return 2 * (self._trend.window - 1) + 2 * (self._noise.window - 1)

    @property
    def base_cycles(self) -> IntArray:
        """Integer cycle count at cache row 0 — the checkpoint anchor."""
        if self.n_rows:
            return self._cycles[0].copy()
        return self._last_cycles.copy()

    def extend(self, wrapped_block: FloatArray) -> None:
        """Unwrap, detrend, denoise, and cache newly arrived packets.

        Args:
            wrapped_block: ``[n_new × n_series]`` wrapped phase differences.
        """
        block = np.asarray(wrapped_block, dtype=float)
        if block.ndim != 2 or block.shape[1] != self._n_series:
            raise ConfigurationError(
                f"expected an [n_new x {self._n_series}] block, "
                f"got shape {block.shape}"
            )
        if block.shape[0] == 0:
            return
        prev_angle = block[0] if self._last_angle is None else self._last_angle
        unwrapped, cycles = cycle_unwrap(
            block, prev_angle=prev_angle, prev_cycles=self._last_cycles
        )
        self._last_angle = block[-1].copy()
        self._last_cycles = cycles[-1].copy()
        trend = self._trend.extend(unwrapped)
        detrended = unwrapped - trend
        denoised = self._noise.extend(detrended)
        self._unwrapped = np.concatenate([self._unwrapped, unwrapped], axis=0)
        self._calibrated = np.concatenate([self._calibrated, denoised], axis=0)
        self._cycles = np.concatenate([self._cycles, cycles], axis=0)

    def evict(self, n_rows: int) -> None:
        """Drop the oldest ``n_rows`` cached rows.

        Must be a multiple of the decimation factor so the decimation grid
        anchored at row 0 keeps its phase across evictions.
        """
        if n_rows % self._factor != 0:
            raise ConfigurationError(
                f"evictions must be multiples of the decimation factor "
                f"({self._factor}), got {n_rows}"
            )
        if n_rows <= 0:
            return
        self._unwrapped = self._unwrapped[n_rows:]
        self._calibrated = self._calibrated[n_rows:]
        self._cycles = self._cycles[n_rows:]

    def unwrapped_window(self, start_row: int) -> FloatArray:
        """Unwrapped phase rows from ``start_row`` to the newest (a view)."""
        return self._unwrapped[start_row:]

    def calibrated_window(self, start_row: int) -> FloatArray:
        """Decimated calibrated rows covering ``[start_row, newest]``.

        The decimation grid is anchored at cache row 0 (kept rows sit at
        absolute indices ``0 mod factor``); the first kept row at or after
        ``start_row`` starts the window.  Returns a copy.
        """
        if start_row < 0:
            raise ConfigurationError(f"start_row must be >= 0, got {start_row}")
        first = -(-start_row // self._factor) * self._factor
        return self._calibrated[first :: self._factor].copy()
