"""Trailing and batched rolling-median kernels.

Two families live here:

* **Trailing (causal) kernels** — the filtered value at index ``i`` is an
  order statistic of the trailing window ``[i - w + 1, i]`` with the left
  edge replicated (``x[0]`` stands in for negative indices).  Trailing
  values are frozen once computed, which is what makes incremental streaming
  exact: extending the series never changes past outputs.  The vectorized
  implementations ride on ``scipy.ndimage.median_filter`` with a positive
  ``origin`` — ``origin=(w - 1) // 2`` shifts the centered footprint fully
  to the left, which is bitwise equal to the naive trailing median
  (verified against a naive implementation in the test suite, including
  ties and even windows).

* **Batched centered kernels** — per-column application of the 1-D
  centered kernels from :mod:`repro.dsp.hampel` over a ``[window × series]``
  matrix, with the elementwise outlier logic vectorized across the matrix.
  Output is bitwise equal to looping :func:`repro.dsp.hampel.hampel_filter`
  over columns; :mod:`repro.core.calibration` uses this to calibrate all
  subcarriers of all antenna pairs in one call.  (The per-column scipy
  calls are retained deliberately: scipy's 1-D path is two orders of
  magnitude faster than its n-D path for this shape.)

An O(log w)-per-update :class:`RollingMedian` (sorted-container indexable
structure) and :class:`RollingHampel` serve sample-at-a-time consumers that
cannot amortize a vectorized slice call.
"""

from __future__ import annotations

import bisect

import numpy as np
from scipy.ndimage import median_filter

from ...contracts import FloatArray
from ...errors import ConfigurationError
from ..stats import MAD_TO_SIGMA

try:  # pragma: no cover - exercised via whichever backend is installed
    from sortedcontainers import SortedList as _SortedList

    _HAVE_SORTEDCONTAINERS = True
except ImportError:  # pragma: no cover
    _SortedList = None
    _HAVE_SORTEDCONTAINERS = False

__all__ = [
    "trailing_median",
    "trailing_mad",
    "trailing_hampel",
    "batched_rolling_median",
    "batched_hampel_filter",
    "RollingMedian",
    "RollingHampel",
]


def _validate(x: FloatArray, window: int) -> FloatArray:
    x = np.asarray(x, dtype=float)
    if x.ndim not in (1, 2):
        raise ConfigurationError(
            f"rolling kernels expect a 1-D series or 2-D matrix, got shape {x.shape}"
        )
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    return x


def trailing_origin(window: int) -> int:
    """The ``scipy.ndimage`` origin that turns a centered footprint trailing.

    A positive origin shifts the footprint left; ``(window - 1) // 2`` is
    both the shift that lands the footprint on ``[i - w + 1, i]`` and the
    maximum shift scipy allows.
    """
    return (window - 1) // 2


def trailing_median(x: FloatArray, window: int) -> FloatArray:
    """Trailing rolling median (window ``[i - w + 1, i]``, left edge replicated).

    The reported median is the rank ``window // 2`` order statistic of the
    window — the same convention as ``scipy.ndimage.median_filter`` and
    therefore as :func:`repro.dsp.hampel.rolling_median`.  2-D input is
    filtered column by column (columns are independent series).

    Args:
        x: 1-D series or ``[n_samples × n_series]`` matrix.
        window: Trailing window length in samples.  May exceed the series
            length; the replicated left edge covers the deficit.

    Returns:
        Filtered array, same shape as ``x``.
    """
    x = _validate(x, window)
    origin = trailing_origin(window)
    if x.ndim == 1:
        return median_filter(x, size=window, mode="nearest", origin=origin)
    out = np.empty_like(x)
    for col in range(x.shape[1]):
        out[:, col] = median_filter(
            x[:, col], size=window, mode="nearest", origin=origin
        )
    return out


def trailing_mad(
    x: FloatArray, window: int, *, median: FloatArray | None = None
) -> FloatArray:
    """Trailing rolling MAD about the trailing rolling median.

    Args:
        x: 1-D series or ``[n_samples × n_series]`` matrix.
        window: Trailing window length in samples.
        median: The trailing median of ``x`` over the same window, when the
            caller has already computed it; omitted, it is recomputed.

    Returns:
        Trailing MAD array, same shape as ``x``.
    """
    x = _validate(x, window)
    med = trailing_median(x, window) if median is None else np.asarray(median, float)
    return trailing_median(np.abs(x - med), window)


def trailing_hampel(
    x: FloatArray,
    window: int,
    threshold: float,
    *,
    scale: float = MAD_TO_SIGMA,
) -> FloatArray:
    """Causal Hampel filter: trailing-window variant of ``hampel_filter``.

    Identical outlier rule to :func:`repro.dsp.hampel.hampel_filter` —
    replace ``x[i]`` with the local median when it sits more than
    ``threshold * scale * mad[i]`` away — but the local statistics come
    from the trailing window, so outputs are frozen once computed and the
    filter can run incrementally.

    Args:
        x: 1-D series or ``[n_samples × n_series]`` matrix.
        window: Trailing window length in samples.
        threshold: Robust standard deviations beyond which a sample is
            replaced by the local median.
        scale: MAD-to-sigma factor (Gaussian-consistent by default).

    Returns:
        Filtered array, same shape as ``x``.
    """
    x = _validate(x, window)
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    med = trailing_median(x, window)
    mad = trailing_median(np.abs(x - med), window)
    outlier = np.abs(x - med) > threshold * scale * mad
    out = x.copy()
    out[outlier] = med[outlier]
    return out


def batched_rolling_median(matrix: FloatArray, window: int) -> FloatArray:
    """Centered rolling median applied independently to each column.

    Bitwise equal to calling :func:`repro.dsp.hampel.rolling_median` on
    every column (same scipy kernel, same ``min(window, n)`` clamp).
    """
    matrix = _validate(matrix, window)
    if matrix.ndim == 1:
        matrix = matrix[:, np.newaxis]
    window = min(window, matrix.shape[0])
    out = np.empty_like(matrix)
    for col in range(matrix.shape[1]):
        out[:, col] = median_filter(matrix[:, col], size=window, mode="nearest")
    return out


def batched_hampel_filter(
    matrix: FloatArray,
    window: int,
    threshold: float,
    *,
    scale: float = MAD_TO_SIGMA,
) -> FloatArray:
    """Centered Hampel filter applied independently to each column.

    The per-column medians reuse the 1-D scipy kernel; the outlier mask and
    replacement are vectorized across the whole matrix.  Bitwise equal to
    looping :func:`repro.dsp.hampel.hampel_filter` over columns.

    Args:
        matrix: ``[n_samples × n_series]`` matrix (1-D input is treated as
            a single column and returned 2-D).
        window: Centered window length in samples (clamped to the series
            length, matching the 1-D filter).
        threshold: Robust standard deviations beyond which a sample is
            replaced by the local median.
        scale: MAD-to-sigma factor.

    Returns:
        Filtered ``[n_samples × n_series]`` matrix.
    """
    matrix = _validate(matrix, window)
    if matrix.ndim == 1:
        matrix = matrix[:, np.newaxis]
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    med = batched_rolling_median(matrix, window)
    mad = batched_rolling_median(np.abs(matrix - med), window)
    outlier = np.abs(matrix - med) > threshold * scale * mad
    out = matrix.copy()
    out[outlier] = med[outlier]
    return out


class _BisectList:
    """Minimal sorted indexable list: stdlib fallback for ``SortedList``.

    ``add``/``remove`` are O(w) worst-case (C-speed ``list`` shifts), which
    is fast enough at vital-sign window sizes; ``sortedcontainers`` is used
    when available for the O(log w) bound.
    """

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: list[float] = []

    def add(self, value: float) -> None:
        bisect.insort(self._data, value)

    def remove(self, value: float) -> None:
        idx = bisect.bisect_left(self._data, value)
        del self._data[idx]

    def __getitem__(self, idx: int) -> float:
        return self._data[idx]

    def __len__(self) -> int:
        return len(self._data)


def _make_sorted_list():
    if _HAVE_SORTEDCONTAINERS:
        return _SortedList()
    return _BisectList()


class RollingMedian:
    """Exact trailing rolling median with O(log w) per-sample updates.

    Maintains the trailing window in a sorted indexable structure; each
    :meth:`push` inserts the new sample, evicts the oldest, and reads the
    rank ``window // 2`` order statistic.  Semantics are identical to
    :func:`trailing_median` (verified bitwise in the test suite): before the
    window fills, the deficit is covered by replicating the first sample.

    This is the sample-at-a-time counterpart of the vectorized slice path;
    the streaming calibrator uses the slice path (one scipy call per hop
    amortizes better), while this class serves true per-packet consumers.
    """

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._window = int(window)
        self._rank = self._window // 2
        self._ring: list[float] = []
        self._next = 0  # ring slot that holds the oldest sample
        self._sorted = _make_sorted_list()

    @property
    def window(self) -> int:
        """Trailing window length in samples."""
        return self._window

    def push(self, value: float) -> float:
        """Insert ``value`` and return the current trailing median."""
        value = float(value)
        if not self._ring:
            # Left-edge replication: pre-fill the window with the first
            # sample so early medians match ``mode='nearest'``.
            self._ring = [value] * self._window
            for _ in range(self._window):
                self._sorted.add(value)
            return self._sorted[self._rank]
        self._sorted.remove(self._ring[self._next])
        self._ring[self._next] = value
        self._next = (self._next + 1) % self._window
        self._sorted.add(value)
        return self._sorted[self._rank]

    def reset(self) -> None:
        """Forget all samples."""
        self._ring = []
        self._next = 0
        self._sorted = _make_sorted_list()


class RollingHampel:
    """Causal Hampel filter with O(log w) per-sample updates.

    Composes two :class:`RollingMedian` structures — one over the raw
    samples, one over the absolute deviations from the running median — and
    applies the Hampel outlier rule per sample.  Output is identical to
    :func:`trailing_hampel` fed the same series.
    """

    def __init__(
        self,
        window: int,
        threshold: float,
        *,
        scale: float = MAD_TO_SIGMA,
    ) -> None:
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        self._median = RollingMedian(window)
        self._deviation = RollingMedian(window)
        self._threshold = float(threshold)
        self._scale = float(scale)

    def push(self, value: float) -> float:
        """Insert ``value`` and return the filtered (possibly replaced) sample."""
        value = float(value)
        med = self._median.push(value)
        mad = self._deviation.push(abs(value - med))
        if abs(value - med) > self._threshold * self._scale * mad:
            return med
        return value

    def reset(self) -> None:
        """Forget all samples."""
        self._median.reset()
        self._deviation.reset()
