"""Sliding-window DFT with O(n_bins) per-sample updates.

For a fixed-length window hopping one sample at a time, each tracked DFT
bin obeys the recurrence

    ``X_k <- (X_k - x_oldest + x_newest) * exp(+2j*pi*k / n)``

so updating costs O(n_bins) instead of the O(n log n) of a fresh FFT.  The
recurrence accumulates float rounding (~1 ulp per update), so the class
resynchronizes against a direct ``np.fft.rfft`` every ``resync_every``
pushes; between resyncs the drift stays far below the 1e-9 equivalence
budget for any realistic session length.

The hopped-window monitor itself batches several hundred samples per hop,
where a single vectorized rFFT (with the cached plan from
:func:`repro.dsp.fft_utils.rfft_plan`) wins; the sliding DFT serves
per-packet consumers such as live spectrogram displays.
"""

from __future__ import annotations

import numpy as np

from ...contracts import ComplexArray, FloatArray, IntArray
from ...errors import ConfigurationError

__all__ = ["SlidingDFT"]


class SlidingDFT:
    """Incrementally maintained one-sided DFT of the trailing window.

    The window starts zero-filled: after ``n`` pushes the spectrum equals
    ``np.fft.rfft`` of the last ``n`` samples (to float rounding); before
    that it equals the rFFT of the zero-padded partial window.

    Args:
        n_window: Window length in samples.
        bins: Indices of the rFFT bins to track; defaults to all
            ``n_window // 2 + 1`` one-sided bins.  Tracking only the
            vital-sign band cuts the per-update cost proportionally.
        resync_every: Recompute the tracked bins from a direct rFFT every
            this many pushes, bounding float drift.  ``0`` disables.
    """

    def __init__(
        self,
        n_window: int,
        *,
        bins: IntArray | None = None,
        resync_every: int = 4096,
    ) -> None:
        if n_window < 2:
            raise ConfigurationError(f"window must be >= 2 samples, got {n_window}")
        if resync_every < 0:
            raise ConfigurationError(
                f"resync_every must be >= 0, got {resync_every}"
            )
        self._n = int(n_window)
        if bins is None:
            self._bins = np.arange(self._n // 2 + 1, dtype=np.int64)
        else:
            self._bins = np.asarray(bins, dtype=np.int64)
            if self._bins.size == 0:
                raise ConfigurationError("bins must not be empty")
            if self._bins.min() < 0 or self._bins.max() > self._n // 2:
                raise ConfigurationError(
                    f"bins must lie in [0, {self._n // 2}], got "
                    f"[{self._bins.min()}, {self._bins.max()}]"
                )
        self._twiddle = np.exp(2j * np.pi * self._bins / self._n)
        self._resync_every = int(resync_every)
        self._buffer = np.zeros(self._n, dtype=float)
        self._next = 0
        self._spectrum = np.zeros(self._bins.size, dtype=complex)
        self._pushes = 0

    @property
    def n_window(self) -> int:
        """Window length in samples."""
        return self._n

    @property
    def bins(self) -> IntArray:
        """Tracked rFFT bin indices."""
        return self._bins.copy()

    def push(self, value: float) -> ComplexArray:
        """Slide the window by one sample and return the updated spectrum."""
        value = float(value)
        oldest = self._buffer[self._next]
        self._buffer[self._next] = value
        self._next = (self._next + 1) % self._n
        self._spectrum = (self._spectrum - oldest + value) * self._twiddle
        self._pushes += 1
        if self._resync_every and self._pushes % self._resync_every == 0:
            self._spectrum = self._direct()
        return self._spectrum.copy()

    def extend(self, values: FloatArray) -> ComplexArray:
        """Push a block of samples; returns the spectrum after the last one."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-D block, got shape {values.shape}"
            )
        if values.size >= self._n:
            # The block replaces the whole window: a direct transform is
            # both faster and exact.
            self._buffer = values[-self._n :].copy()
            self._next = 0
            self._pushes += values.size
            self._spectrum = self._direct()
            return self._spectrum.copy()
        for v in values:
            oldest = self._buffer[self._next]
            self._buffer[self._next] = float(v)
            self._next = (self._next + 1) % self._n
            self._spectrum = (self._spectrum - oldest + float(v)) * self._twiddle
        self._pushes += values.size
        if self._resync_every and self._pushes >= self._resync_every:
            self._pushes = 0
            self._spectrum = self._direct()
        return self._spectrum.copy()

    def window_contents(self) -> FloatArray:
        """The current window, oldest sample first."""
        return np.roll(self._buffer, -self._next).copy()

    def magnitudes(self) -> FloatArray:
        """Magnitude of the tracked bins for the current window."""
        return np.abs(self._spectrum)

    def _direct(self) -> ComplexArray:
        """Tracked bins of a direct rFFT of the current window."""
        return np.fft.rfft(self.window_contents())[self._bins]

    def reset(self) -> None:
        """Zero the window and spectrum."""
        self._buffer[:] = 0.0
        self._next = 0
        self._spectrum[:] = 0.0
        self._pushes = 0
