"""Integer-cycle phase unwrapping with exact incremental continuation.

``np.unwrap`` accumulates float corrections, and float addition is not
associative — unwrapping a series in two blocks can differ from one pass in
the last ulp, which breaks the streaming monitor's bit-identical
checkpoint/restore guarantee.  The kernel here tracks the winding as an
*integer* cycle count instead:

    ``unwrapped[i] = angle[i] + 2*pi * cycles[i]``

where ``cycles`` is the cumulative sum of per-step jumps in
``{-1, 0, +1}`` (a raw step above ``+pi`` unwinds one turn, below ``-pi``
winds one).  Integer cumulative sums are exact and associative, so
blockwise incremental unwrapping is bitwise equal to a from-scratch pass —
the property the equivalence suite pins.

Values agree with ``np.unwrap`` to float rounding (~1 ulp of the unwrapped
magnitude); the streaming path uses this definition consistently on both
the incremental and reference sides.
"""

from __future__ import annotations

import numpy as np

from ...contracts import FloatArray, IntArray

__all__ = ["cycle_unwrap", "CycleUnwrapper"]

_TWO_PI = 2.0 * np.pi


def cycle_unwrap(
    angles: FloatArray,
    *,
    prev_angle: FloatArray | None = None,
    prev_cycles: IntArray | None = None,
) -> tuple[FloatArray, IntArray]:
    """Unwrap wrapped angles along axis 0 via integer cycle counting.

    Args:
        angles: Wrapped angles in ``(-pi, pi]``, shape ``[n_samples]`` or
            ``[n_samples × n_series]``.
        prev_angle: Last *wrapped* angle of the preceding block (per series),
            for incremental continuation.  Omitted for a fresh start.
        prev_cycles: Cycle count at ``prev_angle``.  Required together with
            ``prev_angle``.

    Returns:
        ``(unwrapped, cycles)`` — the unwrapped angles and the integer cycle
        count per sample (``int64``, same shape).  Feed the last row of
        ``angles`` and ``cycles`` back in as ``prev_angle``/``prev_cycles``
        to continue seamlessly.
    """
    a = np.asarray(angles, dtype=float)
    if prev_angle is None:
        first = a[:1]
        base = np.zeros(a.shape[1:], dtype=np.int64)
    else:
        first = np.reshape(np.asarray(prev_angle, dtype=float), (1,) + a.shape[1:])
        base = np.asarray(prev_cycles, dtype=np.int64)
    steps = np.diff(a, axis=0, prepend=first)
    jumps = (steps < -np.pi).astype(np.int64) - (steps > np.pi).astype(np.int64)
    cycles = base + np.cumsum(jumps, axis=0)
    return a + _TWO_PI * cycles, cycles


class CycleUnwrapper:
    """Stateful wrapper around :func:`cycle_unwrap` for block streams."""

    def __init__(self) -> None:
        self._last_angle: FloatArray | None = None
        self._last_cycles: IntArray | None = None

    def extend(self, angles: FloatArray) -> FloatArray:
        """Unwrap the next block, continuing from the previous one."""
        a = np.asarray(angles, dtype=float)
        if a.shape[0] == 0:
            return a.copy()
        unwrapped, cycles = cycle_unwrap(
            a, prev_angle=self._last_angle, prev_cycles=self._last_cycles
        )
        self._last_angle = a[-1].copy()
        self._last_cycles = cycles[-1].copy() if cycles.ndim > 1 else cycles[-1]
        return unwrapped

    def reset(self) -> None:
        """Forget continuation state."""
        self._last_angle = None
        self._last_cycles = None
