"""Sliding-window helpers shared by the filtering and detection stages."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..contracts import FloatArray

__all__ = ["sliding_view", "segment_indices", "centered_window_bounds"]


def sliding_view(x: FloatArray, window: int) -> FloatArray:
    """Read-only view of all length-``window`` slides of a 1-D array.

    Thin wrapper over :func:`numpy.lib.stride_tricks.sliding_window_view`
    with validation, so callers get a clear error instead of a numpy
    broadcasting failure.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"sliding_view expects a 1-D array, got shape {x.shape}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window > x.size:
        raise ValueError(
            f"window ({window}) longer than the signal ({x.size} samples)"
        )
    return np.lib.stride_tricks.sliding_window_view(x, window)


def segment_indices(n: int, window: int, hop: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` bounds of hopping windows over ``n`` samples.

    Windows are full-length only; a trailing partial window is dropped, which
    matches how the environment detector consumes packet streams.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if hop < 1:
        raise ValueError(f"hop must be >= 1, got {hop}")
    start = 0
    while start + window <= n:
        yield start, start + window
        start += hop


def centered_window_bounds(center: int, half_width: int, n: int) -> tuple[int, int]:
    """Bounds of a window centered at ``center``, clipped to ``[0, n)``.

    Used by the Hampel filter near the signal edges, where the window is
    truncated rather than padded so edge medians reflect only real samples.
    """
    if n <= 0:
        raise ValueError("empty signal has no windows")
    lo = max(0, center - half_width)
    hi = min(n, center + half_width + 1)
    return lo, hi
