"""Robust and circular statistics used across the PhaseBeat pipeline.

The paper leans on two statistics throughout:

* the *mean absolute deviation* (MAD about the mean), used both for
  environment detection (Eq. 8) and subcarrier selection (Section III-B3);
* circular statistics on measured phases, used to show that raw per-antenna
  phase is uniform on the circle while the cross-antenna phase difference
  concentrates into a narrow sector (Fig. 1, Theorem 1).
"""

from __future__ import annotations

import numpy as np

from ..contracts import FloatArray

__all__ = [
    "mean_absolute_deviation",
    "median_absolute_deviation",
    "circular_mean",
    "circular_resultant_length",
    "circular_variance",
    "circular_std",
    "angular_sector_width",
]

#: Scale factor that makes the median absolute deviation a consistent
#: estimator of the standard deviation for Gaussian data.
MAD_TO_SIGMA = 1.4826


def mean_absolute_deviation(x: FloatArray, axis: int | None = None) -> FloatArray:
    """Mean absolute deviation about the mean.

    This is the sensitivity statistic of paper Eq. 8 and Fig. 7:
    ``mean(|x - mean(x)|)``.

    Args:
        x: Input array.
        axis: Axis along which to reduce; ``None`` flattens.

    Returns:
        The MAD, with the reduced axis removed.
    """
    x = np.asarray(x, dtype=float)
    mu = np.mean(x, axis=axis, keepdims=True)
    return np.mean(np.abs(x - mu), axis=axis)


def median_absolute_deviation(
    x: FloatArray, axis: int | None = None, scale: float = 1.0
) -> FloatArray:
    """Median absolute deviation about the median.

    Used inside the Hampel filter as a robust spread estimate.  Pass
    ``scale=MAD_TO_SIGMA`` to get a Gaussian-consistent sigma estimate.
    """
    x = np.asarray(x, dtype=float)
    med = np.median(x, axis=axis, keepdims=True)
    return scale * np.median(np.abs(x - med), axis=axis)


def circular_mean(angles: FloatArray) -> float:
    """Mean direction of a sample of angles (radians).

    Computed through the resultant vector, so it is invariant to 2π wrapping.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise ValueError("circular_mean of an empty sample is undefined")
    return float(np.angle(np.mean(np.exp(1j * angles))))


def circular_resultant_length(angles: FloatArray) -> float:
    """Mean resultant length R ∈ [0, 1] of a sample of angles.

    R → 1 for tightly concentrated angles (the phase-difference cloud of
    Fig. 1) and R → 0 for angles uniform on the circle (the raw single-antenna
    phase of Fig. 1).
    """
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise ValueError("resultant length of an empty sample is undefined")
    return float(np.abs(np.mean(np.exp(1j * angles))))


def circular_variance(angles: FloatArray) -> float:
    """Circular variance ``1 - R`` — 0 for a point mass, 1 for uniform."""
    return 1.0 - circular_resultant_length(angles)


def circular_std(angles: FloatArray) -> float:
    """Circular standard deviation ``sqrt(-2 ln R)`` in radians."""
    r = circular_resultant_length(angles)
    if r <= 0.0:
        return float("inf")
    return float(np.sqrt(-2.0 * np.log(r)))


def angular_sector_width(angles: FloatArray, coverage: float = 1.0) -> float:
    """Width (radians) of the smallest arc containing a fraction of angles.

    Fig. 1 of the paper observes that all phase-difference samples fall inside
    a ~20° sector; this function measures that sector width.  ``coverage``
    trims symmetric outliers, e.g. ``coverage=0.95`` returns the width of the
    tightest arc containing 95% of the sample.

    Args:
        angles: Sample of angles in radians.
        coverage: Fraction of the sample the arc must contain, in (0, 1].

    Returns:
        Arc width in radians, in [0, 2π].
    """
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise ValueError("sector width of an empty sample is undefined")
    if not 0.0 < coverage <= 1.0:
        raise ValueError(f"coverage must be in (0, 1], got {coverage}")
    theta = np.sort(np.mod(angles, 2.0 * np.pi))
    n = theta.size
    k = max(1, int(np.ceil(coverage * n)))
    if k >= n:
        # Largest gap between consecutive sorted angles (wrapping around)
        # determines the complement of the occupied arc.
        gaps = np.diff(np.concatenate([theta, theta[:1] + 2.0 * np.pi]))
        return float(2.0 * np.pi - np.max(gaps))
    # Tightest arc containing exactly k consecutive sorted points.
    extended = np.concatenate([theta, theta + 2.0 * np.pi])
    widths = extended[k - 1 : k - 1 + n] - theta
    return float(np.min(widths))
