"""Discrete wavelet transform built from scratch (Daubechies family).

PhaseBeat decomposes the calibrated 20 Hz phase-difference series with a
level-4 Daubechies DWT (paper Eq. 9–10 and Fig. 6): the approximation
coefficient α₄ (0–0.625 Hz) carries the breathing signal, and the sum of the
detail reconstructions β₃+β₄ (0.625–2.5 Hz) carries the heart signal.

PyWavelets is not available in this environment, so this module implements
the orthogonal DWT directly:

* :func:`daubechies_filter` derives the dbN scaling coefficients by spectral
  factorization of the Daubechies polynomial (no hard-coded tap tables);
* :func:`dwt` / :func:`idwt` are a single periodized analysis/synthesis step,
  exact inverses of each other because the periodized shifts of the analysis
  filters form an orthonormal basis;
* :func:`wavedec` / :func:`waverec` are the multilevel transform, and
  :func:`reconstruct_band` rebuilds the signal from a chosen subset of
  coefficient vectors (how α₄ and β₃+β₄ are turned back into time series).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy.special import comb

from ..contracts import FloatArray
from ..errors import ConfigurationError, SignalTooShortError

__all__ = [
    "Wavelet",
    "daubechies_filter",
    "dwt",
    "idwt",
    "wavedec",
    "waverec",
    "reconstruct_band",
    "dwt_max_level",
    "coefficient_band",
    "WaveletDecomposition",
]


@dataclass(frozen=True)
class Wavelet:
    """An orthogonal wavelet defined by its analysis filter pair.

    Attributes:
        name: Identifier such as ``"db4"``.
        dec_lo: Low-pass analysis filter (time-reversed scaling filter).
        dec_hi: High-pass analysis filter (quadrature mirror of ``dec_lo``).
    """

    name: str
    dec_lo: FloatArray
    dec_hi: FloatArray

    @property
    def length(self) -> int:
        """Number of filter taps (2N for dbN)."""
        return int(self.dec_lo.size)


@lru_cache(maxsize=None)
def _scaling_coefficients(order: int) -> tuple[float, ...]:
    """Minimum-phase Daubechies scaling filter of the given order.

    Derivation by spectral factorization: the Daubechies polynomial
    ``P(y) = Σ_k C(N-1+k, k) y^k`` is the half-band autocorrelation in the
    variable ``y = (2 - z - z⁻¹)/4``; each of its roots maps to a quadratic
    in ``z`` (``z² + (4y - 2)z + 1 = 0``) whose inside-the-unit-circle root
    is kept, and the filter is ``(1 + z)^N`` times the product of those root
    factors, normalized so the taps sum to √2.
    """
    if order == 1:
        inv_sqrt2 = 1.0 / np.sqrt(2.0)
        return (inv_sqrt2, inv_sqrt2)

    # P(y) coefficients, highest degree first for np.roots.
    p = np.array([comb(order - 1 + k, k, exact=True) for k in range(order)], float)
    roots_y = np.roots(p[::-1])

    poly = np.array([1.0 + 0.0j])
    for y in roots_y:
        quad = np.array([1.0, 4.0 * y - 2.0, 1.0], dtype=complex)
        z_pair = np.roots(quad)
        z_in = z_pair[np.argmin(np.abs(z_pair))]
        poly = np.polymul(poly, np.array([1.0, -z_in]))
    for _ in range(order):
        poly = np.polymul(poly, np.array([1.0, 1.0]))

    h = np.real(poly)
    h *= np.sqrt(2.0) / h.sum()
    return tuple(float(v) for v in h)


def daubechies_filter(order: int) -> FloatArray:
    """Daubechies scaling (reconstruction low-pass) filter ``h`` of 2N taps."""
    if not 1 <= order <= 12:
        raise ConfigurationError(
            f"Daubechies order must be in [1, 12], got {order} "
            "(spectral factorization loses precision beyond db12)"
        )
    return np.asarray(_scaling_coefficients(order), dtype=float)


def make_wavelet(name: str) -> Wavelet:
    """Build a :class:`Wavelet` from a name like ``"db4"`` or ``"haar"``."""
    key = name.lower().strip()
    if key == "haar":
        key = "db1"
    if not key.startswith("db"):
        raise ConfigurationError(
            f"unknown wavelet {name!r}; only the Daubechies family (dbN) "
            "is implemented"
        )
    try:
        order = int(key[2:])
    except ValueError as exc:
        raise ConfigurationError(f"malformed wavelet name {name!r}") from exc
    h = daubechies_filter(order)
    length = h.size
    dec_lo = h[::-1].copy()
    signs = np.where(np.arange(length) % 2 == 0, -1.0, 1.0)
    dec_hi = signs * h
    return Wavelet(name=f"db{order}", dec_lo=dec_lo, dec_hi=dec_hi)


def _as_wavelet(wavelet: str | Wavelet) -> Wavelet:
    if isinstance(wavelet, Wavelet):
        return wavelet
    return make_wavelet(wavelet)


def _circular_correlate_downsample(x: FloatArray, f: FloatArray) -> FloatArray:
    """``y[k] = Σ_n f[n] · x[(2k + n) mod N]`` for k in [0, N/2).

    The signal is tiled as needed so filters longer than the (coarse-level)
    signal still wrap correctly.  2-D input (series along axis 1) is
    correlated column-wise in one strided-window product.
    """
    n = x.shape[0]
    if f.size > 1:
        reps = -(-(f.size - 1) // n)  # ceil division
        extended = np.concatenate([x] * (1 + reps), axis=0)[: n + f.size - 1]
    else:
        extended = x
    if x.ndim == 1:
        full = np.correlate(extended, f, mode="valid")
        return full[:n:2].copy()
    windows = np.lib.stride_tricks.sliding_window_view(extended, f.size, axis=0)
    full = windows @ f  # (n, n_series)
    return full[:n:2].copy()


def _upsample_circular_convolve(c: FloatArray, f: FloatArray, n: int) -> FloatArray:
    """Zero-stuff ``c`` to length ``n`` and circularly convolve with ``f``.

    Convolution output beyond ``n`` is folded back modulo ``n``, possibly
    over several wraps when the filter is longer than the signal.  2-D input
    is convolved column-wise (one vectorized shift-accumulate per tap —
    wavelet filters are short, so this beats per-column ``np.convolve``).
    """
    if c.ndim == 1:
        up = np.zeros(n, dtype=float)
        up[::2] = c
        conv = np.convolve(up, f)
    else:
        up = np.zeros((n,) + c.shape[1:], dtype=float)
        up[::2] = c
        conv = np.zeros((n + f.size - 1,) + c.shape[1:], dtype=float)
        for j in range(f.size):
            conv[j : j + n] += f[j] * up
    out = np.zeros((n,) + c.shape[1:], dtype=float)
    for start in range(0, conv.shape[0], n):
        chunk = conv[start : start + n]
        out[: chunk.shape[0]] += chunk
    return out


def dwt(x: FloatArray, wavelet: str | Wavelet = "db4") -> tuple[FloatArray, FloatArray]:
    """One periodized analysis step: ``x → (approximation, detail)``.

    The input length must be even (pad with :func:`numpy.pad` upstream or use
    :func:`wavedec`, which handles padding).  Output vectors have length
    ``len(x) / 2``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim not in (1, 2):
        raise ConfigurationError(
            f"dwt expects a 1-D series or [n_samples x n_series] matrix, "
            f"got shape {x.shape}"
        )
    w = _as_wavelet(wavelet)
    if x.shape[0] < 2:
        raise SignalTooShortError(2, x.shape[0], "DWT input")
    if x.shape[0] % 2 != 0:
        raise ConfigurationError(
            f"periodized DWT needs an even length, got {x.shape[0]}"
        )
    approx = _circular_correlate_downsample(x, w.dec_lo)
    detail = _circular_correlate_downsample(x, w.dec_hi)
    return approx, detail


def idwt(
    approx: FloatArray, detail: FloatArray, wavelet: str | Wavelet = "db4"
) -> FloatArray:
    """Exact inverse of :func:`dwt` (synthesis by the transposed operator)."""
    approx = np.asarray(approx, dtype=float)
    detail = np.asarray(detail, dtype=float)
    if approx.shape != detail.shape or approx.ndim not in (1, 2):
        raise ConfigurationError(
            "idwt needs approximation and detail vectors of equal shape "
            f"(1-D or samples x series); got {approx.shape} and {detail.shape}"
        )
    w = _as_wavelet(wavelet)
    n = 2 * approx.shape[0]
    return _upsample_circular_convolve(
        approx, w.dec_lo, n
    ) + _upsample_circular_convolve(detail, w.dec_hi, n)


@dataclass(frozen=True)
class WaveletDecomposition:
    """Multilevel DWT result.

    Attributes:
        approx: The level-``L`` approximation coefficients α_L.
        details: Detail coefficient vectors ``[β_L, β_{L-1}, …, β_1]``
            (coarsest first, mirroring the pywt ``wavedec`` convention).
        wavelet: The wavelet used.
        original_length: Input length before internal even-length padding,
            so :func:`waverec` can trim its output back.
    """

    approx: FloatArray
    details: tuple[FloatArray, ...]
    wavelet: Wavelet
    original_length: int

    @property
    def level(self) -> int:
        """Number of decomposition levels L."""
        return len(self.details)

    def detail(self, level: int) -> FloatArray:
        """Detail coefficients β_level, with level 1 the finest scale."""
        if not 1 <= level <= self.level:
            raise ConfigurationError(
                f"detail level must be in [1, {self.level}], got {level}"
            )
        return self.details[self.level - level]


def dwt_max_level(n: int, wavelet: str | Wavelet = "db4") -> int:
    """Deepest useful decomposition level for an ``n``-sample signal.

    Matches the usual rule ``floor(log2(n / (filter_length - 1)))``, floored
    at zero.
    """
    w = _as_wavelet(wavelet)
    if n < w.length:
        return 0
    return int(np.floor(np.log2(n / (w.length - 1))))


def wavedec(
    x: FloatArray, wavelet: str | Wavelet = "db4", level: int = 4
) -> WaveletDecomposition:
    """Multilevel periodized DWT.

    Odd-length vectors are edge-padded by one sample at each level before the
    analysis step; :func:`waverec` trims the reconstruction back to the
    original length.

    Args:
        x: 1-D input series, or an ``[n_samples x n_series]`` matrix to
            decompose every column in one vectorized pass (the batched
            heart-candidate path of the pipeline).
        wavelet: Wavelet name or instance (the paper uses a Daubechies
            filter, db4 by default here).
        level: Number of analysis steps L (paper uses 4).

    Returns:
        A :class:`WaveletDecomposition` holding α_L and β_L…β_1.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim not in (1, 2):
        raise ConfigurationError(
            f"wavedec expects a 1-D series or [n_samples x n_series] matrix, "
            f"got {x.shape}"
        )
    w = _as_wavelet(wavelet)
    if level < 1:
        raise ConfigurationError(f"level must be >= 1, got {level}")
    min_len = 2**level
    if x.shape[0] < min_len:
        raise SignalTooShortError(min_len, x.shape[0], f"level-{level} DWT input")
    original_length = x.shape[0]

    approx = x
    details: list[FloatArray] = []
    for _ in range(level):
        if approx.shape[0] % 2 != 0:
            approx = np.concatenate([approx, approx[-1:]], axis=0)
        approx, detail = dwt(approx, w)
        details.append(detail)
    return WaveletDecomposition(
        approx=approx,
        details=tuple(reversed(details)),
        wavelet=w,
        original_length=original_length,
    )


def waverec(decomposition: WaveletDecomposition) -> FloatArray:
    """Invert :func:`wavedec`, trimming padding back to the input length."""
    approx = decomposition.approx
    for detail in decomposition.details:
        if approx.shape[0] != detail.shape[0]:
            # The forward pass edge-padded this level; drop the extra sample
            # that padding introduced before combining.
            approx = approx[: detail.shape[0]]
        approx = idwt(approx, detail, decomposition.wavelet)
    return approx[: decomposition.original_length]


def reconstruct_band(
    decomposition: WaveletDecomposition,
    *,
    keep_approx: bool = False,
    keep_details: tuple[int, ...] = (),
) -> FloatArray:
    """Reconstruct a time series from a subset of the DWT coefficients.

    This is how PhaseBeat converts coefficient bands back to signals:
    ``keep_approx=True`` yields the denoised breathing signal from α_L, and
    ``keep_details=(3, 4)`` yields the β₃+β₄ heart-band signal.

    Args:
        decomposition: Output of :func:`wavedec`.
        keep_approx: Whether α_L contributes.
        keep_details: Detail levels (1 = finest) that contribute.

    Returns:
        The band-limited reconstruction, same length as the original input.
    """
    for lv in keep_details:
        if not 1 <= lv <= decomposition.level:
            raise ConfigurationError(
                f"detail level {lv} out of range [1, {decomposition.level}]"
            )
    approx = (
        decomposition.approx
        if keep_approx
        else np.zeros_like(decomposition.approx)
    )
    details = tuple(
        d if (decomposition.level - i) in keep_details else np.zeros_like(d)
        for i, d in enumerate(decomposition.details)
    )
    masked = WaveletDecomposition(
        approx=approx,
        details=details,
        wavelet=decomposition.wavelet,
        original_length=decomposition.original_length,
    )
    return waverec(masked)


def coefficient_band(
    sample_rate_hz: float, level: int, *, is_approx: bool
) -> tuple[float, float]:
    """Nominal frequency band of a DWT coefficient vector.

    At sample rate ``fs``, the level-``l`` detail spans ``[fs/2^{l+1},
    fs/2^l]`` and the level-``L`` approximation spans ``[0, fs/2^{L+1}]`` —
    the bookkeeping behind the paper's statement that, at 20 Hz with L = 4,
    α₄ covers 0–0.625 Hz and β₃+β₄ covers 0.625–2.5 Hz.
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    if level < 1:
        raise ConfigurationError(f"level must be >= 1, got {level}")
    if is_approx:
        return 0.0, sample_rate_hz / 2 ** (level + 1)
    return sample_rate_hz / 2 ** (level + 1), sample_rate_hz / 2**level
