"""FFT spectrum helpers and the Vital-Radio-style 3-bin frequency refinement.

PhaseBeat uses the FFT three ways:

* plain magnitude spectra for multi-person breathing estimation (Fig. 8);
* a band-limited peak search for the heart band (0.625–2.5 Hz);
* the frequency-refinement trick of Adib et al. (Vital-Radio): after locating
  the FFT peak, keep the peak bin and its two neighbours, inverse-FFT those
  three bins back to a complex time-domain signal, and read the frequency off
  the slope of its unwrapped phase.  That beats the raw bin resolution
  ``fs / N`` by an order of magnitude for a clean sinusoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..contracts import BoolArray, FloatArray
from ..errors import ConfigurationError, EstimationError, SignalTooShortError

__all__ = [
    "RfftPlan",
    "rfft_plan",
    "magnitude_spectrum",
    "batched_magnitude_spectrum",
    "band_mask",
    "dominant_frequency",
    "fundamental_frequency",
    "quadratic_peak_interpolation",
    "three_bin_phase_frequency",
    "spectral_peaks",
]


@dataclass(frozen=True)
class RfftPlan:
    """Cached per-(length, rate) rFFT bookkeeping.

    The streaming monitor computes a spectrum per hop over a fixed-length
    window at a fixed rate; the frequency grid never changes, yet the
    original path rebuilt it with ``np.fft.rfftfreq`` on every call.  A plan
    freezes the grid (the array is marked read-only — treat it as shared)
    and the derived constants.
    """

    n_fft: int
    sample_rate_hz: float
    freqs_hz: FloatArray

    @property
    def n_bins(self) -> int:
        """Number of one-sided spectrum bins (``n_fft // 2 + 1``)."""
        return self.freqs_hz.size

    @property
    def bin_width_hz(self) -> float:
        """Frequency resolution of the grid."""
        return self.sample_rate_hz / self.n_fft


@lru_cache(maxsize=128)
def rfft_plan(n_fft: int, sample_rate_hz: float) -> RfftPlan:
    """The (cached) rFFT plan for ``n_fft`` samples at ``sample_rate_hz``.

    Keyed by (window length, sample rate) so hopped-window spectra reuse the
    frequency grid across hops instead of recomputing it.
    """
    if n_fft < 1:
        raise ConfigurationError(f"nfft must be >= 1, got {n_fft}")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    freqs = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate_hz)
    freqs.flags.writeable = False
    return RfftPlan(n_fft=n_fft, sample_rate_hz=float(sample_rate_hz), freqs_hz=freqs)


def magnitude_spectrum(
    x: FloatArray, sample_rate_hz: float, *, nfft: int | None = None, detrend: bool = True
) -> tuple[FloatArray, FloatArray]:
    """One-sided FFT magnitude spectrum of a real series.

    Args:
        x: 1-D real series.
        sample_rate_hz: Sample rate in Hz.
        nfft: FFT length; defaults to ``len(x)`` (no zero padding).
        detrend: Subtract the mean first, so the DC bin does not mask
            low-frequency breathing peaks.

    Returns:
        ``(freqs, magnitude)`` arrays of equal length ``nfft // 2 + 1``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ConfigurationError(f"expected a 1-D series, got shape {x.shape}")
    if x.size < 2:
        raise SignalTooShortError(2, x.size, "FFT input")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    if detrend:
        x = x - x.mean()
    n = int(nfft) if nfft is not None else x.size
    if n < x.size:
        raise ConfigurationError(f"nfft ({n}) shorter than the signal ({x.size})")
    spectrum = np.fft.rfft(x, n=n)
    freqs = rfft_plan(n, float(sample_rate_hz)).freqs_hz
    return freqs, np.abs(spectrum)


def batched_magnitude_spectrum(
    matrix: FloatArray,
    sample_rate_hz: float,
    *,
    nfft: int | None = None,
    detrend: bool = True,
) -> tuple[FloatArray, FloatArray]:
    """One-sided magnitude spectra of every column of a real matrix.

    The batched counterpart of :func:`magnitude_spectrum`: one
    ``np.fft.rfft`` call over axis 0 replaces a Python loop over series, and
    the frequency grid comes from the cached :func:`rfft_plan`.  Per-column
    results equal :func:`magnitude_spectrum` on that column to float
    rounding (the vectorized FFT takes a different code path than the 1-D
    transform, so agreement is ulp-level rather than bitwise).

    Args:
        matrix: ``[n_samples × n_series]`` real matrix.
        sample_rate_hz: Sample rate in Hz.
        nfft: FFT length; defaults to ``n_samples``.
        detrend: Subtract each column's mean first.

    Returns:
        ``(freqs, magnitude)`` with shapes ``[n_bins]`` and
        ``[n_bins × n_series]``.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"expected an [n_samples x n_series] matrix, got shape {matrix.shape}"
        )
    if matrix.shape[0] < 2:
        raise SignalTooShortError(2, matrix.shape[0], "FFT input")
    if sample_rate_hz <= 0:
        raise ConfigurationError(f"sample rate must be positive, got {sample_rate_hz}")
    if detrend:
        matrix = matrix - matrix.mean(axis=0, keepdims=True)
    n = int(nfft) if nfft is not None else matrix.shape[0]
    if n < matrix.shape[0]:
        raise ConfigurationError(
            f"nfft ({n}) shorter than the signal ({matrix.shape[0]})"
        )
    spectrum = np.fft.rfft(matrix, n=n, axis=0)
    freqs = rfft_plan(n, float(sample_rate_hz)).freqs_hz
    return freqs, np.abs(spectrum)


def band_mask(
    freqs_hz: FloatArray, band: tuple[float, float] | None
) -> BoolArray:
    """Boolean mask selecting frequencies inside ``band`` (inclusive)."""
    freqs_hz = np.asarray(freqs_hz, dtype=float)
    if band is None:
        return np.ones(freqs_hz.shape, dtype=bool)
    lo, hi = band
    if lo < 0 or hi <= lo:
        raise ConfigurationError(f"band must satisfy 0 <= lo < hi, got {band}")
    return (freqs_hz >= lo) & (freqs_hz <= hi)


def dominant_frequency(
    x: FloatArray,
    sample_rate_hz: float,
    *,
    band: tuple[float, float] | None = None,
    nfft: int | None = None,
    interpolate: bool = True,
) -> float:
    """Frequency of the largest spectral peak, optionally band-limited.

    With ``interpolate=True`` the raw bin frequency is refined by quadratic
    interpolation over the peak bin and its neighbours.
    """
    freqs, mag = magnitude_spectrum(x, sample_rate_hz, nfft=nfft)
    mask = band_mask(freqs, band)
    if not mask.any():
        raise EstimationError(f"no FFT bins inside the band {band}")
    idx = np.flatnonzero(mask)
    k = idx[np.argmax(mag[idx])]
    if not interpolate or k == 0 or k == mag.size - 1:
        return float(freqs[k])
    delta = quadratic_peak_interpolation(mag[k - 1], mag[k], mag[k + 1])
    bin_width = freqs[1] - freqs[0]
    return float(freqs[k] + delta * bin_width)


def fundamental_frequency(
    x: FloatArray,
    sample_rate_hz: float,
    *,
    band: tuple[float, float],
    nfft: int | None = None,
    subharmonic_ratio: float = 0.25,
) -> float:
    """Dominant frequency with octave-error (subharmonic) correction.

    The phase-of-sum nonlinearity can make the *second harmonic* of the
    breathing signal the tallest spectral line at unlucky static operating
    points.  As in pitch estimation, the cure is to check half the peak
    frequency: when the spectrum at ``f/2`` holds at least
    ``subharmonic_ratio`` of the peak magnitude (and lies in the band), the
    subharmonic is taken as the fundamental.  Applied recursively, so a
    dominant 4th harmonic also resolves down.

    Args:
        x: 1-D real series.
        sample_rate_hz: Sample rate in Hz.
        band: Admissible fundamental band.
        nfft: FFT length.
        subharmonic_ratio: Relative magnitude at f/2 that triggers the
            octave-down correction.

    Returns:
        The corrected fundamental frequency in Hz.
    """
    freqs, mag = magnitude_spectrum(x, sample_rate_hz, nfft=nfft)
    mask = band_mask(freqs, band)
    if not mask.any():
        raise EstimationError(f"no FFT bins inside the band {band}")
    idx = np.flatnonzero(mask)
    k = idx[np.argmax(mag[idx])]
    bin_width = freqs[1] - freqs[0]

    def local_peak(f: float) -> tuple[float, float]:
        """(peak frequency, 3-bin RMS energy) around ``f``.

        The energy is summed over ±1.5 bins so an off-grid line — whose
        single-bin magnitude is scalloped by up to ~36% — compares fairly
        against an on-grid one.
        """
        # ±1 bin: a true subharmonic sits at f/2 to sub-bin accuracy (the
        # worst case is a line split across two adjacent bins); any wider
        # and the search can adopt an unrelated nearby peak.
        lo = np.searchsorted(freqs, f - 1.02 * bin_width)
        hi = min(np.searchsorted(freqs, f + 1.02 * bin_width) + 1, mag.size)
        if lo >= hi:
            return f, 0.0
        j = lo + int(np.argmax(mag[lo:hi]))
        # The candidate must be a genuine spectral line, not the decaying
        # leakage skirt of a stronger line nearby: require a local maximum.
        if 0 < j < mag.size - 1 and not (
            mag[j] >= mag[j - 1] and mag[j] >= mag[j + 1]
        ):
            return float(freqs[j]), 0.0
        energy = float(np.sqrt(np.sum(mag[lo:hi] ** 2)))
        return float(freqs[j]), energy

    f_peak = float(freqs[k])
    _, peak_energy = local_peak(f_peak)
    # Noise floor: median 3-bin energy across the band, so a subharmonic
    # candidate must be a genuine line, not the local noise level.
    in_band_bins = np.flatnonzero(mask)
    floor_samples = [
        local_peak(float(freqs[j]))[1] for j in in_band_bins[:: max(1, in_band_bins.size // 16)]
    ]
    noise_floor = float(np.median(floor_samples)) if floor_samples else 0.0
    for _ in range(2):  # at most two octave corrections (4th harmonic)
        f_half, energy_half = local_peak(f_peak / 2.0)
        if (
            f_half >= band[0]
            and energy_half >= subharmonic_ratio * peak_energy
            and energy_half >= 2.0 * noise_floor
        ):
            f_peak, peak_energy = f_half, energy_half
        else:
            break
    # Final sub-bin refinement around the chosen line.
    j = int(np.argmin(np.abs(freqs - f_peak)))
    if 0 < j < mag.size - 1:
        delta = quadratic_peak_interpolation(mag[j - 1], mag[j], mag[j + 1])
        return float(freqs[j] + delta * bin_width)
    return float(freqs[j])


def quadratic_peak_interpolation(left: float, center: float, right: float) -> float:
    """Sub-bin peak offset in (-0.5, 0.5) from three magnitude samples.

    Fits a parabola through the three points and returns the abscissa of its
    vertex relative to the center bin.  Returns 0 for a degenerate (flat)
    triple.
    """
    denom = left - 2.0 * center + right
    if denom == 0.0:  # phaselint: disable=PL004 -- exact degenerate-parabola sentinel
        return 0.0
    delta = 0.5 * (left - right) / denom
    return float(np.clip(delta, -0.5, 0.5))


def three_bin_phase_frequency(
    x: FloatArray,
    sample_rate_hz: float,
    *,
    band: tuple[float, float],
    nfft: int | None = None,
) -> float:
    """Frequency estimate via the 3-bin inverse-FFT phase-slope method.

    Implements the refinement PhaseBeat borrows from Vital-Radio for heart
    rate (Section III-D1): locate the FFT peak inside ``band``, zero every
    bin except the peak and its two adjacent bins, inverse-FFT to obtain a
    complex (analytic-like) time-domain signal, and estimate the frequency
    from the mean slope of its unwrapped phase.

    Args:
        x: 1-D real series (e.g. the β₃+β₄ heart-band reconstruction).
        sample_rate_hz: Sample rate in Hz.
        band: Search band in Hz; mandatory because the method is only
            meaningful around an isolated peak.
        nfft: FFT length, defaulting to ``len(x)``.

    Returns:
        The refined peak frequency in Hz.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ConfigurationError(f"expected a 1-D series, got shape {x.shape}")
    if x.size < 8:
        raise SignalTooShortError(8, x.size, "3-bin refinement input")
    n = int(nfft) if nfft is not None else x.size
    spectrum = np.fft.fft(x - x.mean(), n=n)
    freqs = np.fft.fftfreq(n, d=1.0 / sample_rate_hz)
    positive = freqs > 0
    mask = positive & band_mask(np.abs(freqs), band)
    if not mask.any():
        raise EstimationError(f"no FFT bins inside the band {band}")
    idx = np.flatnonzero(mask)
    k = idx[np.argmax(np.abs(spectrum[idx]))]
    lo = max(k - 1, 1)
    hi = min(k + 2, n)

    narrow = np.zeros(n, dtype=complex)
    narrow[lo:hi] = spectrum[lo:hi]
    s = np.fft.ifft(narrow)
    phase = np.unwrap(np.angle(s))
    slope = np.polyfit(np.arange(n), phase, 1)[0]
    return float(slope * sample_rate_hz / (2.0 * np.pi))


def spectral_peaks(
    x: FloatArray,
    sample_rate_hz: float,
    count: int,
    *,
    band: tuple[float, float] | None = None,
    nfft: int | None = None,
    min_separation_hz: float = 0.0,
) -> FloatArray:
    """Frequencies of the ``count`` largest local spectral maxima.

    The multi-person FFT baseline of Fig. 8 reads one breathing rate per
    spectral peak; ``min_separation_hz`` mimics its inability to resolve
    closely spaced rates by merging nearby candidates.

    Returns:
        Peak frequencies sorted ascending; may contain fewer than ``count``
        entries when the spectrum has fewer local maxima.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    freqs, mag = magnitude_spectrum(x, sample_rate_hz, nfft=nfft)
    mask = band_mask(freqs, band)
    # A local maximum that also lies in the band.
    local = np.zeros(mag.size, dtype=bool)
    local[1:-1] = (mag[1:-1] >= mag[:-2]) & (mag[1:-1] >= mag[2:])
    candidates = np.flatnonzero(local & mask & (mag > 0))
    if candidates.size == 0:
        return np.empty(0, dtype=float)
    order = candidates[np.argsort(mag[candidates])[::-1]]
    chosen: list[int] = []
    for k in order:
        if len(chosen) == count:
            break
        if all(abs(freqs[k] - freqs[j]) >= min_separation_hz for j in chosen):
            chosen.append(k)
    bin_width = freqs[1] - freqs[0]
    refined = []
    for k in chosen:
        if 0 < k < mag.size - 1:
            delta = quadratic_peak_interpolation(mag[k - 1], mag[k], mag[k + 1])
        else:
            delta = 0.0
        refined.append(freqs[k] + delta * bin_width)
    return np.sort(np.asarray(refined, dtype=float))
