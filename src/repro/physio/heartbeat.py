"""Heartbeat-induced chest displacement models.

The heart signal is *orders of magnitude weaker* than breathing (paper
Section III-D1): diastole/systole move the chest surface by a fraction of a
millimetre versus ~5 mm for breathing.  PhaseBeat copes by (a) using a
directional TX antenna to raise reflected power and (b) isolating the
0.625–2.5 Hz DWT band.  The models here reproduce that weakness so the
reproduction faces the same difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError

__all__ = ["HeartbeatModel", "SinusoidalHeartbeat", "PulseHeartbeat"]

#: Resting adult heart rates: 50–120 bpm → 0.83–2.0 Hz; the paper's heart
#: band after DWT is 0.625–2.5 Hz.
HEART_BAND_HZ = (0.83, 2.0)


class HeartbeatModel:
    """Interface: heartbeat chest displacement versus time (meters)."""

    frequency_hz: float

    def displacement(self, t: FloatArray) -> FloatArray:
        """Chest-surface displacement (m) at each time in ``t`` (seconds)."""
        raise NotImplementedError

    @property
    def rate_bpm(self) -> float:
        """Ground-truth heart rate in beats per minute."""
        return 60.0 * self.frequency_hz


def _check_frequency(frequency_hz: float) -> None:
    if not 0.6 <= frequency_hz <= 3.5:
        raise ConfigurationError(
            f"heart frequency {frequency_hz} Hz is outside the plausible "
            "human range [0.6, 3.5]"
        )


@dataclass
class SinusoidalHeartbeat(HeartbeatModel):
    """Pure-tone heartbeat, the analogue of the paper's breathing Lemma.

    Attributes:
        frequency_hz: Heart rate in Hz (1.07 Hz ≈ 64 bpm is the paper's
            Fig. 9 subject).
        amplitude_m: Peak chest displacement, default 0.4 mm — roughly 1/12
            of the breathing amplitude, preserving the paper's "orders of
            magnitude weaker" regime once reflection attenuates it further.
        phase: Initial phase in radians.
    """

    frequency_hz: float = 1.07
    amplitude_m: float = 4.0e-4
    phase: float = 0.0

    def __post_init__(self) -> None:
        _check_frequency(self.frequency_hz)
        if self.amplitude_m <= 0:
            raise ConfigurationError(
                f"heartbeat amplitude must be positive, got {self.amplitude_m}"
            )

    def displacement(self, t: FloatArray) -> FloatArray:
        """Pure sinusoidal pulse displacement at ``frequency_hz``."""
        t = np.asarray(t, dtype=float)
        return self.amplitude_m * np.cos(
            2.0 * np.pi * self.frequency_hz * t + self.phase
        )


@dataclass
class PulseHeartbeat(HeartbeatModel):
    """Impulsive heartbeat: a narrow raised-cosine pulse per beat.

    Closer to a ballistocardiogram than a sinusoid — each systole produces a
    short mechanical thump.  Its spectrum spreads energy across several
    harmonics of the heart rate, stressing the FFT peak picker the same way
    real cardiac motion does.

    Attributes:
        frequency_hz: Heart rate in Hz.
        amplitude_m: Peak pulse displacement.
        duty: Fraction of the beat period occupied by the pulse, in (0, 1).
        phase: Initial phase in radians (shifts pulse positions).
    """

    frequency_hz: float = 1.1
    amplitude_m: float = 4.0e-4
    duty: float = 0.3
    phase: float = 0.0

    def __post_init__(self) -> None:
        _check_frequency(self.frequency_hz)
        if self.amplitude_m <= 0:
            raise ConfigurationError(
                f"heartbeat amplitude must be positive, got {self.amplitude_m}"
            )
        if not 0.0 < self.duty < 1.0:
            raise ConfigurationError(f"duty must be in (0, 1), got {self.duty}")

    def displacement(self, t: FloatArray) -> FloatArray:
        """Sharper, pulse-train-like heartbeat displacement."""
        t = np.asarray(t, dtype=float)
        # Beat phase in [0, 1); the pulse occupies the first `duty` fraction.
        beat_phase = np.mod(
            self.frequency_hz * t + self.phase / (2.0 * np.pi), 1.0
        )
        inside = beat_phase < self.duty
        pulse = np.zeros_like(t)
        pulse[inside] = 0.5 * (
            1.0 - np.cos(2.0 * np.pi * beat_phase[inside] / self.duty)
        )
        # Remove the DC the one-sided pulse introduces.
        return self.amplitude_m * (pulse - self.duty * 0.5)
