"""Large-scale motion models for the environment-detection experiment.

The paper's Fig. 3 contrasts four states over one minute: a sitting person
(clean sinusoid-like phase difference), an empty room (flat line), standing
up (a brief large transient), and walking (sustained large fluctuations).
Environment detection (Eq. 8) thresholds the windowed mean absolute
deviation to keep only stationary segments.

These models produce *body displacement* time series far larger than
breathing (decimetres instead of millimetres), which the RF layer converts
into the violent phase swings the detector must reject.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..contracts import BoolArray, FloatArray
from ..errors import ConfigurationError

__all__ = ["ActivityState", "MotionEvent", "ActivityScript"]


class ActivityState(str, Enum):
    """The four states of paper Fig. 3."""

    SITTING = "sitting"
    NO_PERSON = "no_person"
    STANDING_UP = "standing_up"
    WALKING = "walking"


@dataclass(frozen=True)
class MotionEvent:
    """One activity segment of a scripted trace.

    Attributes:
        state: Activity during the segment.
        start_s: Segment start time (seconds).
        duration_s: Segment length (seconds).
    """

    state: ActivityState
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration_s}"
            )
        if self.start_s < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start_s}")

    @property
    def end_s(self) -> float:
        """Segment end time (seconds)."""
        return self.start_s + self.duration_s


@dataclass
class ActivityScript:
    """A timeline of activity segments driving one simulated trace.

    Attributes:
        events: Non-overlapping, time-ordered motion events.
        walking_amplitude_m: Body sway amplitude while walking (~0.2 m).
        standing_amplitude_m: Torso travel when standing up (~0.4 m).
        seed: Seed for the walking-motion realization.
    """

    events: tuple[MotionEvent, ...]
    walking_amplitude_m: float = 0.2
    standing_amplitude_m: float = 0.4
    seed: int = 0

    def __post_init__(self) -> None:
        ordered = sorted(self.events, key=lambda e: e.start_s)
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start_s < prev.end_s - 1e-9:
                raise ConfigurationError(
                    f"overlapping motion events at t={cur.start_s}s"
                )
        object.__setattr__(self, "events", tuple(ordered))

    def state_at(self, t: float) -> ActivityState:
        """Activity at time ``t``; defaults to SITTING between events."""
        for event in self.events:
            if event.start_s <= t < event.end_s:
                return event.state
        return ActivityState.SITTING

    def states(self, t: FloatArray) -> np.ndarray:  # phaselint: disable=PL002 -- object array of ActivityState
        """Vectorized :meth:`state_at`: array of state values for ``t``.

        Built per element — bulk fills of a str-enum decay to plain strings
        under numpy's scalar coercion.
        """
        t = np.asarray(t, dtype=float)
        out = np.empty(t.shape, dtype=object)
        for i in np.ndindex(t.shape):
            out[i] = ActivityState.SITTING
        for event in self.events:
            mask = (t >= event.start_s) & (t < event.end_s)
            for i in np.ndindex(t.shape):
                if mask[i]:
                    out[i] = event.state
        return out

    def person_present(self, t: FloatArray) -> BoolArray:
        """Boolean mask: is the person in the scene at each time.

        Built directly from the event list (comparing an object array of
        str-enums against an enum member elementwise is unreliable in numpy).
        """
        t = np.asarray(t, dtype=float)
        present = np.ones(t.shape, dtype=bool)
        for event in self.events:
            if event.state is ActivityState.NO_PERSON:
                present[(t >= event.start_s) & (t < event.end_s)] = False
        return present

    def body_displacement(self, t: FloatArray) -> FloatArray:
        """Large-scale body displacement (m) added to the chest position.

        Walking is a random low-frequency sway; standing up is a smooth
        ramp over the event; sitting and no-person contribute zero (the
        no-person case is handled by :meth:`person_present` removing the
        reflection ray entirely).
        """
        t = np.asarray(t, dtype=float)
        rng = np.random.default_rng(self.seed)
        displacement = np.zeros_like(t)
        for event in self.events:
            mask = (t >= event.start_s) & (t < event.end_s)
            if not mask.any():
                continue
            local = (t[mask] - event.start_s) / event.duration_s
            if event.state is ActivityState.WALKING:
                # Sum of a few incommensurate low-frequency tones with random
                # phases approximates gait sway plus pacing around the room.
                sway = np.zeros_like(local)
                for freq in (0.6, 0.9, 1.5):
                    sway += np.sin(
                        2.0 * np.pi * freq * t[mask]
                        + rng.uniform(0.0, 2.0 * np.pi)
                    )
                displacement[mask] += self.walking_amplitude_m * sway / 3.0
            elif event.state is ActivityState.STANDING_UP:
                # Smoothstep ramp: torso moves once, then stays.
                ramp = local * local * (3.0 - 2.0 * local)
                displacement[mask] += self.standing_amplitude_m * ramp
            # After standing up, keep the displaced position for the rest of
            # the trace (the person does not teleport back down).
            if event.state is ActivityState.STANDING_UP:
                after = t >= event.end_s
                displacement[after] += self.standing_amplitude_m
        return displacement

    @classmethod
    def figure3_script(cls, seed: int = 0) -> "ActivityScript":
        """The one-minute timeline of paper Fig. 3.

        0–15 s sitting, 15–30 s empty room, 30–40 s standing up,
        40–60 s walking.
        """
        return cls(
            events=(
                MotionEvent(ActivityState.SITTING, 0.0, 15.0),
                MotionEvent(ActivityState.NO_PERSON, 15.0, 15.0),
                MotionEvent(ActivityState.STANDING_UP, 30.0, 10.0),
                MotionEvent(ActivityState.WALKING, 40.0, 20.0),
            ),
            seed=seed,
        )
