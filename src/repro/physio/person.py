"""Person models: a position plus breathing and heartbeat displacement.

A :class:`Person` combines the physiological models with a location in the
scene; the RF layer turns each person into one dynamic multipath ray whose
path length is modulated by the summed chest displacement (breathing +
heartbeat).  :func:`random_cohort` draws reproducible groups of subjects for
the multi-person experiments (Figs. 8 and 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..contracts import FloatArray
from ..errors import ConfigurationError
from .breathing import BreathingModel, RealisticBreathing, SinusoidalBreathing
from .heartbeat import HeartbeatModel, SinusoidalHeartbeat

__all__ = ["Person", "random_cohort"]


@dataclass
class Person:
    """A monitored subject.

    Attributes:
        position: (x, y, z) chest location in meters, in scene coordinates.
        breathing: Breathing displacement model (ground-truth rate inside).
        heartbeat: Heartbeat displacement model, or ``None`` for a
            breathing-only subject (useful for isolating experiments).
        reflectivity: Relative amplitude of the chest-reflected ray, folded
            into the RF attenuation of that person's path (chest area,
            clothing, and posture in one scalar).
        name: Label used in reports.
    """

    position: tuple[float, float, float]
    breathing: BreathingModel = field(default_factory=SinusoidalBreathing)
    heartbeat: HeartbeatModel | None = field(default_factory=SinusoidalHeartbeat)
    reflectivity: float = 1.0
    name: str = "subject"

    def __post_init__(self) -> None:
        if len(self.position) != 3:
            raise ConfigurationError(
                f"position must be an (x, y, z) triple, got {self.position!r}"
            )
        if self.reflectivity <= 0:
            raise ConfigurationError(
                f"reflectivity must be positive, got {self.reflectivity}"
            )

    def chest_displacement(self, t: FloatArray) -> FloatArray:
        """Total chest-surface displacement (m): breathing plus heartbeat."""
        d = self.breathing.displacement(t)
        if self.heartbeat is not None:
            d = d + self.heartbeat.displacement(t)
        return d

    @property
    def breathing_rate_bpm(self) -> float:
        """Ground-truth breathing rate (breaths/min)."""
        return self.breathing.rate_bpm

    @property
    def heart_rate_bpm(self) -> float | None:
        """Ground-truth heart rate (beats/min), or ``None``."""
        return None if self.heartbeat is None else self.heartbeat.rate_bpm


def random_cohort(
    n_persons: int,
    *,
    seed: int = 0,
    realistic: bool = True,
    min_rate_separation_hz: float = 0.02,
    breathing_band_hz: tuple[float, float] = (0.17, 0.45),
    heart_band_hz: tuple[float, float] = (0.9, 1.8),
    area: tuple[float, float] = (4.5, 8.8),
    with_heartbeat: bool = True,
    breathing_amplitude_m: tuple[float, float] = (4.0e-3, 6.0e-3),
) -> list[Person]:
    """Draw a reproducible cohort of subjects with distinct breathing rates.

    Rates are rejected-sampled until all pairwise separations exceed
    ``min_rate_separation_hz`` — two subjects with literally identical rates
    are unresolvable in principle, which would make multi-person accuracy
    metrics meaningless rather than hard.

    Args:
        n_persons: Cohort size.
        seed: RNG seed; the same seed always yields the same cohort.
        realistic: Use :class:`RealisticBreathing` (harmonics + rate wander)
            instead of pure sinusoids.
        min_rate_separation_hz: Minimum pairwise breathing-rate gap.
        breathing_band_hz: Range breathing rates are drawn from.
        heart_band_hz: Range heart rates are drawn from.
        area: (width, depth) in meters of the region persons occupy.
        with_heartbeat: Give each person a heartbeat model.
        breathing_amplitude_m: (low, high) range the per-person chest
            displacement amplitude is drawn from.  Multi-person experiments
            use smaller amplitudes (≈3 mm) to stay in the small-signal
            regime where the rates superpose linearly.

    Returns:
        A list of :class:`Person`.
    """
    if n_persons < 1:
        raise ConfigurationError(f"n_persons must be >= 1, got {n_persons}")
    lo, hi = breathing_band_hz
    if (hi - lo) < (n_persons - 1) * min_rate_separation_hz:
        raise ConfigurationError(
            f"cannot fit {n_persons} rates separated by "
            f"{min_rate_separation_hz} Hz inside the band {breathing_band_hz}"
        )
    rng = np.random.default_rng(seed)

    rates: list[float] = []
    for _ in range(10_000):
        candidate = float(rng.uniform(lo, hi))
        if all(abs(candidate - r) >= min_rate_separation_hz for r in rates):
            rates.append(candidate)
            if len(rates) == n_persons:
                break
    if len(rates) < n_persons:
        raise ConfigurationError(
            "rejection sampling failed to place all breathing rates; "
            "loosen min_rate_separation_hz or widen the band"
        )

    persons = []
    for i, f_b in enumerate(rates):
        position = (
            float(rng.uniform(0.5, area[0] - 0.5)),
            float(rng.uniform(0.5, area[1] - 0.5)),
            1.0,
        )
        amplitude = float(rng.uniform(*breathing_amplitude_m))
        if realistic:
            breathing: BreathingModel = RealisticBreathing(
                frequency_hz=f_b,
                amplitude_m=amplitude,
                phase=float(rng.uniform(0.0, 2.0 * np.pi)),
                seed=seed * 1000 + i,
            )
        else:
            breathing = SinusoidalBreathing(
                frequency_hz=f_b,
                amplitude_m=amplitude,
                phase=float(rng.uniform(0.0, 2.0 * np.pi)),
            )
        heartbeat = (
            SinusoidalHeartbeat(
                frequency_hz=float(rng.uniform(*heart_band_hz)),
                phase=float(rng.uniform(0.0, 2.0 * np.pi)),
            )
            if with_heartbeat
            else None
        )
        persons.append(
            Person(
                position=position,
                breathing=breathing,
                heartbeat=heartbeat,
                reflectivity=float(rng.uniform(0.7, 1.3)),
                name=f"subject-{i + 1}",
            )
        )
    return persons
