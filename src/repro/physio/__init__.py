"""Physiological signal models: the paper's human subjects, simulated.

Breathing and heartbeat chest-displacement waveforms, person/cohort
construction, large-scale motion scripts for environment detection, and
reference-sensor (ground truth) models.
"""

from .breathing import (
    BREATHING_BAND_HZ,
    ApneicBreathing,
    BreathingModel,
    RealisticBreathing,
    SinusoidalBreathing,
)
from .ground_truth import PulseOximeter, ReferenceSensor, RespirationBelt
from .heartbeat import (
    HEART_BAND_HZ,
    HeartbeatModel,
    PulseHeartbeat,
    SinusoidalHeartbeat,
)
from .motion import ActivityScript, ActivityState, MotionEvent
from .person import Person, random_cohort

__all__ = [
    "ActivityScript",
    "ApneicBreathing",
    "ActivityState",
    "BREATHING_BAND_HZ",
    "BreathingModel",
    "HEART_BAND_HZ",
    "HeartbeatModel",
    "MotionEvent",
    "Person",
    "PulseHeartbeat",
    "PulseOximeter",
    "RealisticBreathing",
    "ReferenceSensor",
    "RespirationBelt",
    "SinusoidalBreathing",
    "SinusoidalHeartbeat",
    "random_cohort",
]
