"""Breathing-induced chest displacement models.

Lemma 1 of the paper models the chest as rising and falling sinusoidally:
``d(t) = D + A·cos(2π f_b t)``.  Real respiration is close to but not exactly
that — exhalation is longer than inhalation, the rate wanders slowly, and the
waveform carries harmonics (which matter because breathing harmonics land in
the heart band and are the main interference the heart estimator fights,
Section III-D1).  Both the idealized and the realistic model are provided;
every experiment can choose its fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..contracts import BoolArray, FloatArray
from ..errors import ConfigurationError

__all__ = [
    "BreathingModel",
    "SinusoidalBreathing",
    "RealisticBreathing",
    "ApneicBreathing",
]

#: Adult resting breathing rates span roughly 10–37 breaths/min, i.e. the
#: paper's 0.17–0.62 Hz breathing band.
BREATHING_BAND_HZ = (0.17, 0.62)


class BreathingModel:
    """Interface: breathing chest displacement as a function of time.

    Subclasses implement :meth:`displacement`; all displacements are in
    meters, zero-mean over a full cycle.
    """

    #: Nominal breathing frequency in Hz (ground truth for experiments).
    frequency_hz: float

    def displacement(self, t: FloatArray) -> FloatArray:
        """Chest-surface displacement (m) at each time in ``t`` (seconds)."""
        raise NotImplementedError

    @property
    def rate_bpm(self) -> float:
        """Ground-truth breathing rate in breaths per minute."""
        return 60.0 * self.frequency_hz


def _check_frequency(frequency_hz: float) -> None:
    if not 0.05 <= frequency_hz <= 1.2:
        raise ConfigurationError(
            f"breathing frequency {frequency_hz} Hz is outside the plausible "
            "human range [0.05, 1.2]"
        )


@dataclass
class SinusoidalBreathing(BreathingModel):
    """The paper's idealized model: a pure cosine at ``f_b``.

    Attributes:
        frequency_hz: Breathing frequency f_b in Hz.
        amplitude_m: Peak chest displacement (typically ~5 mm).
        phase: Initial phase in radians.
    """

    frequency_hz: float = 0.25
    amplitude_m: float = 5.0e-3
    phase: float = 0.0

    def __post_init__(self) -> None:
        _check_frequency(self.frequency_hz)
        if self.amplitude_m <= 0:
            raise ConfigurationError(
                f"breathing amplitude must be positive, got {self.amplitude_m}"
            )

    def displacement(self, t: FloatArray) -> FloatArray:
        """Pure (plus harmonics) sinusoidal chest motion at ``frequency_hz``."""
        t = np.asarray(t, dtype=float)
        return self.amplitude_m * np.cos(
            2.0 * np.pi * self.frequency_hz * t + self.phase
        )


@dataclass
class RealisticBreathing(BreathingModel):
    """Breathing with inhale/exhale asymmetry, harmonics, and rate wander.

    The waveform is built from the fundamental plus a few decaying harmonics
    (asymmetric inhale/exhale shapes are exactly what creates harmonics), and
    the instantaneous frequency performs a slow bounded random walk around
    ``frequency_hz`` to model natural breathing-rate variability.

    Attributes:
        frequency_hz: Mean breathing frequency in Hz.
        amplitude_m: Peak displacement of the fundamental.
        harmonic_levels: Relative amplitude of harmonics 2, 3, … of the
            fundamental.
        rate_jitter_fraction: Standard deviation of the relative frequency
            wander
            (0.02 → ±2% slow drift).
        phase: Initial phase in radians.
        seed: Seed for the frequency-wander realization, so traces are
            reproducible.
    """

    frequency_hz: float = 0.25
    amplitude_m: float = 5.0e-3
    harmonic_levels: tuple[float, ...] = (0.25, 0.08)
    rate_jitter_fraction: float = 0.01
    phase: float = 0.0
    seed: int = 0
    _wander_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        _check_frequency(self.frequency_hz)
        if self.amplitude_m <= 0:
            raise ConfigurationError(
                f"breathing amplitude must be positive, got {self.amplitude_m}"
            )
        if any(level < 0 for level in self.harmonic_levels):
            raise ConfigurationError("harmonic levels must be non-negative")
        if not 0 <= self.rate_jitter_fraction < 0.3:
            raise ConfigurationError(
                f"rate_jitter_fraction must be in [0, 0.3), got {self.rate_jitter_fraction}"
            )

    def _instantaneous_phase(self, t: np.ndarray) -> np.ndarray:
        """Integrated instantaneous frequency (radians).

        The wander is a smoothed random walk, regenerated deterministically
        from the seed for any time grid.
        """
        t = np.asarray(t, dtype=float)
        if self.rate_jitter_fraction == 0.0 or t.size < 2:  # phaselint: disable=PL004 -- exact-zero 'no wander' sentinel
            return 2.0 * np.pi * self.frequency_hz * t + self.phase
        rng = np.random.default_rng(self.seed)
        # One wander sample per second of signal, interpolated to the grid;
        # an AR(1) chain keeps the drift slow and bounded.
        duration = float(t[-1] - t[0]) if t[-1] > t[0] else 1.0
        n_knots = max(4, int(np.ceil(duration)) + 2)
        knots = np.empty(n_knots)
        knots[0] = 0.0
        rho = 0.95
        innovation = rng.normal(scale=self.rate_jitter_fraction * np.sqrt(1 - rho**2), size=n_knots - 1)
        for i in range(1, n_knots):
            knots[i] = rho * knots[i - 1] + innovation[i - 1]
        knot_times = t[0] + np.linspace(0.0, duration, n_knots)
        relative = np.interp(t, knot_times, knots)
        freq = self.frequency_hz * (1.0 + relative)
        dt = np.diff(t, prepend=t[0])
        return 2.0 * np.pi * np.cumsum(freq * dt) + self.phase

    def displacement(self, t: FloatArray) -> FloatArray:
        """Harmonic-rich chest motion with seeded frequency wander."""
        phi = self._instantaneous_phase(t)
        signal = np.cos(phi)
        for k, level in enumerate(self.harmonic_levels, start=2):
            signal += level * np.cos(k * phi)
        return self.amplitude_m * signal


@dataclass
class ApneicBreathing(BreathingModel):
    """Breathing with scripted cessation (apnea) episodes.

    Wraps a base breathing model and gates its displacement to (near) zero
    during configured pause intervals, with smooth half-second on/off ramps
    so the gating itself does not inject wideband transients.  Used by the
    sleep-monitoring example and the apnea-detection tests.

    Attributes:
        base: The breathing model being interrupted.
        pauses_s: ``(start, duration)`` pairs in seconds.
        residual: Fraction of chest motion remaining during a pause
            (obstructive apnea retains some paradoxical effort; 0 models a
            central apnea).
        ramp_s: On/off transition length.
    """

    base: BreathingModel = field(default_factory=SinusoidalBreathing)
    pauses_s: tuple[tuple[float, float], ...] = ((30.0, 15.0),)
    residual: float = 0.0
    ramp_s: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.residual < 1.0:
            raise ConfigurationError(
                f"residual must be in [0, 1), got {self.residual}"
            )
        if self.ramp_s < 0:
            raise ConfigurationError(f"ramp must be >= 0, got {self.ramp_s}")
        for start, duration in self.pauses_s:
            if duration <= 0 or start < 0:
                raise ConfigurationError(
                    f"invalid pause ({start}, {duration})"
                )

    @property
    def frequency_hz(self) -> float:  # type: ignore[override]
        """Breathing frequency of the underlying model (between pauses)."""
        return self.base.frequency_hz

    def gate(self, t: FloatArray) -> BoolArray:
        """Multiplicative envelope: 1 while breathing, ``residual`` paused."""
        t = np.asarray(t, dtype=float)
        envelope = np.ones_like(t)
        for start, duration in self.pauses_s:
            end = start + duration
            if self.ramp_s > 0:
                down = np.clip((t - start) / self.ramp_s, 0.0, 1.0)
                up = np.clip((t - end) / self.ramp_s, 0.0, 1.0)
                pause_depth = down - up  # 1 inside the pause, 0 outside
            else:
                pause_depth = ((t >= start) & (t < end)).astype(float)
            envelope = np.minimum(
                envelope, 1.0 - (1.0 - self.residual) * pause_depth
            )
        return envelope

    def displacement(self, t: FloatArray) -> FloatArray:
        """Breathing displacement gated to zero inside apnea windows."""
        return self.base.displacement(t) * self.gate(t)
