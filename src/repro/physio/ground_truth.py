"""Reference-sensor models standing in for the paper's ground-truth gear.

The paper validates against a NEULOG respiration belt and a fingertip pulse
oximeter.  In simulation the true rates are known exactly, but experiments
that want to model reference-sensor imperfection (quantization to whole bpm,
small sensor noise) can wrap the truth in these readers — e.g. Fig. 9's
"commercial fingertip pulse sensor reads 1.06 Hz" against a true 1.07 Hz
estimate is a quantization effect of exactly this kind.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .person import Person

__all__ = ["ReferenceSensor", "RespirationBelt", "PulseOximeter"]


@dataclass(frozen=True)
class ReferenceSensor:
    """Base reference sensor: reads a true rate with noise and quantization.

    Attributes:
        noise_bpm: Standard deviation of zero-mean Gaussian reading noise.
        resolution_bpm: Reading quantization step (0 disables quantization).
        seed: RNG seed for reproducible readings.
    """

    noise_bpm: float = 0.0
    resolution_bpm: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise_bpm < 0:
            raise ConfigurationError(
                f"noise_bpm must be >= 0, got {self.noise_bpm}"
            )
        if self.resolution_bpm < 0:
            raise ConfigurationError(
                f"resolution_bpm must be >= 0, got {self.resolution_bpm}"
            )

    def read(self, true_rate_bpm: float) -> float:
        """One reading of ``true_rate_bpm`` through the sensor model."""
        rng = np.random.default_rng(self.seed)
        reading = true_rate_bpm
        if self.noise_bpm > 0:
            reading += float(rng.normal(scale=self.noise_bpm))
        if self.resolution_bpm > 0:
            reading = round(reading / self.resolution_bpm) * self.resolution_bpm
        return float(reading)


@dataclass(frozen=True)
class RespirationBelt(ReferenceSensor):
    """NEULOG-style respiration belt: near-perfect at resting rates."""

    noise_bpm: float = 0.05
    resolution_bpm: float = 0.0

    def read_person(self, person: Person) -> float:
        """Breathing-rate reading for ``person`` (breaths/min)."""
        return self.read(person.breathing_rate_bpm)


@dataclass(frozen=True)
class PulseOximeter(ReferenceSensor):
    """Fingertip pulse oximeter: integer-bpm display, slight noise."""

    noise_bpm: float = 0.2
    resolution_bpm: float = 1.0

    def read_person(self, person: Person) -> float:
        """Heart-rate reading for ``person`` (beats/min).

        Raises:
            ConfigurationError: If the person has no heartbeat model.
        """
        if person.heart_rate_bpm is None:
            raise ConfigurationError(
                f"{person.name} has no heartbeat model to read"
            )
        return self.read(person.heart_rate_bpm)
