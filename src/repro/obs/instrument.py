"""The facade instrumented components talk to.

Every instrumented class in the repo takes an optional
``instrumentation:`` argument and stores
``instrumentation or NULL_INSTRUMENTATION``; the null object makes every
recording call a cheap early-return, so un-instrumented hot paths pay one
attribute check and nothing else (the <5 % overhead gate in
``benchmarks/test_obs_overhead.py`` measures the *enabled* case).

One :class:`Instrumentation` bundles the three collaborators:

* a :class:`~repro.obs.clock.Clock` (wall or simulated) all timers read,
* a :class:`~repro.obs.registry.MetricsRegistry` all metrics land in,
* optionally a :class:`~repro.obs.tracing.Tracer` when per-span stage
  traces are wanted on top of the histogram aggregates.

Usage from a component::

    self._obs = instrumentation or NULL_INSTRUMENTATION
    ...
    with self._obs.stage("calibration", component="pipeline"):
        calibrated = calibrate(...)
    self._obs.count("monitor_rejected_windows_total", labels={"reason": r})
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import ContextManager, Mapping

from .clock import Clock, WallClock
from .registry import (
    DEFAULT_DURATION_BUCKETS_S,
    MetricsRegistry,
)
from .tracing import StageTimer, Tracer

__all__ = ["Instrumentation", "NULL_INSTRUMENTATION"]

_NULL_CONTEXT: ContextManager[None] = nullcontext()


class Instrumentation:
    """Bundle of clock + registry (+ optional tracer) with no-op mode.

    With ``enabled=False`` every method is a do-nothing early return and
    ``stage`` hands back a shared null context manager — this is what the
    module-level :data:`NULL_INSTRUMENTATION` singleton is.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        enabled: bool = True,
    ):
        self.enabled = enabled
        self.clock: Clock = clock if clock is not None else WallClock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer

    def __repr__(self) -> str:
        return (
            f"Instrumentation(enabled={self.enabled}, clock={self.clock!r}, "
            f"n_series={len(self.registry)})"
        )

    def stage(
        self,
        stage: str,
        component: str = "pipeline",
    ) -> ContextManager[object]:
        """Context manager timing one named stage of a component.

        Records into the ``{component}_stage_duration_s`` histogram with a
        ``stage`` label, and opens a ``component.stage`` span when a
        tracer is attached.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        histogram = self.registry.histogram(
            f"{component}_stage_duration_s",
            help_text=f"Wall/simulated seconds spent per {component} stage.",
            labels={"stage": stage},
            bucket_bounds=DEFAULT_DURATION_BUCKETS_S,
        )
        return StageTimer(
            f"{component}.{stage}",
            self.clock,
            histogram=histogram,
            tracer=self.tracer,
        )

    def count(
        self,
        name: str,
        amount: float = 1.0,
        labels: Mapping[str, str] | None = None,
        help_text: str = "",
    ) -> None:
        """Increment the counter series ``(name, labels)`` by ``amount``."""
        if not self.enabled:
            return
        self.registry.counter(name, help_text=help_text, labels=labels).inc(
            amount
        )

    def gauge_set(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | None = None,
        help_text: str = "",
    ) -> None:
        """Set the gauge series ``(name, labels)`` to ``value``."""
        if not self.enabled:
            return
        self.registry.gauge(name, help_text=help_text, labels=labels).set(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | None = None,
        help_text: str = "",
        bucket_bounds: tuple[float, ...] = DEFAULT_DURATION_BUCKETS_S,
    ) -> None:
        """Record ``value`` into the histogram series ``(name, labels)``."""
        if not self.enabled:
            return
        self.registry.histogram(
            name,
            help_text=help_text,
            labels=labels,
            bucket_bounds=bucket_bounds,
        ).observe(value)


# Shared no-op used by every component without explicit instrumentation;
# its registry stays empty forever because `enabled` short-circuits all
# recording paths.
NULL_INSTRUMENTATION = Instrumentation(enabled=False)
