"""repro.obs — metrics, stage tracing, and profiling for the pipeline.

The subsystem has four small parts:

* :mod:`~repro.obs.clock` — the :class:`Clock` protocol and the single
  sanctioned :class:`WallClock` shim (PL001 bans ``time`` everywhere else
  under ``src/``); :class:`repro.service.SimulatedClock` satisfies the
  same protocol for deterministic runs.
* :mod:`~repro.obs.registry` — :class:`MetricsRegistry` holding counters,
  gauges, and fixed-bucket histograms, every name carrying a PL003 unit
  suffix.
* :mod:`~repro.obs.tracing` — :class:`Tracer`/:class:`Span` nested stage
  traces and the :class:`StageTimer` block timer.
* :mod:`~repro.obs.export` — canonical-JSON snapshots (byte-identical
  under fixed seed + simulated clock), Prometheus text format, table
  rendering, and snapshot diffing.

Components accept an optional :class:`Instrumentation` facade and fall
back to the no-op :data:`NULL_INSTRUMENTATION`; see
``docs/observability.md`` for the metric catalogue.
"""

from .clock import Clock, WallClock
from .export import (
    canonical_json,
    diff_snapshots,
    load_snapshot,
    render_prometheus,
    render_table,
)
from .instrument import NULL_INSTRUMENTATION, Instrumentation
from .naming import (
    METRIC_UNIT_SUFFIXES,
    validate_label_name,
    validate_metric_name,
)
from .registry import (
    DEFAULT_DURATION_BUCKETS_S,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import Span, StageTimer, Tracer

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_DURATION_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "METRIC_UNIT_SUFFIXES",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "Span",
    "StageTimer",
    "Tracer",
    "WallClock",
    "canonical_json",
    "diff_snapshots",
    "load_snapshot",
    "render_prometheus",
    "render_table",
    "validate_label_name",
    "validate_metric_name",
]
