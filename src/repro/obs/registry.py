"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the single sink every instrumented component
records into.  Design constraints, in order:

1. **Determinism** — a registry fed by a run on
   :class:`repro.service.SimulatedClock` with a fixed seed must snapshot
   byte-identically across runs: no wall-clock timestamps, no hash-order
   iteration (snapshots sort), no unbounded label explosion.
2. **Unit discipline** — every metric name must end in a sanctioned unit
   suffix (:mod:`repro.obs.naming`), the same PL003 vocabulary the linter
   enforces on code identifiers.
3. **Cheapness** — recording is a dict lookup plus an add; the <5 %
   overhead gate in ``benchmarks/test_obs_overhead.py`` holds the line.

Instruments are get-or-create: asking twice for the same
``(name, labels)`` returns the same object, so call sites never need to
thread instrument handles around.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterator, Mapping

from ..errors import ConfigurationError
from .naming import validate_label_name, validate_metric_name

__all__ = [
    "DEFAULT_DURATION_BUCKETS_S",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

# Log-ish spaced duration buckets (seconds): simulated-time deltas often
# land exactly on 0, so the smallest bound must catch it; the top bound
# covers a whole chaos drill.
DEFAULT_DURATION_BUCKETS_S: tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

# Power-of-two size buckets (packets/samples): checkpoint sizes, buffer
# depths.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    0.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    2048.0,
    4096.0,
)

LabelPairs = tuple[tuple[str, str], ...]


def _freeze_labels(labels: Mapping[str, str] | None) -> LabelPairs:
    """Sorted, validated ``(key, value)`` pairs — the identity of a series."""
    if not labels:
        return ()
    return tuple(
        (validate_label_name(str(k)), str(labels[k])) for k in sorted(labels)
    )


class Counter:
    """A monotonically increasing tally (create via
    :meth:`MetricsRegistry.counter`)."""

    kind = "counter"
    __slots__ = ("name", "help_text", "labels", "_value")

    def __init__(self, name: str, help_text: str, labels: LabelPairs):
        self.name = name
        self.help_text = help_text
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current tally."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the tally."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self._value += amount

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe sample."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help_text,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Gauge:
    """A value that can go up and down (create via
    :meth:`MetricsRegistry.gauge`)."""

    kind = "gauge"
    __slots__ = ("name", "help_text", "labels", "_value")

    def __init__(self, name: str, help_text: str, labels: LabelPairs):
        self.name = name
        self.help_text = help_text
        self.labels = labels
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the current value."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the current value."""
        self._value += amount

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe sample."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help_text,
            "labels": dict(self.labels),
            "value": self._value,
        }


class Histogram:
    """Fixed-bucket distribution (create via
    :meth:`MetricsRegistry.histogram`).

    Buckets are *upper bounds* (``value <= bound``); values above the last
    bound land in an implicit overflow bucket, so ``count`` always equals
    the number of observations.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "help_text",
        "labels",
        "bucket_bounds",
        "bucket_counts",
        "_sum",
        "_count",
    )

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: LabelPairs,
        bucket_bounds: tuple[float, ...],
    ):
        if not bucket_bounds:
            raise ConfigurationError(f"histogram {name} needs >= 1 bucket bound")
        if any(b > a for b, a in zip(bucket_bounds, bucket_bounds[1:])):
            raise ConfigurationError(
                f"histogram {name} bucket bounds must be ascending"
            )
        self.name = name
        self.help_text = help_text
        self.labels = labels
        self.bucket_bounds = tuple(float(b) for b in bucket_bounds)
        # One extra slot: the +Inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bucket_bounds) + 1)
        self._sum = 0.0
        self._count = 0

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bucket_bounds, value)] += 1
        self._sum += value
        self._count += 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe sample (per-bucket, not cumulative, counts)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help_text,
            "labels": dict(self.labels),
            "bucket_bounds": list(self.bucket_bounds),
            "bucket_counts": list(self.bucket_counts),
            "sum": self._sum,
            "count": self._count,
        }


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create home of every instrument in one process.

    A metric *family* is one name with one kind and one help string; a
    *series* is a family plus one concrete label set.  Registering the
    same name with a different kind (or, for histograms, different bucket
    bounds) is a configuration error — silently forking a family would
    make exports ambiguous.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, LabelPairs], Instrument] = {}
        self._families: dict[str, tuple[str, tuple[float, ...] | None]] = {}

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[Instrument]:
        """Iterate all series in deterministic (name, labels) order."""
        for key in sorted(self._series):
            yield self._series[key]

    def _admit(
        self,
        name: str,
        kind: str,
        bucket_bounds: tuple[float, ...] | None,
    ) -> None:
        validate_metric_name(name)
        known = self._families.get(name)
        if known is None:
            self._families[name] = (kind, bucket_bounds)
        elif known != (kind, bucket_bounds):
            raise ConfigurationError(
                f"metric {name!r} already registered as {known[0]} with "
                f"buckets {known[1]}; cannot re-register as {kind} with "
                f"buckets {bucket_bounds}"
            )

    def counter(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        """Get or create the counter series ``(name, labels)``."""
        self._admit(name, "counter", None)
        key = (name, _freeze_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = Counter(name, help_text, key[1])
            self._series[key] = series
        assert isinstance(series, Counter)
        return series

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        """Get or create the gauge series ``(name, labels)``."""
        self._admit(name, "gauge", None)
        key = (name, _freeze_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = Gauge(name, help_text, key[1])
            self._series[key] = series
        assert isinstance(series, Gauge)
        return series

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Mapping[str, str] | None = None,
        bucket_bounds: tuple[float, ...] = DEFAULT_DURATION_BUCKETS_S,
    ) -> Histogram:
        """Get or create the histogram series ``(name, labels)``."""
        bounds = tuple(float(b) for b in bucket_bounds)
        self._admit(name, "histogram", bounds)
        key = (name, _freeze_labels(labels))
        series = self._series.get(key)
        if series is None:
            series = Histogram(name, help_text, key[1], bounds)
            self._series[key] = series
        assert isinstance(series, Histogram)
        return series

    def snapshot(self) -> dict[str, Any]:
        """Deterministic JSON-safe snapshot of every series.

        Series are sorted by ``(name, labels)``; two registries that saw
        the same recording sequence produce equal snapshots regardless of
        instrument creation order.
        """
        return {
            "schema": "repro.obs/v1",
            "metrics": [series.to_dict() for series in self],
        }
