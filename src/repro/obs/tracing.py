"""Stage tracing: named spans on an injectable monotonic clock.

A :class:`Tracer` records :class:`Span`\\ s — named intervals measured on a
:class:`repro.obs.clock.Clock`.  Spans nest: entering a span inside another
records the child with ``depth + 1``, which is enough structure to render
an indented stage profile without the bookkeeping of full span IDs.

Determinism: on :class:`repro.service.SimulatedClock` all span timestamps
are simulated seconds, so traces from a seeded chaos drill replay
byte-identically.  On :class:`repro.obs.clock.WallClock` they are real
``perf_counter`` readings for profiling.

:class:`StageTimer` is the single-block convenience: one context manager
that opens a span (if tracing) and feeds the elapsed time into a histogram
(if measuring), shared by every instrumented component via
:meth:`repro.obs.instrument.Instrumentation.stage`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Iterator

from .clock import Clock
from .registry import Histogram

__all__ = ["Span", "StageTimer", "Tracer"]


@dataclass
class Span:
    """One named interval on the tracer's clock.

    ``end_s`` is ``None`` while the span is open; ``depth`` is the nesting
    level at entry (0 = top level).
    """

    name: str
    start_s: float
    end_s: float | None = None
    depth: int = 0

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (keys sorted by the exporter, not here)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "depth": self.depth,
        }


class Tracer:
    """Records nested spans against an injectable clock.

    Bounded: after ``max_spans`` retained spans, further spans are still
    timed but not kept (``n_dropped_total`` counts them), so a
    long-running monitor cannot grow memory without bound.
    """

    def __init__(self, clock: Clock, max_spans: int = 100_000):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._clock = clock
        self._max_spans = max_spans
        self._spans: list[Span] = []
        self._depth = 0
        self._n_dropped = 0

    @property
    def spans(self) -> tuple[Span, ...]:
        """Retained spans in entry order (open spans have ``end_s=None``)."""
        return tuple(self._spans)

    @property
    def n_dropped_total(self) -> int:
        """Spans discarded after the ``max_spans`` retention cap."""
        return self._n_dropped

    def begin(self, name: str) -> Span:
        """Open a span now; pair with :meth:`end`.

        Prefer the :meth:`span` context manager unless enter/exit must
        straddle method boundaries (as in :class:`StageTimer`).
        """
        record = Span(name=name, start_s=self._clock.now_s, depth=self._depth)
        if len(self._spans) < self._max_spans:
            self._spans.append(record)
        else:
            self._n_dropped += 1
        self._depth += 1
        return record

    def end(self, record: Span) -> None:
        """Close a span opened by :meth:`begin` at the current clock time."""
        self._depth -= 1
        record.end_s = self._clock.now_s

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a named span for the duration of the ``with`` block.

        The yielded :class:`Span` gains its ``end_s`` when the block
        exits (also on exception — a failing stage still has a duration).
        """
        record = self.begin(name)
        try:
            yield record
        finally:
            self.end(record)

    def clear(self) -> None:
        """Forget all recorded spans (drop count included)."""
        self._spans.clear()
        self._n_dropped = 0

    def to_jsonable(self) -> list[dict[str, Any]]:
        """JSON-safe list of all retained spans, in entry order."""
        return [span.to_dict() for span in self._spans]


class StageTimer:
    """Times one block into a histogram and/or a tracer span.

    Reusable but not reentrant: each ``with`` use times one interval.
    Either sink may be ``None``; with both ``None`` it degrades to a
    no-op context manager.
    """

    def __init__(
        self,
        name: str,
        clock: Clock,
        histogram: Histogram | None = None,
        tracer: Tracer | None = None,
    ):
        self.name = name
        self._clock = clock
        self._histogram = histogram
        self._tracer = tracer
        self._start_s = 0.0
        self._span: Span | None = None
        self.last_duration_s = 0.0

    def __enter__(self) -> "StageTimer":
        """Start timing (and open a span when a tracer is attached)."""
        if self._tracer is not None:
            self._span = self._tracer.begin(self.name)
            self._start_s = self._span.start_s
        else:
            self._start_s = self._clock.now_s
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        """Stop timing and record the elapsed seconds into the sinks."""
        if self._tracer is not None and self._span is not None:
            self._tracer.end(self._span)
            end_s = self._span.end_s if self._span.end_s is not None else 0.0
            self._span = None
        else:
            end_s = self._clock.now_s
        self.last_duration_s = end_s - self._start_s
        if self._histogram is not None:
            self._histogram.observe(self.last_duration_s)
