"""Snapshot exporters: canonical JSON, Prometheus text, table, and diff.

The canonical-JSON form is the interchange format (``repro monitor
--metrics-out``, ``repro metrics render/diff``, the CI ``BENCH_obs.json``
artifact).  Canonical means: sorted keys, compact separators, ``repr``
floats, trailing newline — two registries holding equal samples serialize
to *byte-identical* text, which is what the determinism acceptance test
byte-compares.

The Prometheus renderer follows the text exposition format (``# HELP`` /
``# TYPE`` headers, cumulative ``_bucket{le=...}`` histogram series) so a
real deployment can drop the snapshot behind any scrape endpoint.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..errors import ConfigurationError

__all__ = [
    "canonical_json",
    "diff_snapshots",
    "load_snapshot",
    "render_prometheus",
    "render_table",
]

_SCHEMA = "repro.obs/v1"


def canonical_json(snapshot: Mapping[str, Any]) -> str:
    """Serialize a registry snapshot to canonical JSON text.

    Sorted keys and compact separators make the bytes a pure function of
    the snapshot's contents; equal snapshots compare equal as files.
    """
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n"


def load_snapshot(text: str) -> dict[str, Any]:
    """Parse snapshot JSON text, validating the schema marker.

    Raises:
        ConfigurationError: The text is not valid JSON or does not carry
            the ``repro.obs/v1`` schema marker.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"snapshot is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != _SCHEMA:
        raise ConfigurationError(
            f"snapshot lacks the {_SCHEMA!r} schema marker; "
            "was this file produced by `repro monitor --metrics-out`?"
        )
    return data


def _fmt_value(value: float) -> str:
    """Shortest-roundtrip decimal form of a sample value."""
    return repr(float(value))


def _fmt_labels(labels: Mapping[str, str], extra: str = "") -> str:
    """Render ``{k="v",...}`` (empty string when there are no labels)."""
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Histogram buckets are emitted cumulatively with ``le`` upper bounds
    plus the conventional ``+Inf``, ``_sum``, and ``_count`` series.
    """
    lines: list[str] = []
    seen_headers: set[str] = set()
    for sample in snapshot.get("metrics", []):
        name = sample["name"]
        if name not in seen_headers:
            seen_headers.add(name)
            help_text = sample.get("help", "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {sample['kind']}")
        labels = sample.get("labels", {})
        if sample["kind"] == "histogram":
            cumulative = 0
            for bound, count in zip(
                sample["bucket_bounds"], sample["bucket_counts"]
            ):
                cumulative += count
                le = _fmt_labels(labels, extra=f'le="{_fmt_value(bound)}"')
                lines.append(f"{name}_bucket{le} {cumulative}")
            cumulative += sample["bucket_counts"][-1]
            le = _fmt_labels(labels, extra='le="+Inf"')
            lines.append(f"{name}_bucket{le} {cumulative}")
            lines.append(
                f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['sum'])}"
            )
            lines.append(f"{name}_count{_fmt_labels(labels)} {sample['count']}")
        else:
            lines.append(
                f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}"
            )
    return "\n".join(lines) + "\n"


def render_table(snapshot: Mapping[str, Any]) -> str:
    """Render a human-readable aligned table of all series.

    Histograms are summarized as ``count/sum/mean`` rather than dumped
    bucket-by-bucket; use the Prometheus format for full buckets.
    """
    rows: list[tuple[str, str, str, str]] = []
    for sample in snapshot.get("metrics", []):
        labels = sample.get("labels", {})
        label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        if sample["kind"] == "histogram":
            count = sample["count"]
            mean = sample["sum"] / count if count else 0.0
            value_text = f"count={count} sum={sample['sum']:.6g} mean={mean:.6g}"
        else:
            value_text = f"{sample['value']:.6g}"
        rows.append((sample["name"], sample["kind"], label_text, value_text))
    if not rows:
        return "(no metrics recorded)\n"
    headers = ("metric", "kind", "labels", "value")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(4)),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines) + "\n"


def _series_key(sample: Mapping[str, Any]) -> tuple[str, tuple[tuple[str, str], ...]]:
    labels = sample.get("labels", {})
    return sample["name"], tuple(sorted(labels.items()))


def diff_snapshots(
    old: Mapping[str, Any], new: Mapping[str, Any]
) -> list[dict[str, Any]]:
    """Structured differences between two snapshots.

    Returns one entry per changed series, each a dict with ``name``,
    ``labels``, ``change`` (``added`` / ``removed`` / ``changed``), and
    for value changes the ``old`` and ``new`` sample payloads.  Equal
    snapshots diff to an empty list.
    """
    old_series = {_series_key(s): s for s in old.get("metrics", [])}
    new_series = {_series_key(s): s for s in new.get("metrics", [])}
    entries: list[dict[str, Any]] = []
    for key in sorted(set(old_series) | set(new_series)):
        name, labels = key
        before = old_series.get(key)
        after = new_series.get(key)
        if before is None and after is not None:
            entries.append(
                {
                    "name": name,
                    "labels": dict(labels),
                    "change": "added",
                    "new": after,
                }
            )
        elif after is None and before is not None:
            entries.append(
                {
                    "name": name,
                    "labels": dict(labels),
                    "change": "removed",
                    "old": before,
                }
            )
        elif before != after:
            entries.append(
                {
                    "name": name,
                    "labels": dict(labels),
                    "change": "changed",
                    "old": before,
                    "new": after,
                }
            )
    return entries
