"""Metric naming discipline: every metric name carries its unit.

The repo-wide phaselint rule PL003 already forces *code* identifiers
(parameters, dataclass fields) to end in a unit suffix; exported metric
names are strings, invisible to an AST linter, so the registry enforces
the same vocabulary at registration time instead.  The suffix set below
mirrors ``unit-suffixes`` in ``[tool.phaselint]`` (a test cross-checks the
two lists), extended by the Prometheus counting conventions ``_total`` /
``_count``.

Examples of valid names::

    pipeline_stage_duration_s        # histogram of seconds
    monitor_rejected_windows_total   # counter
    supervisor_checkpoint_size_packets
    supervisor_fallback_level        # gauge of a dimensionless level
"""

from __future__ import annotations

import re

from ..errors import ConfigurationError

__all__ = ["METRIC_UNIT_SUFFIXES", "validate_metric_name", "validate_label_name"]

# Must stay equal to the `unit-suffixes` list in [tool.phaselint]
# (tests/obs/test_naming.py asserts the two sets match), so a metric name
# that passes the registry also passes a hypothetical PL003 check and
# vice versa.
METRIC_UNIT_SUFFIXES: frozenset[str] = frozenset(
    {
        "hz",
        "khz",
        "mhz",
        "ghz",
        "bpm",
        "s",
        "ms",
        "us",
        "ns",
        "min",
        "m",
        "cm",
        "mm",
        "db",
        "dbm",
        "samples",
        "packets",
        "bins",
        "fraction",
        "ratio",
        "norm",
        "level",
        "total",
        "count",
    }
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def validate_metric_name(name: str) -> str:
    """Validate (and return) a metric name.

    Args:
        name: Candidate metric name, e.g. ``"pipeline_stage_duration_s"``.

    Returns:
        ``name`` unchanged, for call-site chaining.

    Raises:
        ConfigurationError: The name is not ``snake_case`` or its final
            ``_``-separated token is not a sanctioned unit suffix.
    """
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"metric name {name!r} must be snake_case ([a-z][a-z0-9_]*)"
        )
    suffix = name.rsplit("_", 1)[-1]
    if suffix not in METRIC_UNIT_SUFFIXES:
        raise ConfigurationError(
            f"metric name {name!r} lacks a unit suffix: its final token "
            f"{suffix!r} is not one of the sanctioned suffixes "
            f"(e.g. _s, _hz, _packets, _fraction, _total, _count); "
            "the unit must travel with the name (PL003 discipline)"
        )
    return name


def validate_label_name(name: str) -> str:
    """Validate (and return) a label key (``snake_case``).

    Raises:
        ConfigurationError: The label key is not ``snake_case``.
    """
    if not _LABEL_RE.match(name):
        raise ConfigurationError(
            f"label name {name!r} must be snake_case ([a-z][a-z0-9_]*)"
        )
    return name
