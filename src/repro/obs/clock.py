"""The single sanctioned wall-clock shim of the whole codebase.

Every duration the observability layer measures flows through a
:class:`Clock` — an object exposing monotonically non-decreasing seconds as
``now_s``.  Two implementations exist:

* :class:`WallClock` (here) reads ``time.perf_counter`` and is what a real
  deployment profiles with;
* :class:`repro.service.SimulatedClock` satisfies the same protocol, so a
  chaos drill run on simulated time produces **deterministic** traces and
  metric snapshots — every "duration" is a simulated-time delta and
  replays byte-identically.

phaselint rule PL001 enforces that this file is the *only* module under
``src/`` that touches the ``time`` module (see ``wall-clock-shims`` in
``[tool.phaselint]``): any other import smuggles nondeterminism past the
simulated clock and breaks replayability.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "WallClock"]


@runtime_checkable
class Clock(Protocol):
    """What the observability layer requires of a time source.

    ``now_s`` must be monotonically non-decreasing; its zero point is
    arbitrary (only differences are ever used).
    :class:`repro.service.SimulatedClock` satisfies this protocol.
    """

    @property
    def now_s(self) -> float:
        """Current time in seconds (monotonic, arbitrary epoch)."""
        ...


class WallClock:
    """Real elapsed time via ``time.perf_counter``.

    ``perf_counter`` (not ``time.time``) because durations must be immune
    to NTP steps and DST; the absolute value is meaningless by design, so
    nothing can accidentally persist a wall-clock timestamp into a
    supposedly deterministic artifact.
    """

    @property
    def now_s(self) -> float:
        """Current monotonic time in seconds."""
        return time.perf_counter()

    def __repr__(self) -> str:
        return "WallClock()"
