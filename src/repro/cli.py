"""Command-line interface: simulate, estimate, and reproduce from a shell.

Twelve subcommands::

    repro-phasebeat simulate  --scenario lab --duration 30 --out trace.npz
    repro-phasebeat estimate  trace.npz --persons 1 --heart
    repro-phasebeat dataset   --out corpus/ --count 10 --duration 30
    repro-phasebeat experiment fig11 --trials 20
    repro-phasebeat monitor   --duration 90 --chaos-scenario faults.json
    repro-phasebeat fleet     --sessions 50 --scenario shard-crash
    repro-phasebeat sanitize  --mode fleet --scenario shard-crash
    repro-phasebeat metrics   render metrics.json --format prometheus
    repro-phasebeat record    --scenario lab --duration 20 --out store/
    repro-phasebeat replay    --store store/ --json report.json
    repro-phasebeat backtest  --corpus corpus/
    repro-phasebeat learn     train --mode rf --out bundle.json

``simulate`` builds one of the paper's three deployments and writes a CSI
trace; ``estimate`` runs the PhaseBeat pipeline on a stored trace;
``dataset`` generates a labelled corpus; ``experiment`` regenerates one of
the paper's figures and prints the same rows/series the benchmarks assert
against; ``monitor`` runs the supervised monitoring service over a
simulated scene, optionally under a chaos scenario (a shipped name or a
JSON fault-schedule file), and prints the event log and health summary —
``--metrics-out`` / ``--events-out`` additionally dump the run's metrics
snapshot (canonical JSON) and event log (JSONL); ``fleet`` runs a whole
fleet of sessions through the gateway under a fleet chaos scenario and
checks the isolation / recovery / bounded-shedding invariants;
``sanitize`` runs a seeded scenario (solo or fleet) twice in-process and
byte-diffs the event log, metrics snapshot, and estimates — the runtime
side of the phaselint determinism rules; ``metrics`` renders or diffs
those snapshots offline.

The storage trio: ``record`` simulates a capture and records it into a
crash-safe ``.cst`` trace store through the recording tap; ``replay``
salvage-reads a store and drives the supervised monitor from it at
simulated speed, reporting estimates and the wall-time speedup;
``backtest`` replays a committed corpus of recorded scenarios and diffs
median estimates against the manifest baselines, exiting non-zero on a
regression (see ``docs/storage.md``).

``learn`` drives the learned estimator track (see ``docs/learned.md``):
``learn train`` fits the tiny numpy model family from the simulator (or a
recorded ``.cst`` store via ``--store``) and writes a byte-reproducible
canonical-JSON bundle; ``learn eval`` loads a bundle and runs a paired
learned-vs-classical head-to-head through the evaluation harness.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .core.pipeline import PhaseBeat, PhaseBeatConfig
from .errors import ReproError
from .eval import experiments
from .io_.dataset import generate_dataset
from .io_.trace import CSITrace
from .rf.receiver import capture_trace
from .rf.scene import (
    Scenario,
    corridor_scenario,
    laboratory_scenario,
    through_wall_scenario,
)

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    name.split("_", 1)[0]: getattr(experiments, name)
    for name in experiments.__all__
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-phasebeat",
        description="PhaseBeat (ICDCS 2017) reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="simulate a CSI capture and write it to .npz"
    )
    simulate.add_argument(
        "--scenario",
        choices=("lab", "through-wall", "corridor"),
        default="lab",
        help="deployment to simulate",
    )
    simulate.add_argument("--duration", type=float, default=30.0, help="seconds")
    simulate.add_argument(
        "--rate", type=float, default=400.0, help="packets per second"
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--persons", type=int, default=1, help="number of subjects"
    )
    simulate.add_argument(
        "--distance", type=float, default=None,
        help="TX-RX separation for through-wall / corridor (m)",
    )
    simulate.add_argument(
        "--directional", action="store_true",
        help="aim a directional TX at the first subject (heart setup)",
    )
    simulate.add_argument("--out", required=True, help="output .npz path")

    estimate = sub.add_parser(
        "estimate", help="run the PhaseBeat pipeline on a stored trace"
    )
    estimate.add_argument("trace", help="path to a .npz trace")
    estimate.add_argument("--persons", type=int, default=1)
    estimate.add_argument(
        "--heart", action="store_true", help="also estimate heart rate"
    )
    estimate.add_argument(
        "--method",
        choices=("peak", "fft", "music", "music-single", "tensorbeat"),
        default=None,
        help="breathing estimator override",
    )
    estimate.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the environment-detection stationarity gate",
    )

    dataset = sub.add_parser(
        "dataset", help="generate a labelled corpus of simulated traces"
    )
    dataset.add_argument("--out", required=True, help="corpus directory")
    dataset.add_argument("--count", type=int, default=10)
    dataset.add_argument("--duration", type=float, default=30.0)
    dataset.add_argument("--rate", type=float, default=400.0)
    dataset.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser(
        "experiment", help="regenerate a paper figure's data"
    )
    experiment.add_argument(
        "figure",
        choices=sorted(_EXPERIMENTS),
        help="which figure to regenerate (e.g. fig11)",
    )
    experiment.add_argument(
        "--trials", type=int, default=None,
        help="override the experiment's default trial count",
    )
    experiment.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the result dictionary as JSON",
    )

    monitor = sub.add_parser(
        "monitor",
        help="run the supervised monitoring service on a simulated scene",
    )
    monitor.add_argument("--duration", type=float, default=90.0, help="seconds")
    monitor.add_argument(
        "--rate", type=float, default=100.0, help="packets per second"
    )
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument(
        "--chaos-scenario", default=None, metavar="NAME_OR_PATH",
        help="a shipped scenario name (e.g. source-crash) or a JSON "
        "fault-schedule file; omit for a fault-free run",
    )
    monitor.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the chaos report as JSON",
    )
    monitor.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the faulted run's metrics snapshot as canonical JSON "
        "(byte-identical across identical runs)",
    )
    monitor.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="write the faulted run's event log as JSON Lines",
    )

    fleet = sub.add_parser(
        "fleet",
        help="run a session fleet through the gateway under fleet chaos",
    )
    fleet.add_argument(
        "--sessions", type=int, default=20, help="fleet size"
    )
    fleet.add_argument(
        "--duration", type=float, default=24.0,
        help="simulated capture length per session (seconds)",
    )
    fleet.add_argument(
        "--rate", type=float, default=50.0, help="packets per second"
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--scenario", default=None, metavar="NAME_OR_PATH",
        help="a shipped fleet scenario name (e.g. shard-crash) or a JSON "
        "fault-schedule file; omit for a fault-free run",
    )
    fleet.add_argument(
        "--no-isolation-check", action="store_true",
        help="skip the solo-baseline byte-compare (faster for large fleets)",
    )
    fleet.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the fleet chaos report as JSON",
    )
    fleet.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the fleet run's metrics snapshot as canonical JSON "
        "(byte-identical across identical runs)",
    )
    fleet.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="write the fleet event log as JSON Lines",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help=(
            "run a seeded scenario twice in-process and byte-diff the "
            "event log, metrics snapshot, and estimates"
        ),
    )
    sanitize.add_argument(
        "--mode",
        choices=("solo", "fleet"),
        default="solo",
        help="solo chaos scenario or whole-fleet scenario (default: solo)",
    )
    sanitize.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help=(
            "shipped scenario name (default: source-crash for solo, "
            "shard-crash for fleet)"
        ),
    )
    sanitize.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="simulated duration per run (default: 90 solo / 24 fleet)",
    )
    sanitize.add_argument(
        "--sample-rate", type=float, default=None, metavar="HZ",
        help="CSI sample rate (default: 100 solo / 50 fleet)",
    )
    sanitize.add_argument(
        "--sessions", type=int, default=12, metavar="N",
        help="fleet size in --mode fleet (default: 12)",
    )
    sanitize.add_argument(
        "--seed", type=int, default=0, help="scenario seed for both runs"
    )
    sanitize.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )

    metrics = sub.add_parser(
        "metrics", help="render or diff metrics snapshots from --metrics-out"
    )
    metrics_sub = metrics.add_subparsers(dest="metrics_command", required=True)
    render = metrics_sub.add_parser(
        "render", help="pretty-print one snapshot"
    )
    render.add_argument("snapshot", help="path to a --metrics-out JSON file")
    render.add_argument(
        "--format",
        choices=("table", "prometheus", "json"),
        default="table",
        help="output format (default: table)",
    )
    diff = metrics_sub.add_parser(
        "diff", help="compare two snapshots series-by-series"
    )
    diff.add_argument("old", help="baseline snapshot path")
    diff.add_argument("new", help="candidate snapshot path")

    record = sub.add_parser(
        "record",
        help="simulate a capture and record it into a crash-safe trace store",
    )
    record.add_argument(
        "--scenario",
        choices=("lab", "through-wall", "corridor"),
        default="lab",
        help="deployment to simulate",
    )
    record.add_argument("--duration", type=float, default=20.0, help="seconds")
    record.add_argument(
        "--rate", type=float, default=30.0, help="packets per second"
    )
    record.add_argument("--seed", type=int, default=0)
    record.add_argument(
        "--persons", type=int, default=1, help="number of subjects"
    )
    record.add_argument(
        "--distance", type=float, default=None,
        help="TX-RX separation for through-wall / corridor (m)",
    )
    record.add_argument(
        "--session", default="", metavar="ID",
        help="session id stamped into segment headers",
    )
    record.add_argument(
        "--stem", default="trace", help="store name inside --out"
    )
    record.add_argument(
        "--rotate-kib", type=int, default=256, metavar="KIB",
        help="segment rotation budget in KiB (default: 256)",
    )
    record.add_argument(
        "--flush-every", type=int, default=64, metavar="N",
        help="durability boundary every N records (0 = only on close)",
    )
    record.add_argument(
        "--out", required=True, help="store directory (created if absent)"
    )

    replay = sub.add_parser(
        "replay",
        help="replay a recorded store through the supervised monitor",
    )
    replay.add_argument(
        "--store", required=True, help="store directory written by record"
    )
    replay.add_argument(
        "--stem", default="trace", help="store name inside --store"
    )
    replay.add_argument(
        "--window", type=float, default=8.0, help="analysis window (seconds)"
    )
    replay.add_argument(
        "--hop", type=float, default=4.0, help="estimate cadence (seconds)"
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the replay summary as JSON",
    )

    backtest = sub.add_parser(
        "backtest",
        help="replay a recorded corpus and diff estimates against baselines",
    )
    backtest.add_argument(
        "--corpus", default="corpus", help="corpus directory with manifest.json"
    )
    backtest.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    backtest.add_argument("--seed", type=int, default=0)
    backtest.add_argument(
        "--inject-regression-bpm", type=float, default=0.0, metavar="BPM",
        help="bias every estimate by this much — a gate self-test that "
        "models an estimator regression and must make the backtest fail",
    )
    backtest.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the backtest report as JSON",
    )

    learn = sub.add_parser(
        "learn", help="train or evaluate the learned estimator track"
    )
    learn_sub = learn.add_subparsers(dest="learn_command", required=True)
    learn_train = learn_sub.add_parser(
        "train",
        help="fit the model family and write a canonical-JSON bundle",
    )
    learn_train.add_argument(
        "--mode",
        choices=("synthetic", "rf"),
        default="rf",
        help="corpus source: fast synthetic windows or full RF simulation "
        "(default: rf; ignored with --store)",
    )
    learn_train.add_argument(
        "--store", default=None, metavar="DIR",
        help="train from a recorded .cst store instead of the simulator",
    )
    learn_train.add_argument(
        "--stem", action="append", default=None, metavar="NAME",
        help="store stem inside --store (repeatable; default: all)",
    )
    learn_train.add_argument(
        "--windows", type=int, default=160,
        help="corpus size in windows (default: 160)",
    )
    learn_train.add_argument("--seed", type=int, default=0)
    learn_train.add_argument(
        "--no-mlp", action="store_true",
        help="skip the optional MLP rate head (faster, smaller bundle)",
    )
    learn_train.add_argument(
        "--out", required=True, help="bundle JSON output path"
    )
    learn_eval = learn_sub.add_parser(
        "eval",
        help="paired learned-vs-classical head-to-head on one scenario",
    )
    learn_eval.add_argument("bundle", help="bundle JSON written by learn train")
    learn_eval.add_argument(
        "--scenario",
        choices=("lab", "through-wall"),
        default="through-wall",
        help="deployment family (default: through-wall)",
    )
    learn_eval.add_argument(
        "--distance", type=float, default=6.5,
        help="TX-RX separation for through-wall (m, default: 6.5)",
    )
    learn_eval.add_argument(
        "--trials", type=int, default=8, help="paired trials (default: 8)"
    )
    learn_eval.add_argument(
        "--duration", type=float, default=30.0, help="seconds per trial"
    )
    learn_eval.add_argument(
        "--rate", type=float, default=50.0, help="packets per second"
    )
    learn_eval.add_argument("--seed", type=int, default=0)
    learn_eval.add_argument(
        "--heavy", action="store_true",
        help="degrade every capture with the heavy impairment mix "
        "(loss + timestamp jitter + impulses + subcarrier nulls)",
    )
    learn_eval.add_argument(
        "--mlp", action="store_true",
        help="serve the MLP rate head instead of the ridge head",
    )
    learn_eval.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the per-method error summary as JSON",
    )
    return parser


def _make_scenario(
    name: str,
    n_persons: int,
    seed: int,
    *,
    distance: float | None = None,
    directional: bool = False,
) -> Scenario:
    """Build one of the paper's deployments with seeded subjects."""
    from .eval.harness import default_subject

    rng = np.random.default_rng(seed)
    persons = [
        default_subject(rng, with_heartbeat=True) for _ in range(n_persons)
    ]
    if name == "lab":
        return laboratory_scenario(
            persons, directional_tx=directional, clutter_seed=seed
        )
    if name == "through-wall":
        return through_wall_scenario(
            distance or 4.0, persons, clutter_seed=seed
        )
    return corridor_scenario(distance or 5.0, persons, clutter_seed=seed)


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = _make_scenario(
        args.scenario,
        args.persons,
        args.seed,
        distance=args.distance,
        directional=args.directional,
    )
    trace = capture_trace(
        scenario,
        duration_s=args.duration,
        sample_rate_hz=args.rate,
        seed=args.seed,
    )
    path = trace.save(args.out)
    truth = ", ".join(f"{r:.2f}" for r in trace.meta["breathing_rates_bpm"])
    print(f"wrote {path} ({trace.n_packets} packets, truth: {truth} bpm)")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    trace = CSITrace.load(args.trace)
    config = PhaseBeatConfig(enforce_stationarity=not args.no_gate)

    result = PhaseBeat(config).process(
        trace,
        n_persons=args.persons,
        estimate_heart=args.heart,
        breathing_method=args.method,
    )
    print("breathing:", np.round(result.breathing_rates_bpm, 2), "bpm")
    if result.heart_rate_bpm is not None:
        print(f"heart:     {result.heart_rate_bpm:.2f} bpm")
    diag = result.diagnostics
    print(
        f"V={diag.v_statistic:.3f} ({diag.environment_state.value}), "
        f"subcarrier {diag.selected_subcarrier} on pair "
        f"{diag.selected_antenna_pair}"
    )
    if "breathing_rates_bpm" in trace.meta:
        truth = trace.meta["breathing_rates_bpm"]
        print("ground truth:", np.round(truth, 2), "bpm")
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .eval.harness import default_subject

    def factory(k: int, rng: np.random.Generator) -> Scenario:
        return laboratory_scenario(
            [default_subject(rng)], clutter_seed=args.seed + k
        )

    dataset = generate_dataset(
        args.out,
        factory,
        args.count,
        duration_s=args.duration,
        sample_rate_hz=args.rate,
        base_seed=args.seed,
    )
    print(f"wrote {len(dataset)} traces to {args.out}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    fn = _EXPERIMENTS[args.figure]
    kwargs = {}
    if args.trials is not None:
        import inspect

        if "n_trials" in inspect.signature(fn).parameters:
            kwargs["n_trials"] = args.trials
    result = fn(**kwargs)
    _print_experiment(args.figure, result)
    if args.json:
        import json
        from pathlib import Path

        Path(args.json).write_text(
            json.dumps(_jsonable(result), indent=2)
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import MetricsRegistry, canonical_json
    from .service import SHIPPED_SCENARIOS, ChaosScenario, load_scenario
    from .service.chaos import run_chaos

    if args.chaos_scenario is None:
        scenario = ChaosScenario(
            name="fault-free", faults=(), description="no faults injected"
        )
    elif args.chaos_scenario in SHIPPED_SCENARIOS:
        scenario = SHIPPED_SCENARIOS[args.chaos_scenario]
    elif Path(args.chaos_scenario).exists():
        scenario = load_scenario(args.chaos_scenario)
    else:
        names = ", ".join(sorted(SHIPPED_SCENARIOS))
        print(
            f"error: {args.chaos_scenario!r} is neither a shipped scenario "
            f"({names}) nor a readable JSON file",
            file=sys.stderr,
        )
        return 2

    registry = MetricsRegistry() if args.metrics_out else None
    report = run_chaos(
        scenario,
        duration_s=args.duration,
        sample_rate_hz=args.rate,
        seed=args.seed,
        registry=registry,
    )

    print(f"=== monitor: scenario {scenario.name} ===")
    if scenario.description:
        print(scenario.description)
    print(f"capture: {report.trace_quality}")
    print(f"ground truth: {report.truth_bpm:.2f} bpm")
    print()
    print("event log:")
    for event in report.events:
        detail = " ".join(f"{k}={v}" for k, v in event.detail.items())
        print(f"  t={event.time_s:7.2f}s  {event.kind:<26s} {detail}")
    print()
    print("health summary:")
    health = report.health
    print(
        f"  health={health['health']} method={health['method']} "
        f"restarts={health['monitor_restarts']} breaker={health['breaker']}"
    )
    print(f"  source counters: {health['source_counters']}")
    print(
        f"  estimates: {health['n_estimates']} total, "
        f"{report.n_post_recovery} fresh post-recovery"
    )
    print(
        f"  median error: fault-free {report.fault_free_median_error_bpm:.3f} "
        f"bpm, post-recovery {report.post_recovery_median_error_bpm:.3f} bpm"
    )
    violations = report.violations()
    print(f"  recovery invariants: {'OK' if not violations else violations}")
    if args.json:
        import json

        Path(args.json).write_text(json.dumps(report.to_jsonable(), indent=2))
        print(f"wrote {args.json}")
    if registry is not None:
        Path(args.metrics_out).write_text(canonical_json(registry.snapshot()))
        print(f"wrote {args.metrics_out}")
    if args.events_out:
        Path(args.events_out).write_text(report.events.to_jsonl())
        print(f"wrote {args.events_out}")
    return 0 if not violations else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .obs import MetricsRegistry
    from .service.fleet import (
        FLEET_SCENARIOS,
        FleetScenario,
        run_fleet_chaos,
    )

    if args.scenario is None:
        scenario = FleetScenario(
            name="fault-free", faults=(), description="no faults injected"
        )
    elif args.scenario in FLEET_SCENARIOS:
        scenario = FLEET_SCENARIOS[args.scenario]
    elif Path(args.scenario).exists():
        scenario = FleetScenario.from_json(Path(args.scenario).read_text())
    else:
        names = ", ".join(sorted(FLEET_SCENARIOS))
        print(
            f"error: {args.scenario!r} is neither a shipped fleet scenario "
            f"({names}) nor a readable JSON file",
            file=sys.stderr,
        )
        return 2

    registry = MetricsRegistry() if args.metrics_out else None
    report = run_fleet_chaos(
        scenario,
        n_sessions=args.sessions,
        duration_s=args.duration,
        sample_rate_hz=args.rate,
        seed=args.seed,
        registry=registry,
        check_isolation=not args.no_isolation_check,
    )

    print(f"=== fleet: scenario {scenario.name} ===")
    if scenario.description:
        print(scenario.description)
    summary = report.fleet_summary
    print(
        f"sessions: {summary['n_sessions']} on {summary['n_shards']} shards, "
        f"{summary['rounds']} rounds"
    )
    print(f"  by status: {summary['by_status']}")
    print(f"  by health: {summary['by_health']}")
    print(
        f"  shed: {len(report.shed_ids)}/{report.max_shed_sessions} budget, "
        f"queue drops: {summary['n_queue_dropped']}, "
        f"estimates: {report.n_estimates_total}"
    )
    if report.faulted_ids:
        print(f"  faulted: {len(report.faulted_ids)} sessions")
    violations = report.violations()
    print(f"  fleet invariants: {'OK' if not violations else violations}")
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_jsonable(), indent=2))
        print(f"wrote {args.json}")
    if registry is not None:
        Path(args.metrics_out).write_text(report.metrics_json)
        print(f"wrote {args.metrics_out}")
    if args.events_out:
        Path(args.events_out).write_text(report.events_jsonl)
        print(f"wrote {args.events_out}")
    return 0 if not violations else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import (
        canonical_json,
        diff_snapshots,
        load_snapshot,
        render_prometheus,
        render_table,
    )

    def read(path: str) -> str:
        try:
            return Path(path).read_text()
        except OSError as exc:
            raise ReproError(f"cannot read snapshot {path!r}: {exc}") from exc

    if args.metrics_command == "render":
        snapshot = load_snapshot(read(args.snapshot))
        if args.format == "prometheus":
            sys.stdout.write(render_prometheus(snapshot))
        elif args.format == "json":
            sys.stdout.write(canonical_json(snapshot))
        else:
            sys.stdout.write(render_table(snapshot))
        return 0

    old = load_snapshot(read(args.old))
    new = load_snapshot(read(args.new))
    changes = diff_snapshots(old, new)
    if not changes:
        print("snapshots are identical")
        return 0

    def brief(sample: dict) -> str:
        if sample["kind"] == "histogram":
            return f"count={sample['count']} sum={sample['sum']:.6g}"
        return f"{sample['value']:.6g}"

    for change in changes:
        labels = "".join(
            f" {k}={v}" for k, v in sorted(change["labels"].items())
        )
        if change["change"] == "added":
            print(f"+ {change['name']}{labels}  {brief(change['new'])}")
        elif change["change"] == "removed":
            print(f"- {change['name']}{labels}  {brief(change['old'])}")
        else:
            print(
                f"~ {change['name']}{labels}  "
                f"{brief(change['old'])} -> {brief(change['new'])}"
            )
    return 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json as json_module

    from .sanitize import sanitize_fleet, sanitize_solo

    if args.mode == "fleet":
        report = sanitize_fleet(
            args.scenario or "shard-crash",
            n_sessions=args.sessions,
            duration_s=args.duration if args.duration is not None else 24.0,
            sample_rate_hz=(
                args.sample_rate if args.sample_rate is not None else 50.0
            ),
            seed=args.seed,
        )
    else:
        report = sanitize_solo(
            args.scenario or "source-crash",
            duration_s=args.duration if args.duration is not None else 90.0,
            sample_rate_hz=(
                args.sample_rate if args.sample_rate is not None else 100.0
            ),
            seed=args.seed,
        )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return 0 if report.clean else 1


def _cmd_record(args: argparse.Namespace) -> int:
    from .service.clock import SimulatedClock
    from .service.sources import TracePacketSource
    from .store import DirectoryBackend, RecordingTap

    scenario = _make_scenario(
        args.scenario, args.persons, args.seed, distance=args.distance
    )
    trace = capture_trace(
        scenario,
        duration_s=args.duration,
        sample_rate_hz=args.rate,
        seed=args.seed,
    )
    clock = SimulatedClock()
    tap = RecordingTap(
        TracePacketSource(trace, clock),
        DirectoryBackend(args.out),
        args.stem,
        sample_rate_hz=args.rate,
        session_id=args.session,
        subcarrier_indices=[int(i) for i in trace.subcarrier_indices],
        meta=_jsonable(trace.meta),
        rotate_bytes=args.rotate_kib * 1024,
        flush_every_records=args.flush_every,
    )
    while not tap.exhausted:
        tap.next_packet()
    tap.close()
    digest = tap.digest()
    truth = ", ".join(
        f"{r:.2f}" for r in trace.meta["breathing_rates_bpm"]
    )
    print(
        f"recorded {tap.n_recorded} packets into {args.out} "
        f"({len(digest['segments'])} segment(s), truth: {truth} bpm)"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .core.streaming import StreamingConfig
    from .obs.clock import WallClock
    from .service.clock import SimulatedClock
    from .service.supervisor import MonitorSupervisor
    from .store import DirectoryBackend, ReplayPacketSource

    backend = DirectoryBackend(args.store)
    wall = WallClock()
    wall_start = wall.now_s
    clock = SimulatedClock()
    probe = ReplayPacketSource(backend, args.stem, clock)
    supervisor = MonitorSupervisor(
        clock=clock,
        streaming_config=StreamingConfig(window_s=args.window, hop_s=args.hop),
        seed=args.seed,
    )
    supervisor.add_subject(
        "replay",
        lambda start_at_s: ReplayPacketSource(
            backend,
            args.stem,
            clock,
            start_at_s=start_at_s if start_at_s > 0 else None,
        ),
        probe.sample_rate_hz,
    )
    estimates = supervisor.run()["replay"]
    wall_s = max(wall.now_s - wall_start, 1e-9)
    speedup = probe.duration_s / wall_s
    salvage = probe.salvage_report

    print(f"=== replay: {args.store} ({args.stem}) ===")
    print(
        f"records: {probe.n_packets_total} over {probe.duration_s:.1f}s "
        f"recorded, replayed in {wall_s:.2f}s wall ({speedup:.1f}x real time)"
    )
    if not salvage.clean:
        print(
            f"salvage: {salvage.n_records_recovered} recovered, "
            f"{len(salvage.issues)} issue(s), "
            f"{salvage.n_bytes_skipped} byte(s) skipped"
        )
    usable = [e for e in estimates if e.fresh and e.ok]
    for e in usable:
        print(f"  t={e.time_s:7.2f}s  {e.rate_bpm:6.2f} bpm  ({e.method})")
    print(f"estimates: {len(usable)} usable of {len(estimates)}")
    if args.json:
        Path(args.json).write_text(
            json.dumps(
                {
                    "store": args.store,
                    "stem": args.stem,
                    "n_records": probe.n_packets_total,
                    "recorded_duration_s": probe.duration_s,
                    "wall_s": wall_s,
                    "speedup_ratio": speedup,
                    "salvage": salvage.to_jsonable(),
                    "estimates": [e.to_dict() for e in estimates],
                },
                indent=2,
            )
        )
        print(f"wrote {args.json}")
    return 0


def _cmd_backtest(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .store.backtest import run_backtest

    report = run_backtest(
        args.corpus,
        scenarios=args.scenario,
        seed=args.seed,
        inject_bias_bpm=args.inject_regression_bpm,
    )
    print(report.format_text())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_jsonable(), indent=2)
        )
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


def _cmd_learn(args: argparse.Namespace) -> int:
    if args.learn_command == "train":
        return _cmd_learn_train(args)
    return _cmd_learn_eval(args)


def _cmd_learn_train(args: argparse.Namespace) -> int:
    from .learn import TrainingConfig, save_bundle, train, train_from_store

    config = TrainingConfig(
        mode=args.mode,
        n_windows=args.windows,
        seed=args.seed,
        with_mlp=not args.no_mlp,
    )
    if args.store is not None:
        bundle = train_from_store(
            args.store,
            tuple(args.stem) if args.stem else None,
            config=config,
        )
    else:
        bundle = train(config)
    save_bundle(bundle, args.out)
    meta = bundle.meta
    heads = ["ridge"]
    if bundle.breathing_mlp is not None:
        heads.append("mlp")
    if bundle.apnea_model is not None:
        heads.append("apnea")
    print(
        f"trained on {meta.get('n_windows', '?')} windows "
        f"(mode={meta.get('mode')}, seed={meta.get('seed')})"
    )
    print(f"heads: {', '.join(heads)}")
    if "train_mae_bpm" in meta:
        print(f"train MAE: {meta['train_mae_bpm']:.2f} bpm")
    print(f"wrote {args.out}")
    return 0


def _cmd_learn_eval(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .eval.harness import default_subject, run_breathing_trials
    from .learn import LearnedEstimator, read_bundle
    from .physio.person import Person
    from .rf.impairments import (
        BernoulliLoss,
        Impairment,
        ImpulsiveCorruption,
        SubcarrierNulls,
        TimestampJitter,
    )

    bundle = read_bundle(args.bundle)
    learned = LearnedEstimator(bundle, use_mlp=args.mlp)

    def factory(k: int, rng: np.random.Generator) -> Scenario:
        subject = default_subject(rng, with_heartbeat=False)
        person = Person(
            position=(2.5, 0.8, 1.0),
            breathing=subject.breathing,
            heartbeat=None,
        )
        if args.scenario == "lab":
            return laboratory_scenario([person], clutter_seed=args.seed + k)
        return through_wall_scenario(
            args.distance,
            [person],
            wall_loss_db=10.0,
            clutter_seed=args.seed + k,
        )

    def impairments(k: int, rng: np.random.Generator) -> list[Impairment]:
        if not args.heavy:
            return []
        return [
            BernoulliLoss(loss_fraction=0.4),
            TimestampJitter(std_s=8e-3),
            ImpulsiveCorruption(hit_fraction=0.05, magnitude=12.0),
            SubcarrierNulls(n_nulls=8),
        ]

    results = run_breathing_trials(
        factory,
        args.trials,
        duration_s=args.duration,
        sample_rate_hz=args.rate,
        methods=("phasebeat", "learned"),
        base_seed=args.seed,
        learned=learned,
        impairments_factory=impairments,
    )
    condition = "heavy impairments" if args.heavy else "clean capture"
    print(
        f"=== learn eval: {args.scenario} ({condition}), "
        f"{args.trials} paired trials ==="
    )
    summary: dict[str, dict[str, float]] = {}
    for method in ("phasebeat", "learned"):
        errors = results.errors(method)
        row = {
            "median_error_bpm": float(np.median(errors)),
            "mean_error_bpm": float(np.mean(errors)),
            "failure_rate": results.failure_rate(method),
        }
        summary[method] = row
        print(
            f"  {method:<10s} median {row['median_error_bpm']:6.2f} bpm, "
            f"mean {row['mean_error_bpm']:6.2f} bpm, "
            f"failures {row['failure_rate']:.0%}"
        )
    margin = (
        summary["phasebeat"]["median_error_bpm"]
        - summary["learned"]["median_error_bpm"]
    )
    print(f"  learned margin: {margin:+.2f} bpm median (positive = better)")
    if args.json:
        Path(args.json).write_text(
            json.dumps({"condition": condition, "methods": summary}, indent=2)
        )
        print(f"wrote {args.json}")
    return 0


def _jsonable(value):
    """Recursively convert an experiment result to JSON-safe types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _print_experiment(figure: str, result: dict) -> None:
    """Generic pretty-printer for experiment dictionaries."""
    print(f"=== {figure} ===")
    for key, value in result.items():
        if isinstance(value, np.ndarray):
            if value.size > 12:
                print(f"{key}: array(shape={value.shape})")
            else:
                print(f"{key}: {np.round(value, 4).tolist()}")
        elif isinstance(value, dict):
            print(f"{key}:")
            for inner_key, inner_value in value.items():
                if isinstance(inner_value, np.ndarray) and inner_value.size > 12:
                    print(f"  {inner_key}: array(shape={inner_value.shape})")
                elif isinstance(inner_value, np.ndarray):
                    print(f"  {inner_key}: {np.round(inner_value, 4).tolist()}")
                elif isinstance(inner_value, float):
                    print(f"  {inner_key}: {inner_value:.4g}")
                else:
                    print(f"  {inner_key}: {inner_value}")
        elif isinstance(value, float):
            print(f"{key}: {value:.4g}")
        else:
            print(f"{key}: {value}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "estimate": _cmd_estimate,
        "dataset": _cmd_dataset,
        "experiment": _cmd_experiment,
        "monitor": _cmd_monitor,
        "fleet": _cmd_fleet,
        "sanitize": _cmd_sanitize,
        "metrics": _cmd_metrics,
        "record": _cmd_record,
        "replay": _cmd_replay,
        "backtest": _cmd_backtest,
        "learn": _cmd_learn,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
