"""Run-twice determinism sanitizer: byte-verify that seeded runs replay.

Static analysis (phaselint PL008–PL011) proves the *absence of known
hazard shapes*; this module proves the *presence of the property itself*:
a seeded scenario, run twice in one process, must produce byte-identical
artifacts — event logs, metrics snapshots, estimate streams.  Anything
that survives the linter but still leaks state (an unordered iteration
the dataflow rules could not see, a module-level cache, a stray global
RNG draw) shows up here as the first divergent record.

The contract is deliberately brutal: artifacts are compared **line by
line, byte for byte**.  There is no tolerance, because the repo's other
reproducibility checks (fleet session isolation, checkpoint replay) are
built on the same equality and a "small" divergence is still a shared
channel.

Used three ways:

* ``repro sanitize --mode solo --scenario source-crash`` from the CLI;
* the ``determinism``-marked tests in ``tests/test_sanitize.py``;
* the CI ``sanitize`` job, which runs one solo and one fleet scenario.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.obs import MetricsRegistry, canonical_json

__all__ = [
    "Divergence",
    "SanitizeReport",
    "run_twice",
    "sanitize_solo",
    "sanitize_fleet",
]

# How many artifact lines preceding a divergence are carried into the
# report — enough to see the trace/session context of the bad record.
_CONTEXT_LINES = 3

# A runner produces one run's artifacts: name -> full text.  It must
# build all of its state fresh on every call; anything cached between
# calls is exactly the nondeterminism this module exists to catch.
Runner = Callable[[], Mapping[str, str]]


@dataclass(frozen=True)
class Divergence:
    """The first point where two runs of one scenario disagree.

    Attributes:
        artifact: Name of the differing artifact (``events.jsonl``, …).
        line_no: 1-based first differing line; when one run's artifact is
            a strict prefix of the other's, the first line past the
            shorter one.
        first_run: That line in the first run (``""`` past its end).
        second_run: That line in the second run (``""`` past its end).
        context: Up to :data:`_CONTEXT_LINES` lines preceding the
            divergence (identical in both runs by construction) — the
            trace context of the divergent record.
    """

    artifact: str
    line_no: int
    first_run: str
    second_run: str
    context: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "artifact": self.artifact,
            "line_no": self.line_no,
            "first_run": self.first_run,
            "second_run": self.second_run,
            "context": list(self.context),
        }

    def format_text(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [f"{self.artifact}:{self.line_no}: runs diverge"]
        for ctx in self.context:
            lines.append(f"    = {ctx}")
        lines.append(f"    1> {self.first_run or '<end of artifact>'}")
        lines.append(f"    2> {self.second_run or '<end of artifact>'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class SanitizeReport:
    """Outcome of one run-twice comparison.

    Attributes:
        label: What was sanitized (``solo:source-crash``, …).
        artifacts: Artifact names that were compared, sorted.
        artifact_bytes_total: Combined size of the first run's artifacts.
        divergence: ``None`` when the runs were byte-identical.
    """

    label: str
    artifacts: tuple[str, ...]
    artifact_bytes_total: int
    divergence: Divergence | None = field(default=None)

    @property
    def clean(self) -> bool:
        """True when both runs produced byte-identical artifacts."""
        return self.divergence is None

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "label": self.label,
            "artifacts": list(self.artifacts),
            "artifact_bytes_total": self.artifact_bytes_total,
            "clean": self.clean,
            "divergence": (
                None if self.divergence is None else self.divergence.to_dict()
            ),
        }

    def format_text(self) -> str:
        """Human-readable summary (one line when clean)."""
        if self.divergence is None:
            return (
                f"sanitize {self.label}: clean "
                f"({len(self.artifacts)} artifact(s), "
                f"{self.artifact_bytes_total} bytes byte-identical)"
            )
        return (
            f"sanitize {self.label}: DIVERGENT\n"
            + self.divergence.format_text()
        )


def _first_divergence(
    artifact: str, first_text: str, second_text: str
) -> Divergence | None:
    if first_text == second_text:
        return None
    first_lines = first_text.splitlines()
    second_lines = second_text.splitlines()
    limit = max(len(first_lines), len(second_lines))
    for i in range(limit):
        a = first_lines[i] if i < len(first_lines) else ""
        b = second_lines[i] if i < len(second_lines) else ""
        if a != b:
            start = max(0, i - _CONTEXT_LINES)
            return Divergence(
                artifact=artifact,
                line_no=i + 1,
                first_run=a,
                second_run=b,
                context=tuple(first_lines[start:i]),
            )
    # Same lines, different text: a trailing-newline / encoding drift.
    return Divergence(
        artifact=artifact,
        line_no=limit + 1,
        first_run="<artifacts differ only in trailing bytes>",
        second_run="<artifacts differ only in trailing bytes>",
    )


def run_twice(label: str, runner: Runner) -> SanitizeReport:
    """Execute ``runner`` twice and byte-compare every artifact.

    Args:
        label: Report label (``solo:source-crash``, ``fleet:…``).
        runner: Zero-argument callable producing one run's artifacts;
            called exactly twice, and responsible for building all of its
            state (registries, gateways, RNGs) fresh on each call.

    Returns:
        The comparison report; :attr:`SanitizeReport.clean` is True only
        if both calls produced identical artifact names *and* bytes.
    """
    first = dict(runner())
    second = dict(runner())
    names = sorted(set(first) | set(second))
    total_bytes = sum(len(first.get(n, "").encode("utf-8")) for n in names)
    for name in names:
        if name not in first or name not in second:
            missing_in = "first" if name not in first else "second"
            return SanitizeReport(
                label=label,
                artifacts=tuple(names),
                artifact_bytes_total=total_bytes,
                divergence=Divergence(
                    artifact=name,
                    line_no=1,
                    first_run=first.get(name, "<artifact missing>"),
                    second_run=second.get(name, "<artifact missing>"),
                    context=(f"artifact missing from {missing_in} run",),
                ),
            )
        divergence = _first_divergence(name, first[name], second[name])
        if divergence is not None:
            return SanitizeReport(
                label=label,
                artifacts=tuple(names),
                artifact_bytes_total=total_bytes,
                divergence=divergence,
            )
    return SanitizeReport(
        label=label,
        artifacts=tuple(names),
        artifact_bytes_total=total_bytes,
    )


def _estimate_lines(estimates: list[Any]) -> str:
    """Canonical JSONL encoding of a service-estimate stream."""
    return "\n".join(
        json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
        for e in estimates
    )


def sanitize_solo(
    scenario: str = "source-crash",
    *,
    duration_s: float = 90.0,
    sample_rate_hz: float = 100.0,
    seed: int = 0,
) -> SanitizeReport:
    """Byte-verify one solo chaos scenario across two seeded runs.

    Args:
        scenario: A :data:`repro.service.chaos.SHIPPED_SCENARIOS` name.
        duration_s: Simulated capture duration per run.
        sample_rate_hz: CSI sample rate of the simulated capture.
        seed: Scenario seed used by *both* runs.

    Returns:
        The run-twice report over the event log, estimate stream, final
        health summary, and metrics snapshot.
    """
    from repro.errors import ConfigurationError
    from repro.service.chaos import SHIPPED_SCENARIOS, run_chaos

    if scenario not in SHIPPED_SCENARIOS:
        known = ", ".join(sorted(SHIPPED_SCENARIOS))
        raise ConfigurationError(
            f"unknown solo scenario {scenario!r} (shipped: {known})"
        )
    spec = SHIPPED_SCENARIOS[scenario]

    def runner() -> dict[str, str]:
        registry = MetricsRegistry()
        report = run_chaos(
            spec,
            duration_s=duration_s,
            sample_rate_hz=sample_rate_hz,
            seed=seed,
            registry=registry,
        )
        return {
            "events.jsonl": report.events.to_jsonl(),
            "estimates.jsonl": _estimate_lines(report.estimates),
            "health.json": json.dumps(report.health, sort_keys=True),
            "metrics.json": canonical_json(registry.snapshot()),
        }

    return run_twice(f"solo:{scenario}", runner)


def sanitize_fleet(
    scenario: str = "shard-crash",
    *,
    n_sessions: int = 12,
    duration_s: float = 24.0,
    sample_rate_hz: float = 50.0,
    seed: int = 0,
) -> SanitizeReport:
    """Byte-verify one fleet chaos scenario across two seeded runs.

    The per-run solo-baseline isolation check inside
    :func:`repro.service.fleet.chaos.run_fleet_chaos` is skipped — this
    sanitizer asks a different question (run-to-run stability, not
    solo-vs-fleet equivalence) and skipping it roughly halves the cost.

    Args:
        scenario: A :data:`repro.service.fleet.chaos.FLEET_SCENARIOS`
            name.
        n_sessions: Fleet size per run.
        duration_s: Simulated duration per run.
        sample_rate_hz: CSI sample rate of the simulated captures.
        seed: Fleet seed used by *both* runs.

    Returns:
        The run-twice report over the fleet event log, metrics snapshot,
        and summary report.
    """
    from repro.errors import ConfigurationError
    from repro.service.fleet.chaos import FLEET_SCENARIOS, run_fleet_chaos

    if scenario not in FLEET_SCENARIOS:
        known = ", ".join(sorted(FLEET_SCENARIOS))
        raise ConfigurationError(
            f"unknown fleet scenario {scenario!r} (shipped: {known})"
        )
    spec = FLEET_SCENARIOS[scenario]

    def runner() -> dict[str, str]:
        registry = MetricsRegistry()
        report = run_fleet_chaos(
            spec,
            n_sessions=n_sessions,
            duration_s=duration_s,
            sample_rate_hz=sample_rate_hz,
            seed=seed,
            registry=registry,
            check_isolation=False,
        )
        return {
            "events.jsonl": report.events_jsonl,
            "metrics.json": report.metrics_json or "",
            "report.json": json.dumps(report.to_jsonable(), sort_keys=True),
        }

    return run_twice(f"fleet:{scenario}", runner)
