"""Typed array aliases and runtime shape/dtype contracts.

The PhaseBeat pipeline is a chain of array transforms whose correctness
hinges on conventions the type system never sees: CSI stays
``(packets, antennas, subcarriers)`` complex, phase series are 1-D real,
calibrated matrices are ``(n_samples, n_subcarriers)``.  This module makes
those conventions explicit twice over:

* **Statically** — the ``FloatArray`` / ``ComplexArray`` / ``BoolArray`` /
  ``IntArray`` aliases are what public signatures use instead of bare
  ``np.ndarray`` (enforced by phaselint rule PL002).
* **At runtime** — the ``@check_arrays`` / ``@check_csi`` / ``@check_trace``
  decorators verify ndim, dtype kind, and named-axis consistency at the
  public entry points of ``core/``, ``dsp/``, and ``rf/``, raising
  :class:`~repro.errors.ContractError` with the offending shape instead of
  letting a transposed matrix propagate garbage downstream.

Checks are observations only — a conforming ndarray argument passes
through with zero copies and no casting (sequence inputs are checked via
the same ``asarray`` view the wrapped function will build).  Set
``REPRO_NO_CONTRACTS=1`` to strip the decorators at import time (e.g. for
microbenchmarks of the wrapped functions themselves).

Axis specs are comma-separated tokens, one per dimension::

    @check_arrays(series="n_samples", matrix="n_samples,n_subcarriers")
    @check_csi()          # csi: (packets, antennas, subcarriers) complex

An integer token pins that axis to an exact size; a name token binds on
first use and must agree across every spec in the same call, so
``series="n_samples"`` and ``timestamps_s="n_samples"`` enforce equal
lengths.
"""

from __future__ import annotations

import functools
import inspect
import os
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np
from numpy.typing import NDArray

from .errors import ContractError

__all__ = [
    "BoolArray",
    "ComplexArray",
    "FloatArray",
    "IntArray",
    "ArraySpec",
    "check_arrays",
    "check_csi",
    "check_matrix",
    "check_series",
    "check_trace",
    "contracts_enabled",
]

#: 1-D/2-D real-valued series and matrices (phase, displacement, spectra).
FloatArray = NDArray[np.float64]
#: Complex CSI and channel responses.
ComplexArray = NDArray[np.complex128]
#: Eligibility / quality masks.
BoolArray = NDArray[np.bool_]
#: Index arrays (subcarrier indices, peak locations).
IntArray = NDArray[np.int64]

_F = TypeVar("_F", bound=Callable[..., Any])

# Dtype-kind groups a contract may demand.  "real" admits integer input on
# purpose: test vectors are often integer ramps, and every consumer
# immediately does float arithmetic on them.
_DTYPE_KINDS = {
    "real": frozenset("fiu"),
    "float": frozenset("f"),
    "complex": frozenset("c"),
    "bool": frozenset("b"),
    "numeric": frozenset("fiuc"),
    "any": None,
}


@dataclass(frozen=True)
class ArraySpec:
    """Contract for one array argument.

    Attributes:
        axes: Comma-separated axis tokens (``"packets,antennas,subcarriers"``);
            names bind per call, integers pin exact sizes.
        dtype: One of ``"real"``, ``"float"``, ``"complex"``, ``"bool"``,
            ``"numeric"``, ``"any"``.
        allow_none: Accept ``None`` (for optional array arguments).
    """

    axes: str
    dtype: str = "real"
    allow_none: bool = False

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPE_KINDS:
            raise ValueError(
                f"unknown dtype group {self.dtype!r}; expected one of "
                f"{sorted(_DTYPE_KINDS)}"
            )

    @property
    def alternatives(self) -> tuple[tuple[str, ...], ...]:
        """Admissible axis layouts; ``"n|n,k"`` accepts 1-D or 2-D."""
        return tuple(
            tuple(t.strip() for t in alt.split(",") if t.strip())
            for alt in self.axes.split("|")
        )

    def describe(self) -> str:
        """Human-readable form used in :class:`ContractError` messages."""
        layouts = " or ".join(
            f"a {len(alt)}-d array shaped ({', '.join(alt)})"
            for alt in self.alternatives
        )
        return f"{layouts} of {self.dtype} dtype"


def contracts_enabled() -> bool:
    """Whether contract decorators are active in this process."""
    return os.environ.get("REPRO_NO_CONTRACTS", "") not in ("1", "true", "yes")


def _check_value(
    func_name: str,
    name: str,
    value: Any,
    spec: ArraySpec,
    bindings: dict[str, int],
) -> None:
    if value is None:
        if spec.allow_none:
            return
        raise ContractError(func_name, name, spec.describe(), "None")
    if isinstance(value, np.ndarray):
        array = value
    else:
        # Sequence inputs are checked through the same asarray view the
        # wrapped function will build; an ndarray input is never copied.
        try:
            array = np.asarray(value)
        except Exception:
            raise ContractError(
                func_name, name, spec.describe(), type(value).__name__
            ) from None
    actual = f"shape {array.shape} dtype {array.dtype}"
    by_ndim = {len(alt): alt for alt in spec.alternatives}
    tokens = by_ndim.get(array.ndim)
    if tokens is None:
        raise ContractError(func_name, name, spec.describe(), actual)
    kinds = _DTYPE_KINDS[spec.dtype]
    if kinds is not None and array.dtype.kind not in kinds:
        raise ContractError(func_name, name, spec.describe(), actual)
    for axis, (token, size) in enumerate(zip(tokens, array.shape)):
        if token.isdigit():
            if size != int(token):
                raise ContractError(
                    func_name,
                    name,
                    f"{spec.describe()} with axis {axis} == {token}",
                    actual,
                )
        else:
            bound = bindings.setdefault(token, size)
            if bound != size:
                raise ContractError(
                    func_name,
                    name,
                    f"{spec.describe()} with {token} == {bound} "
                    "(bound by an earlier argument)",
                    actual,
                )


def _as_spec(raw: str | tuple[str, str] | ArraySpec) -> ArraySpec:
    if isinstance(raw, ArraySpec):
        return raw
    if isinstance(raw, tuple):
        axes, dtype = raw
        return ArraySpec(axes=axes, dtype=dtype)
    return ArraySpec(axes=raw)


def check_arrays(**raw_specs: str | tuple[str, str] | ArraySpec) -> Callable[[_F], _F]:
    """Declare shape/dtype contracts for named array arguments.

    Args:
        **raw_specs: Map of parameter name to contract — an axis string
            (real dtype), an ``(axes, dtype)`` tuple, or an
            :class:`ArraySpec`.

    Returns:
        A decorator enforcing the contracts on every call.

    Raises:
        TypeError: At decoration time, when a named parameter does not
            exist on the wrapped function (catches signature drift).
    """
    specs = {name: _as_spec(raw) for name, raw in raw_specs.items()}

    def decorate(func: _F) -> _F:
        if not contracts_enabled():
            return func
        sig = inspect.signature(func)
        unknown = set(specs) - set(sig.parameters)
        if unknown:
            raise TypeError(
                f"@check_arrays on {func.__qualname__}: unknown parameter(s) "
                f"{sorted(unknown)}"
            )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            try:
                bound = sig.bind(*args, **kwargs)
            except TypeError:
                # Invalid call: let the function raise its natural error.
                return func(*args, **kwargs)
            bindings: dict[str, int] = {}
            for name, spec in specs.items():
                if name in bound.arguments:
                    _check_value(
                        func.__qualname__, name, bound.arguments[name], spec,
                        bindings,
                    )
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def check_csi(
    arg: str = "csi", axes: str = "packets,antennas,subcarriers"
) -> Callable[[_F], _F]:
    """Contract for a raw complex CSI matrix in the paper's axis order."""
    return check_arrays(**{arg: ArraySpec(axes=axes, dtype="complex")})


def check_series(*names: str, dtype: str = "real") -> Callable[[_F], _F]:
    """Contract: each named argument is a 1-D ``n_samples`` array."""
    return check_arrays(
        **{name: ArraySpec(axes="n_samples", dtype=dtype) for name in names}
    )


def check_matrix(
    *names: str, axes: str = "n_samples,n_subcarriers", dtype: str = "real"
) -> Callable[[_F], _F]:
    """Contract: each named argument is a 2-D samples×subcarriers matrix."""
    return check_arrays(
        **{name: ArraySpec(axes=axes, dtype=dtype) for name in names}
    )


def check_trace(arg: str = "trace") -> Callable[[_F], _F]:
    """Require the named argument to be a :class:`~repro.io_.trace.CSITrace`.

    The trace validates its own internal layout at construction; this
    contract catches the caller who passes the raw ``csi`` array (or a
    file path) where the container is expected.
    """

    def decorate(func: _F) -> _F:
        if not contracts_enabled():
            return func
        sig = inspect.signature(func)
        if arg not in sig.parameters:
            raise TypeError(
                f"@check_trace on {func.__qualname__}: unknown parameter {arg!r}"
            )

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            from .io_.trace import CSITrace  # local: avoids an import cycle

            try:
                bound = sig.bind(*args, **kwargs)
            except TypeError:
                return func(*args, **kwargs)
            value = bound.arguments.get(arg)
            if value is not None and not isinstance(value, CSITrace):
                raise ContractError(
                    func.__qualname__,
                    arg,
                    "a CSITrace (complex csi (packets, antennas, subcarriers) "
                    "+ timestamps)",
                    type(value).__name__,
                )
            return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
