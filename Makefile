# Convenience entry points; CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally means a green
# pipeline.
PYTHON ?= python

.PHONY: test lint phaselint sanitize typecheck check

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

phaselint:
	PYTHONPATH=tools $(PYTHON) -m phaselint src tests benchmarks

# Run-twice byte-reproducibility check over one solo and one fleet chaos
# scenario (see docs/static_analysis.md, "Determinism model").
sanitize:
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize --mode solo --scenario source-crash
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize --mode fleet --scenario shard-crash

lint: phaselint
	ruff check src/ tests/ benchmarks/ examples/

typecheck:
	mypy

check: lint typecheck test
