# Convenience entry points; CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally means a green
# pipeline.
PYTHON ?= python

.PHONY: test lint phaselint typecheck check

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

phaselint:
	PYTHONPATH=tools $(PYTHON) -m phaselint src tests benchmarks

lint: phaselint
	ruff check src/ tests/ benchmarks/ examples/

typecheck:
	mypy

check: lint typecheck test
