"""Pass 1 of the cross-module engine: project symbol table and call graph.

The per-file rules (PL001–PL007) can judge a line in isolation; the
determinism rules (PL008–PL011) cannot.  Whether an iteration order leaks
into an ordered artifact may depend on a helper defined two modules away,
and whether a module-level cache is dangerous depends on who can reach it.
:class:`ProjectIndex` is the shared substrate those rules run over:

* one :class:`ModuleInfo` per linted file — its resolved module name,
  import aliases, module-level bindings (mutable containers, seeded
  ``Generator`` objects, set-typed names), and class-level attributes;
* one :class:`FunctionInfo` per function/method — its qualified name, the
  project-resolvable calls it makes, and whether its body contains an
  *ordered sink* (event/metric emission, list building, serialization);
* the call graph over those functions, with a fixpoint that propagates
  "emits ordered output" through intra-project call edges, so a loop that
  fans out to ``self._update_pressure`` is judged by what the callee does.

Module names are derived from the package structure on disk (walking up
while ``__init__.py`` exists), so ``src/repro/service/fleet/gateway.py``
indexes as ``repro.service.fleet.gateway`` and a bare fixture file indexes
as its stem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "ParsedFile",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "module_name_for",
    "MUTABLE_CONSTRUCTORS",
]

# Calls that build a mutable container, by constructor name.
MUTABLE_CONSTRUCTORS = {
    "dict": "dict",
    "list": "list",
    "set": "set",
    "defaultdict": "dict",
    "OrderedDict": "dict",
    "Counter": "dict",
    "deque": "list",
    "bytearray": "list",
}

# Attribute-call names whose invocation emits into an ordered artifact:
# sequence building, event/metric emission, and serialization.  Used both
# directly (a sink inside a loop body) and transitively (a function whose
# body contains one is an ordered sink for every caller).
_ORDERED_SINK_METHODS = {
    "append",
    "extend",
    "insert",
    "appendleft",
    "record",
    "count",
    "observe",
    "gauge_set",
    "emit",
    "write",
    "writelines",
    "writerow",
    "put",
}
_ORDERED_SINK_CALLS = {
    "print",
    "json.dump",
    "json.dumps",
}


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, derived from package structure.

    Walks up from the file while the parent directory is a package
    (contains ``__init__.py``), so names are independent of how the lint
    paths were spelled on the command line.
    """
    path = Path(path)
    parts = [] if path.stem == "__init__" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


@dataclass(frozen=True)
class ParsedFile:
    """One successfully parsed source file.

    Attributes:
        path: Path as given on the command line (used in findings).
        posix_path: Normalized forward-slash path used for scoping.
        source: Raw file text.
        tree: Parsed module AST.
    """

    path: str
    posix_path: str
    source: str
    tree: ast.Module

    @property
    def lines(self) -> list[str]:
        """Source split into lines (1-based access via ``lines[n-1]``)."""
        return self.source.splitlines()


@dataclass
class FunctionInfo:
    """One function or method in the project.

    Attributes:
        qualname: ``module:Class.method`` or ``module:name``.
        module: Owning module name.
        node: The function's AST node.
        calls: Dotted call names appearing in the body, as written
            (``"self._drain"``, ``"json.dumps"``, ``"helper"``).
        direct_sink: Whether the body itself contains an ordered sink.
        emits_ordered: ``direct_sink`` or (after the fixpoint) calls a
            project function that does.
    """

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: tuple[str, ...] = ()
    direct_sink: bool = False
    emits_ordered: bool = False


@dataclass
class ModuleInfo:
    """Everything pass 1 knows about one module.

    Attributes:
        name: Dotted module name.
        file: The parsed source file.
        is_package: Whether the file is an ``__init__.py``.
        import_aliases: Local name → imported *module* path
            (``import a.b as c`` binds ``c`` → ``a.b``; ``import a.b``
            binds ``a`` → ``a``).
        from_imports: Local name → ``module.symbol`` dotted target.
        module_mutables: Module-level ``name`` → (node, container kind)
            for bindings whose value is a mutable container.
        module_rng: Module-level names bound to ``default_rng(...)``.
        class_mutables: ``(class, attr, node, kind)`` for mutable
            class-body attributes of non-dataclass classes.
        class_rng: ``(class, attr, node)`` for class-body Generators.
        set_names: Module-level names inferred set-typed.
        functions: Function qualname-in-module → :class:`FunctionInfo`
            (methods keyed ``Class.method``).
    """

    name: str
    file: ParsedFile
    is_package: bool = False
    import_aliases: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, str] = field(default_factory=dict)
    module_mutables: dict[str, tuple[ast.AST, str]] = field(
        default_factory=dict
    )
    module_rng: dict[str, ast.AST] = field(default_factory=dict)
    class_mutables: list[tuple[str, str, ast.AST, str]] = field(
        default_factory=list
    )
    class_rng: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    set_names: set[str] = field(default_factory=set)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """The package this module resolves relative imports against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]


def dotted_call_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` chains to ``"a.b.c"``; ``None`` otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_rng_factory_call(node: ast.AST) -> bool:
    """True for ``default_rng(...)`` / ``np.random.default_rng(...)``."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_call_name(node.func)
    return name is not None and (
        name == "default_rng" or name.endswith(".default_rng")
    )


def classify_mutable_value(node: ast.AST) -> str | None:
    """Container kind when ``node`` constructs a mutable container."""
    if isinstance(node, ast.Dict) or isinstance(node, ast.DictComp):
        return "dict"
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = dotted_call_name(node.func)
        if name is not None:
            return MUTABLE_CONSTRUCTORS.get(name.rpartition(".")[2])
    return None


def is_set_constructor(node: ast.AST) -> bool:
    """True when ``node`` syntactically builds a ``set``/``frozenset``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_call_name(node.func)
        if name is not None and name.rpartition(".")[2] in (
            "set",
            "frozenset",
        ):
            return True
    return False


def annotation_is_set(node: ast.AST | None) -> bool:
    """True when an annotation names a set type (``set[str]``, ``Set``)."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_call_name(node)
    if name is None:
        return False
    return name.rpartition(".")[2] in (
        "set",
        "frozenset",
        "Set",
        "FrozenSet",
        "AbstractSet",
        "MutableSet",
    )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_call_name(target)
        if name is not None and name.rpartition(".")[2] == "dataclass":
            return True
    return False


def _is_enum_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = dotted_call_name(base)
        if name is not None and "Enum" in name.rpartition(".")[2]:
            return True
    return False


class _SinkScanner(ast.NodeVisitor):
    """Detect ordered sinks and collect calls within one function body.

    Nested function/class definitions are not descended into — their
    sinks belong to *their* ``FunctionInfo``, not the enclosing one.
    """

    def __init__(self) -> None:
        self.calls: list[str] = []
        self.direct_sink = False

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return None

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return None

    def visit_Yield(self, node: ast.Yield) -> None:
        self.direct_sink = True
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.direct_sink = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_call_name(node.func)
        if name is not None:
            self.calls.append(name)
            leaf = name.rpartition(".")[2]
            if name in _ORDERED_SINK_CALLS or (
                "." in name and leaf in _ORDERED_SINK_METHODS
            ):
                self.direct_sink = True
        self.generic_visit(node)


class ProjectIndex:
    """The pass-1 product: modules, symbols, and the call graph.

    Build with :meth:`build`; rules consume the read-only accessors.
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._by_stem: dict[str, list[str]] = {}
        self.call_edges: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Construction.

    @classmethod
    def build(cls, files: Iterable[ParsedFile]) -> "ProjectIndex":
        """Index every parsed file, then resolve the call graph."""
        index = cls()
        for parsed in files:
            info = index._index_module(parsed)
            index.modules[info.name] = info
            stem = info.name.rpartition(".")[2]
            index._by_stem.setdefault(stem, []).append(info.name)
        index._resolve_call_graph()
        index._propagate_ordered_sinks()
        return index

    def _index_module(self, parsed: ParsedFile) -> ModuleInfo:
        name = module_name_for(Path(parsed.path))
        info = ModuleInfo(
            name=name,
            file=parsed,
            is_package=Path(parsed.path).stem == "__init__",
        )
        self._collect_imports(info)
        self._collect_module_bindings(info)
        self._collect_functions(info)
        return info

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.import_aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        info.import_aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    package_parts = info.package.split(".") if info.package else []
                    # level 1 = current package, each extra level strips one.
                    strip = node.level - 1
                    if strip:
                        package_parts = package_parts[: -strip or None]
                    base = ".".join(p for p in (*package_parts, base) if p)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.from_imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _collect_module_bindings(self, info: ModuleInfo) -> None:
        for stmt in info.file.tree.body:
            self._collect_binding_stmt(info, stmt)
            if isinstance(stmt, ast.ClassDef):
                self._collect_class_bindings(info, stmt)

    def _collect_binding_stmt(self, info: ModuleInfo, stmt: ast.stmt) -> None:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and annotation_is_set(
                stmt.annotation
            ):
                info.set_names.add(stmt.target.id)
            return
        else:
            return
        kind = classify_mutable_value(value)
        rng = is_rng_factory_call(value)
        is_set = is_set_constructor(value) and not (
            isinstance(value, ast.Call)
            and dotted_call_name(value.func) is not None
            and dotted_call_name(value.func).rpartition(".")[2] == "frozenset"
        )
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if rng:
                info.module_rng[target.id] = stmt
            elif kind is not None and target.id != "__all__":
                info.module_mutables[target.id] = (stmt, kind)
            if is_set or (
                isinstance(stmt, ast.AnnAssign)
                and annotation_is_set(stmt.annotation)
            ):
                info.set_names.add(target.id)

    def _collect_class_bindings(
        self, info: ModuleInfo, node: ast.ClassDef
    ) -> None:
        if _is_dataclass_decorated(node) or _is_enum_class(node):
            # Dataclass "class attributes" are instance-field specs (and
            # mutable defaults already fail at class-creation time); Enum
            # members are value definitions, not shared state.
            return
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                kind = classify_mutable_value(value)
                rng = is_rng_factory_call(value)
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if rng:
                        info.class_rng.append((node.name, target.id, stmt))
                    elif kind is not None:
                        info.class_mutables.append(
                            (node.name, target.id, stmt, kind)
                        )
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                kind = classify_mutable_value(stmt.value)
                if kind is not None and isinstance(stmt.target, ast.Name):
                    info.class_mutables.append(
                        (node.name, stmt.target.id, stmt, kind)
                    )

    def _collect_functions(self, info: ModuleInfo) -> None:
        def visit(
            body: Sequence[ast.stmt], prefix: str
        ) -> None:
            for stmt in body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    local = f"{prefix}{stmt.name}"
                    scanner = _SinkScanner()
                    scanner.scan(stmt.body)
                    qual = f"{info.name}:{local}"
                    info.functions[local] = FunctionInfo(
                        qualname=qual,
                        module=info.name,
                        node=stmt,
                        calls=tuple(scanner.calls),
                        direct_sink=scanner.direct_sink,
                        emits_ordered=scanner.direct_sink,
                    )
                    visit(stmt.body, f"{local}.")
                elif isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, f"{prefix}{stmt.name}.")

        visit(info.file.tree.body, "")

    # ------------------------------------------------------------------
    # Resolution.

    def resolve_module(self, from_module: str, local: str) -> str | None:
        """Resolve a local name to a project module, or ``None``.

        ``local`` may be an import alias (``np``), a from-imported module
        (``from repro.service import fleet``), or a sibling stem (bare
        fixture files importing each other by name).
        """
        info = self.modules.get(from_module)
        if info is None:
            return None
        target = info.import_aliases.get(local) or info.from_imports.get(
            local
        )
        if target is not None and target in self.modules:
            return target
        if target is None and local in self._by_stem:
            candidates = self._by_stem[local]
            if len(candidates) == 1:
                return candidates[0]
        return None

    def resolve_symbol(
        self, from_module: str, dotted: str
    ) -> tuple[str, str] | None:
        """Resolve ``dotted`` to ``(module, symbol)`` within the project.

        Handles ``alias.symbol`` (module attribute access) and bare
        from-imported names.  Returns ``None`` for anything that does not
        land on an indexed module.
        """
        info = self.modules.get(from_module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        if rest:
            module = self.resolve_module(from_module, head)
            if module is not None and "." not in rest:
                return module, rest
            # `alias.sub.symbol`: alias may name a package.
            target = info.import_aliases.get(head)
            if target is not None:
                full = f"{target}.{rest}"
                mod, _, sym = full.rpartition(".")
                if mod in self.modules:
                    return mod, sym
            return None
        target = info.from_imports.get(dotted)
        if target is not None:
            mod, _, sym = target.rpartition(".")
            if mod in self.modules and sym:
                return mod, sym
        return None

    def _resolve_call_graph(self) -> None:
        for info in self.modules.values():
            for local, fn in info.functions.items():
                edges: set[str] = set()
                class_prefix = (
                    local.rpartition(".")[0] + "."
                    if "." in local
                    else ""
                )
                for call in fn.calls:
                    target = self._resolve_call(info, class_prefix, call)
                    if target is not None:
                        edges.add(target)
                if edges:
                    self.call_edges[fn.qualname] = edges

    def _resolve_call(
        self, info: ModuleInfo, class_prefix: str, call: str
    ) -> str | None:
        if call.startswith("self.") or call.startswith("cls."):
            method = call.split(".", 1)[1]
            if "." in method:
                return None
            candidate = f"{class_prefix}{method}"
            if candidate in info.functions:
                return info.functions[candidate].qualname
            return None
        if "." not in call:
            if call in info.functions:
                return info.functions[call].qualname
            resolved = self.resolve_symbol(info.name, call)
        else:
            resolved = self.resolve_symbol(info.name, call)
        if resolved is None:
            return None
        module, symbol = resolved
        target_info = self.modules.get(module)
        if target_info is not None and symbol in target_info.functions:
            return target_info.functions[symbol].qualname
        return None

    def _propagate_ordered_sinks(self) -> None:
        by_qual = {
            fn.qualname: fn
            for info in self.modules.values()
            for fn in info.functions.values()
        }
        changed = True
        while changed:
            changed = False
            for qual, callees in self.call_edges.items():
                fn = by_qual.get(qual)
                if fn is None or fn.emits_ordered:
                    continue
                if any(
                    by_qual[c].emits_ordered
                    for c in callees
                    if c in by_qual
                ):
                    fn.emits_ordered = True
                    changed = True

    # ------------------------------------------------------------------
    # Queries.

    def function(self, qualname: str) -> FunctionInfo | None:
        """Look up a function by its ``module:qual`` name."""
        module, _, local = qualname.partition(":")
        info = self.modules.get(module)
        if info is None:
            return None
        return info.functions.get(local)

    def emits_ordered(
        self, from_module: str, class_prefix: str, call: str
    ) -> bool:
        """Whether a call, resolved from ``from_module``, is an ordered sink."""
        info = self.modules.get(from_module)
        if info is None:
            return False
        target = self._resolve_call(info, class_prefix, call)
        if target is None:
            return False
        fn = self.function(target)
        return fn is not None and fn.emits_ordered

    def import_edges(self) -> dict[str, set[str]]:
        """Module → imported project modules (symbol imports included)."""
        edges: dict[str, set[str]] = {}
        for name, info in self.modules.items():
            out: set[str] = set()
            for target in info.import_aliases.values():
                out.update(self._project_prefixes(target))
            for target in info.from_imports.values():
                out.update(self._project_prefixes(target))
                mod = target.rpartition(".")[0]
                if mod:
                    out.update(self._project_prefixes(mod))
            out.discard(name)
            edges[name] = out
        return edges

    def _project_prefixes(self, dotted: str) -> Iterator[str]:
        parts = dotted.split(".")
        for k in range(len(parts), 0, -1):
            candidate = ".".join(parts[:k])
            if candidate in self.modules:
                yield candidate
                return

    def reachable_modules(self, root_prefixes: Sequence[str]) -> set[str]:
        """Modules reachable from any root prefix via project imports.

        An empty ``root_prefixes`` means *every* indexed module is in
        scope — the strict default for projects that have not narrowed
        the shared-state surface in config.
        """
        if not root_prefixes:
            return set(self.modules)
        edges = self.import_edges()
        frontier = [
            name
            for name in self.modules
            if any(
                name == p or name.startswith(p + ".")
                for p in root_prefixes
            )
        ]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for neighbour in edges.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen
