"""phaselint — domain-aware static analysis for the PhaseBeat reproduction.

An AST-based linter that encodes the array-pipeline invariants the Python
type system cannot see.  It runs in two passes: per-file rules
(``PL001`` … ``PL007``) judge one module at a time — seeded randomness,
``NDArray`` typing in public signatures, unit-suffixed frequency/rate
names, no float equality, no mutable defaults, a fully annotated +
documented public API, no blind exception handlers — and cross-module
determinism rules (``PL008`` … ``PL011``) run dataflow over a project
symbol table and call graph: unordered iteration feeding ordered sinks,
RNG streams escaping their scope, shared mutable state on the service
paths, and float reductions with unpinned order.

Run it from the repository root::

    PYTHONPATH=tools python -m phaselint src tests benchmarks

Every finding carries a rule code; silence one in place with
``# phaselint: disable=PL001`` on the offending line, file-wide with
``# phaselint: disable-file=PL001``, or — for the determinism rules —
with an audited justification: ``# phaselint: insertion-order -- <why>``
or ``# phaselint: justify=PL010 -- <why>``.  Accepted historical findings
live in a committed ``phaselint-baseline.json`` (see ``--update-baseline``);
defaults live in ``[tool.phaselint]`` of ``pyproject.toml``.
"""

from .baseline import Baseline
from .config import LintConfig, load_config
from .engine import lint_file, lint_paths, lint_paths_detailed
from .findings import Finding
from .project import ProjectIndex
from .rules import ALL_RULES, PROJECT_RULES, ProjectRule, Rule

__version__ = "1.1.0"

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "Baseline",
    "Finding",
    "LintConfig",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_paths_detailed",
    "load_config",
    "__version__",
]
