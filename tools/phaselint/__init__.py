"""phaselint — domain-aware static analysis for the PhaseBeat reproduction.

A small AST-based linter that encodes the array-pipeline invariants the
Python type system cannot see: seeded randomness, ``NDArray`` typing in
public signatures, unit-suffixed frequency/rate names, no float equality,
no mutable defaults, and a fully annotated + documented public API under
``src/repro/``.

Run it from the repository root::

    PYTHONPATH=tools python -m phaselint src tests benchmarks

Every finding carries a rule code (``PL001`` … ``PL006``); a finding can be
silenced in place with ``# phaselint: disable=PL001`` on the offending line
or ``# phaselint: disable-file=PL001`` anywhere in the file.  Defaults live
in ``[tool.phaselint]`` of ``pyproject.toml``.
"""

from .config import LintConfig, load_config
from .engine import lint_file, lint_paths
from .findings import Finding
from .rules import ALL_RULES, Rule

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "Rule",
    "lint_file",
    "lint_paths",
    "load_config",
    "__version__",
]
