"""Minimal SARIF 2.1.0 serialization for phaselint findings.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
code-scanning UIs ingest — emitting it lets the phaselint CI job upload
results so findings annotate the diff instead of hiding in a log.  Only
the slice of the spec those consumers read is produced: one run, the tool
descriptor with per-rule metadata, and one ``result`` per finding with a
physical location.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding
from .rules import ALL_RULES, PROJECT_RULES

__all__ = ["to_sarif", "sarif_json"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptors() -> list[dict[str, object]]:
    rules: list[dict[str, object]] = []
    seen: set[str] = set()
    for rule in (*ALL_RULES, *PROJECT_RULES):
        if rule.code in seen:
            continue
        seen.add(rule.code)
        rules.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description or rule.name},
            }
        )
    rules.append(
        {
            "id": "PL000",
            "name": "syntax-error",
            "shortDescription": {"text": "file does not parse"},
        }
    )
    return sorted(rules, key=lambda r: str(r["id"]))


def to_sarif(
    findings: Iterable[Finding], *, tool_version: str
) -> dict[str, object]:
    """Build the SARIF 2.1.0 log object for ``findings``."""
    results: list[dict[str, object]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": Path(finding.path).as_posix(),
                            },
                            "region": {
                                "startLine": finding.line,
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "phaselint",
                        "version": tool_version,
                        "informationUri": (
                            "https://example.invalid/phasebeat/phaselint"
                        ),
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
            }
        ],
    }


def sarif_json(
    findings: Sequence[Finding], *, tool_version: str
) -> str:
    """``to_sarif`` rendered as stable, indented JSON text."""
    return json.dumps(
        to_sarif(findings, tool_version=tool_version),
        indent=2,
        sort_keys=True,
    )
