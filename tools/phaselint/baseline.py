"""Baseline suppressions: grandfather audited findings, stay strict on new code.

A new rule landing on a mature tree faces a choice: fix every historical
finding in the same PR (usually untestable churn) or weaken the rule
(defeats the point).  The baseline is the third option — a committed
inventory of *audited, accepted* findings that the CLI subtracts from a
run, so the exit code stays green for the grandfathered set while any
**new** finding still fails the build.

Entries are keyed by ``(path, rule, hash-of-stripped-line-text)`` with a
count, **not** by line number: inserting code above a grandfathered site
does not invalidate the baseline, while *editing the flagged line itself*
does — exactly the moment a human should re-judge it.  Counts handle
several identical lines in one file (each occurrence consumes one).

Workflow: ``python -m phaselint --update-baseline <paths>`` rewrites
``phaselint-baseline.json`` from the current findings; review the diff
like code, because every added entry is a suppression someone must have
audited.  Fixing a finding leaves a stale entry behind; regenerate to
shrink the file (stale entries are harmless — nothing consumes them).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Iterable

from .findings import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME", "line_fingerprint"]

DEFAULT_BASELINE_NAME = "phaselint-baseline.json"

_VERSION = 1

# Signature: (posix path, 1-based line) -> raw source line text ("" when
# unavailable; the fingerprint of "" still matches consistently).
LineText = Callable[[str, int], str]


def line_fingerprint(text: str) -> str:
    """Stable short hash of a source line, whitespace-insensitive."""
    return hashlib.sha256(text.strip().encode("utf-8")).hexdigest()[:16]


class Baseline:
    """A committed set of accepted findings, keyed content-addressably."""

    def __init__(
        self, entries: dict[tuple[str, str, str], int] | None = None
    ) -> None:
        self.entries: dict[tuple[str, str, str], int] = dict(entries or {})

    # ------------------------------------------------------------------
    # Persistence.

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on a bad payload."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise ValueError(
                f"{path}: not a phaselint baseline (expected version {_VERSION})"
            )
        entries: dict[tuple[str, str, str], int] = {}
        for item in payload.get("entries", []):
            key = (
                str(item["path"]),
                str(item["rule"]),
                str(item["line_hash"]),
            )
            entries[key] = entries.get(key, 0) + int(item.get("count", 1))
        return cls(entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        items = [
            {
                "path": key[0],
                "rule": key[1],
                "line_hash": key[2],
                "count": count,
            }
            for key, count in sorted(self.entries.items())
        ]
        payload = {"version": _VERSION, "entries": items}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    # Application.

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], line_text: LineText
    ) -> "Baseline":
        """Build the baseline that would suppress exactly ``findings``."""
        baseline = cls()
        for finding in findings:
            key = _key(finding, line_text)
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    def filter(
        self, findings: Iterable[Finding], line_text: LineText
    ) -> list[Finding]:
        """Findings not covered by the baseline, in input order.

        Each entry's count is consumed at most that many times, so a
        *new* duplicate of a grandfathered line still surfaces.
        """
        remaining = dict(self.entries)
        kept: list[Finding] = []
        for finding in findings:
            key = _key(finding, line_text)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                kept.append(finding)
        return kept


def _key(finding: Finding, line_text: LineText) -> tuple[str, str, str]:
    posix = Path(finding.path).as_posix()
    return (
        posix,
        finding.rule,
        line_fingerprint(line_text(posix, finding.line)),
    )
