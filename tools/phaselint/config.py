"""Configuration for phaselint, loaded from ``[tool.phaselint]``.

All behaviour that is a judgement call — which trees a rule patrols, which
entry points may touch the wall clock, which unit suffixes count as
self-documenting — lives here rather than in the rules, so projects can
tune the gate without forking the linter.
"""

from __future__ import annotations

import fnmatch
import tomllib
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "load_config", "DEFAULT_EXCLUDE"]

# Generated/vendored trees no rule should ever patrol.
DEFAULT_EXCLUDE = [
    "*.egg-info/*",
    "*/__pycache__/*",
    "*/.git/*",
    "*/build/*",
]


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter settings.

    Attributes:
        exclude: fnmatch patterns (posix paths) removed from discovery.
        rule_paths: Per-rule path prefixes; a rule listed here only runs on
            files under one of its prefixes.  Rules not listed run on every
            linted file.  This is how API-shape rules (PL002/PL003/PL006)
            stay scoped to ``src`` while hygiene rules (PL001/PL005) patrol
            tests and benchmarks too.
        allow_unseeded: fnmatch patterns naming the entry points where
            PL001 permits wall-clock time and unseeded generators (CLIs,
            latency benchmarks).
        wall_clock_shims: fnmatch patterns naming the *only* files allowed
            to import the ``time`` module inside ``wall_clock_scope``
            (the sanctioned clock shims).
        wall_clock_scope: Path prefixes (same matching as ``rule_paths``)
            where PL001 bans the ``time`` module outright — every clock
            read there must flow through an injected Clock from a shim
            file.  Empty scope disables the ban.
        unit_tokens: Parameter-name stems PL003 considers unit-ambiguous.
        unit_suffixes: Suffixes PL003 accepts as carrying a unit (matched
            against the final ``_``-separated token of the name).
        shared_state_roots: Dotted module prefixes whose import closure
            PL010 patrols for shared mutable state (the multi-session
            service surface).  Empty means every linted module is in
            scope — the strict default.
        select: When non-empty, only these rule codes run.
    """

    exclude: tuple[str, ...] = tuple(DEFAULT_EXCLUDE)
    rule_paths: dict[str, tuple[str, ...]] = field(default_factory=dict)
    allow_unseeded: tuple[str, ...] = ()
    wall_clock_shims: tuple[str, ...] = ()
    wall_clock_scope: tuple[str, ...] = ()
    unit_tokens: tuple[str, ...] = (
        "rate",
        "freq",
        "frequency",
        "period",
        "duration",
        "interval",
        "delay",
        "latency",
        "bandwidth",
        "spacing",
    )
    unit_suffixes: tuple[str, ...] = (
        "hz",
        "khz",
        "mhz",
        "ghz",
        "bpm",
        "s",
        "ms",
        "us",
        "ns",
        "min",
        "m",
        "cm",
        "mm",
        "db",
        "dbm",
        "samples",
        "packets",
        "bins",
        "fraction",
        "ratio",
        "norm",
        "level",
        "total",
        "count",
    )
    shared_state_roots: tuple[str, ...] = ()
    select: tuple[str, ...] = ()

    def is_excluded(self, posix_path: str) -> bool:
        """True when ``posix_path`` matches an exclude pattern."""
        return any(fnmatch.fnmatch(posix_path, pat) for pat in self.exclude)

    def rule_applies(self, code: str, posix_path: str) -> bool:
        """True when rule ``code`` should run on ``posix_path``."""
        if self.select and code not in self.select:
            return False
        prefixes = self.rule_paths.get(code)
        if prefixes is None:
            return True
        return any(
            posix_path == p or posix_path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def unseeded_allowed(self, posix_path: str) -> bool:
        """True when PL001 gives ``posix_path`` an entry-point exemption."""
        return any(fnmatch.fnmatch(posix_path, pat) for pat in self.allow_unseeded)

    def is_wall_clock_shim(self, posix_path: str) -> bool:
        """True when ``posix_path`` is a sanctioned clock-shim file."""
        return any(
            fnmatch.fnmatch(posix_path, pat) for pat in self.wall_clock_shims
        )

    def wall_clock_banned(self, posix_path: str) -> bool:
        """True when PL001 must ban the ``time`` module in ``posix_path``.

        The ban applies inside ``wall_clock_scope`` to every file that is
        not itself a ``wall_clock_shims`` match; an empty scope disables
        it entirely.
        """
        in_scope = any(
            posix_path == p or posix_path.startswith(p.rstrip("/") + "/")
            for p in self.wall_clock_scope
        )
        return in_scope and not self.is_wall_clock_shim(posix_path)


def load_config(root: Path | None = None) -> LintConfig:
    """Load ``[tool.phaselint]`` from ``pyproject.toml`` under ``root``.

    Args:
        root: Directory whose ``pyproject.toml`` is consulted; defaults to
            the current working directory.  Missing file or table yields
            the built-in defaults.

    Returns:
        The resolved :class:`LintConfig`.
    """
    root = Path.cwd() if root is None else Path(root)
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig()
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("phaselint", {})
    if not table:
        return LintConfig()
    defaults = LintConfig()
    rule_paths = {
        str(code): tuple(str(p) for p in paths)
        for code, paths in table.get("rule-paths", {}).items()
    }
    return LintConfig(
        exclude=tuple(table.get("exclude", list(defaults.exclude))),
        rule_paths=rule_paths,
        allow_unseeded=tuple(table.get("allow-unseeded", [])),
        wall_clock_shims=tuple(table.get("wall-clock-shims", [])),
        wall_clock_scope=tuple(table.get("wall-clock-scope", [])),
        unit_tokens=tuple(table.get("unit-tokens", list(defaults.unit_tokens))),
        unit_suffixes=tuple(
            table.get("unit-suffixes", list(defaults.unit_suffixes))
        ),
        shared_state_roots=tuple(table.get("shared-state-roots", [])),
        select=tuple(table.get("select", [])),
    )
