"""Command-line front end: ``python -m phaselint src tests benchmarks``."""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from .config import load_config
from .engine import lint_paths
from .rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    """The phaselint argument parser."""
    parser = argparse.ArgumentParser(
        prog="phaselint",
        description=(
            "Domain-aware static analysis for the PhaseBeat reproduction: "
            "seeded randomness, NDArray typing, unit-suffixed names, no "
            "float equality, no mutable defaults, complete public API."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format; json emits a machine-readable finding list",
    )
    parser.add_argument(
        "--config-root",
        default=".",
        help="directory containing pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. PL001,PL005)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its one-line description and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; 0 = clean, 1 = findings, 2 = usage error."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code} {rule.name}: {rule.description}")
        return 0
    config = load_config(Path(args.config_root))
    if args.select:
        codes = tuple(c.strip() for c in args.select.split(",") if c.strip())
        known = {rule.code for rule in ALL_RULES}
        unknown = [c for c in codes if c not in known]
        if unknown:
            print(f"phaselint: unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        config = type(config)(**{**config.__dict__, "select": codes})
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"phaselint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths, config)
    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format_text())
        if findings:
            by_rule = Counter(f.rule for f in findings)
            summary = ", ".join(f"{n}× {code}" for code, n in sorted(by_rule.items()))
            print(f"\nphaselint: {len(findings)} finding(s) ({summary})")
        else:
            print("phaselint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
