"""Command-line front end: ``python -m phaselint src tests benchmarks``."""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .config import load_config
from .engine import lint_paths_detailed
from .rules import ALL_RULES, PROJECT_RULES
from .sarif import sarif_json


def build_parser() -> argparse.ArgumentParser:
    """The phaselint argument parser."""
    parser = argparse.ArgumentParser(
        prog="phaselint",
        description=(
            "Domain-aware static analysis for the PhaseBeat reproduction: "
            "seeded randomness, NDArray typing, unit-suffixed names, no "
            "float equality, no mutable defaults, complete public API, and "
            "cross-module determinism dataflow (unordered iteration, RNG "
            "flow, shared state, float reduction order)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        "--output",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help=(
            "output format; json emits a machine-readable finding list, "
            "sarif emits a SARIF 2.1.0 log for code-scanning upload"
        ),
    )
    parser.add_argument(
        "--config-root",
        default=".",
        help="directory containing pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (e.g. PL001,PL005)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline-suppressions file to subtract from the findings "
            f"(default: <config-root>/{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file from the current findings and exit "
            "0; review the diff — each entry is an accepted suppression"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its one-line description and exit",
    )
    return parser


def _resolve_baseline_path(
    args: argparse.Namespace, config_root: Path
) -> Path | None:
    if args.no_baseline and not args.update_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = config_root / DEFAULT_BASELINE_NAME
    if args.update_baseline or default.is_file():
        return default
    return None


def main(argv: Sequence[str] | None = None) -> int:
    """Run the linter; 0 = clean, 1 = findings, 2 = usage error."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in (*ALL_RULES, *PROJECT_RULES):
            print(f"{rule.code} {rule.name}: {rule.description}")
        return 0
    config_root = Path(args.config_root)
    config = load_config(config_root)
    if args.select:
        codes = tuple(c.strip() for c in args.select.split(",") if c.strip())
        known = {rule.code for rule in (*ALL_RULES, *PROJECT_RULES)}
        unknown = [c for c in codes if c not in known]
        if unknown:
            print(f"phaselint: unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        config = type(config)(**{**config.__dict__, "select": codes})
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"phaselint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    run = lint_paths_detailed(args.paths, config)
    baseline_path = _resolve_baseline_path(args, config_root)
    if args.update_baseline:
        if baseline_path is None:  # --no-baseline + --update-baseline
            print(
                "phaselint: --update-baseline conflicts with --no-baseline",
                file=sys.stderr,
            )
            return 2
        Baseline.from_findings(run.findings, run.line_text).save(
            baseline_path
        )
        print(
            f"phaselint: baseline written to {baseline_path} "
            f"({len(run.findings)} finding(s) grandfathered)"
        )
        return 0
    findings = run.findings
    if baseline_path is not None and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"phaselint: bad baseline: {exc}", file=sys.stderr)
            return 2
        findings = baseline.filter(findings, run.line_text)
    if args.format == "json":
        print(json.dumps([f.to_json() for f in findings], indent=2))
    elif args.format == "sarif":
        from . import __version__

        print(sarif_json(findings, tool_version=__version__))
    else:
        for finding in findings:
            print(finding.format_text())
        if findings:
            by_rule = Counter(f.rule for f in findings)
            summary = ", ".join(f"{n}× {code}" for code, n in sorted(by_rule.items()))
            print(f"\nphaselint: {len(findings)} finding(s) ({summary})")
        else:
            print("phaselint: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
