"""Entry point for ``python -m phaselint``."""

from .cli import main

raise SystemExit(main())
